//! The Retwis-like social network (§6.3) end to end, on the DEGO
//! backend, with a JUC cross-check.
//!
//! Run with: `cargo run --example social_feed`
//!
//! (The example lives in `dego-core`'s examples for discoverability; the
//! application logic comes from the `dego-retwis` crate.)

fn main() {
    // The example exercises the same code paths as the Fig. 9 harness
    // but at a friendly scale, printing what happens.
    use dego_retwis::{home_worker, DegoBackend, JucBackend, SocialBackend, SocialWorker};
    use std::sync::Arc;

    const USERS: u64 = 1_000;
    const THREADS: usize = 2;

    println!("building a {USERS}-user network over {THREADS} workers (DEGO backend)…");
    let backend = DegoBackend::create(THREADS, USERS as usize);

    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for slot in 0..THREADS {
            let backend = Arc::clone(&backend);
            handles.push(s.spawn(move || {
                let mut w = backend.worker();
                // Each worker populates its own partition.
                let mine: Vec<u64> = (0..USERS)
                    .filter(|&u| home_worker(u, THREADS) == slot)
                    .collect();
                for &u in &mine {
                    w.add_user(u);
                }
                (w, mine)
            }));
        }
        let mut workers: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

        // Worker 0's first user follows a few celebrities and reads feeds.
        let (w0, mine0) = &mut workers[0];
        let me = mine0[0];
        for celebrity in [1u64, 2, 3] {
            if celebrity != me {
                w0.follow(me, celebrity);
            }
        }
        println!("user {me} follows 3 accounts");

        // Celebrities post (whoever owns them can run `post`; the act of
        // posting touches the followers' shared rows).
        for (msg, celebrity) in [(900u64, 1u64), (901, 2), (902, 3)] {
            if celebrity != me {
                w0.post(celebrity, msg);
            }
        }

        let feed = w0.read_timeline(me);
        println!("user {me}'s timeline: {feed:?}");
        assert!(!feed.is_empty());

        // Group membership and profile updates.
        w0.join_group(me);
        assert!(w0.in_group(me));
        w0.update_profile(me);
        w0.update_profile(me);
        assert_eq!(w0.profile_version(me), 2);
        println!("user {me}: in group, profile v{}", w0.profile_version(me));
    });

    // Cross-check: the JUC backend gives the same answers on the same
    // scenario (single worker for simplicity).
    println!("\ncross-checking against the JUC backend…");
    let juc = JucBackend::create(1, 64);
    let mut w = juc.worker();
    for u in 0..10 {
        w.add_user(u);
    }
    w.follow(1, 2);
    w.post(2, 77);
    assert_eq!(w.read_timeline(1), vec![77]);
    assert_eq!(w.read_timeline(2), vec![77]);
    println!("JUC backend agrees: follower timelines receive posts.");
    println!("done.");
}
