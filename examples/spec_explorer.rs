//! Explore the theory: build indistinguishability graphs, estimate
//! consensus numbers, audit movers, and verify an adjustment — for your
//! own specification.
//!
//! Run with: `cargo run --example spec_explorer`
//!
//! The example defines a *stack* specification from scratch, tries to
//! adjust it by voiding `pop`, and lets the `dego-spec` machinery reveal
//! a subtle point: interface narrowing alone is not always enough — a
//! stack keeps order in its *state*, so blind pushes still do not
//! commute. Re-abstracting the state to an unordered **event bag** is
//! what unlocks scalability, which is exactly the move DEGO's
//! segmentations make.

use dego_spec::adjust::narrow_subtype;
use dego_spec::consensus::{consensus_number_bounded, is_permissive};
use dego_spec::dtype::{OpSig, SpecType};
use dego_spec::graph::IndistGraph;
use dego_spec::movers::left_moves_in_graph;
use dego_spec::types::op;
use dego_spec::Value;

fn pre_true(_: &Value, _: &[i64]) -> bool {
    true
}

fn push_effect(s: &Value, a: &[i64]) -> Value {
    match s {
        Value::Seq(xs) => {
            let mut xs = xs.clone();
            xs.push(a[0]);
            Value::Seq(xs)
        }
        _ => Value::seq_of(&[a[0]]),
    }
}

fn pop_effect(s: &Value, _: &[i64]) -> Value {
    match s {
        Value::Seq(xs) if !xs.is_empty() => Value::Seq(xs[..xs.len() - 1].to_vec()),
        _ => s.clone(),
    }
}

fn pop_ret(s: &Value, _: &[i64]) -> Value {
    match s {
        Value::Seq(xs) if !xs.is_empty() => Value::Int(xs[xs.len() - 1]),
        _ => Value::Bottom,
    }
}

/// The vanilla stack: push is blind, pop returns the top, peek reads.
fn stack_full() -> SpecType {
    SpecType::new(
        "Stack",
        Value::empty_seq(),
        vec![
            OpSig {
                name: "push",
                arity: 1,
                pre: pre_true,
                effect: Some(push_effect),
                ret: None,
            },
            OpSig {
                name: "pop",
                arity: 0,
                pre: pre_true,
                effect: Some(pop_effect),
                ret: Some(pop_ret),
            },
            OpSig {
                name: "peek",
                arity: 0,
                pre: pre_true,
                effect: None,
                ret: Some(pop_ret),
            },
        ],
    )
}

/// First attempt: delete `pop` (postcondition voided), keep `peek`.
fn stack_push_only() -> SpecType {
    SpecType::new(
        "StackPushOnly",
        Value::empty_seq(),
        vec![
            OpSig {
                name: "push",
                arity: 1,
                pre: pre_true,
                effect: Some(push_effect),
                ret: None,
            },
            OpSig {
                name: "pop",
                arity: 0,
                pre: pre_true,
                effect: None,
                ret: None,
            },
            OpSig {
                name: "peek",
                arity: 0,
                pre: pre_true,
                effect: None,
                ret: Some(pop_ret),
            },
        ],
    )
}

fn bag_add_effect(s: &Value, a: &[i64]) -> Value {
    // Multiset as a count map: order is erased from the state.
    let mut m = match s {
        Value::Map(m) => m.clone(),
        _ => Default::default(),
    };
    *m.entry(a[0]).or_insert(0) += 1;
    Value::Map(m)
}

fn bag_contains_ret(s: &Value, a: &[i64]) -> Value {
    match s {
        Value::Map(m) => Value::Bool(m.contains_key(&a[0])),
        _ => Value::Bool(false),
    }
}

/// The re-abstraction: an **event bag** — the state forgets ordering, so
/// blind adds commute. This is a change of abstraction (Liskov requires
/// an abstraction function), not a mere interface narrowing.
fn event_bag() -> SpecType {
    SpecType::new(
        "EventBag",
        Value::empty_map(),
        vec![
            OpSig {
                name: "push",
                arity: 1,
                pre: pre_true,
                effect: Some(bag_add_effect),
                ret: None,
            },
            OpSig {
                name: "contains",
                arity: 1,
                pre: pre_true,
                effect: None,
                ret: Some(bag_contains_ret),
            },
        ],
    )
}

fn analyze(label: &str, spec: &SpecType) {
    let universe = spec.op_universe(&[0, 1]);
    let states = spec.reachable_states(&universe, 2);
    let cn = consensus_number_bounded(spec, &universe, &states, 3);
    let perm = is_permissive(spec, &universe, &states);
    let bag = vec![op("push", &[0]), op("push", &[1])];
    let g = IndistGraph::build(spec, &bag, states.first().expect("states"));
    let movers = left_moves_in_graph(&g, 0) && left_moves_in_graph(&g, 1);
    println!(
        "{label:<16} CN≈{cn}  permissive={perm:<5}  pushes-left-move={movers:<5}  \
         G(push,push): {} class(es)",
        g.class_count()
    );
}

fn main() {
    let full = stack_full();
    let push_only = stack_push_only();
    let bag = event_bag();

    println!("== a user-defined stack, analyzed by dego-spec ==\n");
    println!("graphs for the bag {{push(1), push(2), pop}}:");
    let b3 = vec![op("push", &[1]), op("push", &[2]), op("pop", &[])];
    for (name, spec) in [("Stack", &full), ("StackPushOnly", &push_only)] {
        let g = IndistGraph::build(spec, &b3, &Value::empty_seq());
        println!(
            "  {name:<14}: {} nodes, {} edges, {} class(es), density {:.2}",
            g.node_count(),
            g.edge_count(),
            g.class_count(),
            g.density()
        );
    }

    println!("\nscalability audit (bounded analyses):");
    analyze("Stack", &full);
    analyze("StackPushOnly", &push_only);
    analyze("EventBag", &bag);

    // The subtype half of Definition 1 holds for the narrowing…
    match narrow_subtype(&full, &push_only, &[0, 1], 2) {
        Ok(()) => println!("\nStack is a narrow subtype of StackPushOnly (Definition 1 ok)"),
        Err(e) => println!("\nadjustment check failed: {e}"),
    }
    // …but the bag is NOT a subtype of the stack: its state abstraction
    // changed, which is beyond narrowing (it needs Liskov's abstraction
    // function between Seq and multiset states).
    let err = narrow_subtype(&full, &bag, &[0, 1], 2).unwrap_err();
    println!("Stack vs EventBag is not a narrowing: {err}");

    println!(
        "\nlesson: voiding pop does NOT make the stack scalable — its state\n\
         still orders pushes, peek keeps consensus power, and pushes do not\n\
         left-move. Erasing order from the abstraction itself (EventBag) is\n\
         what yields a permissive, CN1, left-mover-only object — the same\n\
         move DEGO's segmentations make for counters, sets and maps."
    );
}
