//! Quickstart: the DEGO adjusted objects in five minutes.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Walks through each adjusted object of the library — what it replaces,
//! what adjustment it applies, and how the ownership-based permission
//! handles work.

use dego_core::{
    mpsc, CounterIncrementOnly, SegmentationKind, SegmentedHashMap, SegmentedSet, WriteOnceReader,
    WriteOnceRef,
};
use std::sync::Arc;

fn main() {
    // ------------------------------------------------------------------
    // 1. WriteOnceRef — (R2, ALL): a reference whose `set` precondition
    //    is strengthened to "not yet set". Readers cache the pointer and
    //    skip all barriers after the first hit.
    println!("1) WriteOnceRef");
    let config: Arc<WriteOnceRef<String>> = Arc::new(WriteOnceRef::new());
    assert!(config.try_set("mode=fast".to_string()));
    assert!(!config.try_set("mode=slow".to_string())); // fails silently
    let reader = WriteOnceReader::new(Arc::clone(&config));
    println!("   config = {:?}", reader.get());

    // ------------------------------------------------------------------
    // 2. CounterIncrementOnly — (C3, CWSR): blind increments on
    //    per-thread segments; a read sums the segments.
    println!("2) CounterIncrementOnly");
    let hits = CounterIncrementOnly::new(4);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let hits = Arc::clone(&hits);
            s.spawn(move || {
                let cell = hits.cell(); // this thread's own segment
                for _ in 0..25_000 {
                    cell.inc(); // plain store, no lock prefix
                }
            });
        }
    });
    println!("   hits = {}", hits.get());
    assert_eq!(hits.get(), 100_000);

    // ------------------------------------------------------------------
    // 3. QueueMasp — (Q1, MWSR): many producers, one consumer; poll
    //    needs no compare-and-swap. The single-consumer permission is the
    //    *type*: `Consumer` is not clonable.
    println!("3) QueueMasp (MPSC queue)");
    let (producer, mut consumer) = mpsc::queue();
    std::thread::scope(|s| {
        for t in 0..3u64 {
            let p = producer.clone();
            s.spawn(move || {
                for i in 0..5u64 {
                    p.offer(t * 100 + i);
                }
            });
        }
    });
    let mut received = consumer.drain();
    received.sort_unstable();
    println!("   received {} messages", received.len());
    assert_eq!(received.len(), 15);

    // ------------------------------------------------------------------
    // 4. SegmentedHashMap — (M2, CWMR): blind puts/removes on per-thread
    //    SWMR segments; lock-free reads from any thread.
    println!("4) SegmentedHashMap");
    let map: Arc<SegmentedHashMap<u64, String>> =
        SegmentedHashMap::new(2, 1024, SegmentationKind::Extended);
    std::thread::scope(|s| {
        for t in 0..2u64 {
            let map = Arc::clone(&map);
            s.spawn(move || {
                let mut writer = map.writer(); // this thread's segment
                for i in 0..100 {
                    writer.put(t * 1000 + i, format!("value-{t}-{i}"));
                }
            });
        }
    });
    println!("   len = {}, get(1042) = {:?}", map.len(), map.get(&1042));
    assert_eq!(map.len(), 200);

    // ------------------------------------------------------------------
    // 5. SegmentedSet — (S3, CWMR): a blind-write set.
    println!("5) SegmentedSet");
    let group: Arc<SegmentedSet<u64>> = SegmentedSet::new(1, 64, SegmentationKind::Extended);
    let mut w = group.writer();
    w.add(7);
    w.add(7); // idempotent, returns nothing (the S2/S3 adjustment)
    w.remove(&9); // removing an absent member fails silently
    println!("   contains(7) = {}", group.contains(&7));
    assert!(group.contains(&7));

    println!("\nAll adjusted objects behaved as specified.");
}
