//! The middleware server end to end: boot a sharded `dego-server`,
//! speak the wire protocol, inspect the stats.
//!
//! Run with: `cargo run --example server_roundtrip`
//!
//! Everything the server stores lives in dego-core adjusted objects:
//! the keyspace and social rows in `(M2, CWMR)` segmented maps, the
//! per-shard mutation funnels in `(Q1, MWSR)` MPSC queues, the applied
//! counter in a `(C3, CWSR)` increment-only counter. This example
//! walks the protocol surface a client sees.

use dego_server::{spawn, Client, ServerConfig};

fn main() -> std::io::Result<()> {
    // 1. Boot: four shards, ephemeral loopback port.
    let server = spawn(ServerConfig {
        shards: 4,
        ..ServerConfig::default()
    })?;
    println!(
        "server up on {} with {} shards",
        server.local_addr(),
        server.shards()
    );

    // 2. Plain key-value traffic.
    let mut c = Client::connect(server.local_addr())?;
    c.set("motd", "adjust your objects")?;
    println!("GET motd          -> {:?}", c.get("motd")?);
    println!("INCR visits       -> {}", c.incr("visits", 1)?);
    println!("INCR visits       -> {}", c.incr("visits", 1)?);
    c.del("motd")?;
    println!("GET motd (deleted)-> {:?}", c.get("motd")?);

    // 3. Pipelining: many commands, one round trip.
    for i in 0..8 {
        c.send(&format!("SET key{i} value{i}"))?;
    }
    c.flush()?;
    for _ in 0..8 {
        c.read_reply()?;
    }
    println!("pipelined 8 SETs  -> key5 = {:?}", c.get("key5")?);

    // 4. The retwis verbs: a tiny social graph.
    for user in 0..3 {
        c.add_user(user)?;
    }
    c.follow(1, 0)?; // 1 follows 0
    c.follow(2, 0)?; // 2 follows 0
    c.post(0, 1001)?;
    c.post(0, 1002)?;
    println!("timeline of 1     -> {:?}", c.timeline(1)?);
    println!("followers of 0    -> {}", c.follower_count(0)?);
    c.join_group(2)?;
    println!("2 in group        -> {}", c.in_group(2)?);

    // 5. The stats endpoint: operation counters plus the contention
    //    stall proxy (which stays quiet — the storage plane never
    //    spins on a lock or retries a CAS).
    println!("\nSTATS:");
    for (name, value) in c.stats()? {
        println!("  {name:>16} = {value}");
    }

    // 6. Clean shutdown: drains the shard queues, joins every thread.
    drop(c);
    server.shutdown();
    println!("\nserver stopped cleanly");
    Ok(())
}
