//! The middleware server end to end: boot a sharded `dego-server`
//! behind the full seven-layer pipeline, speak the wire protocol,
//! inspect both planes' stats.
//!
//! Run with: `cargo run --example server_roundtrip`
//!
//! Two modes:
//!
//! * **embedded** (default): boots an in-process server with the full
//!   `trace → deadline → auth → rate-limit → ttl` stack and a demo
//!   token, then walks the protocol surface;
//! * **external**: set `DEGO_SERVER_ADDR=host:port` to drive an
//!   already-running `dego-server` instead (the CI smoke job boots the
//!   release binary and points this example at it). When the target
//!   requires authentication, pass the token via `DEGO_AUTH_TOKEN`.
//!
//! Exits non-zero on any protocol failure, so it doubles as a smoke
//! check.

use dego_server::{spawn, Client, MiddlewareConfig, Role, ServerConfig, ServerHandle, TokenSpec};

fn check(cond: bool, what: &str) -> std::io::Result<()> {
    if cond {
        Ok(())
    } else {
        Err(std::io::Error::other(format!("check failed: {what}")))
    }
}

fn main() -> std::io::Result<()> {
    // 1. Find or boot a server.
    let external = std::env::var("DEGO_SERVER_ADDR").ok();
    let embedded: Option<ServerHandle> = match &external {
        Some(_) => None,
        None => {
            let mut middleware = MiddlewareConfig::full();
            middleware.auth.tokens = vec![TokenSpec {
                name: "demo".into(),
                token: "demo-token".into(),
                role: Role::ReadWrite,
            }];
            Some(spawn(ServerConfig {
                shards: 4,
                middleware,
                ..ServerConfig::default()
            })?)
        }
    };
    let addr = match (&external, &embedded) {
        (Some(addr), _) => addr.clone(),
        (None, Some(server)) => server.local_addr().to_string(),
        (None, None) => unreachable!("one mode is always selected"),
    };
    println!("driving dego-server at {addr}");

    // 2. Authenticate when a token is at hand (embedded mode always
    //    has one; external mode via DEGO_AUTH_TOKEN).
    let mut c = Client::connect(&*addr)?;
    let token = std::env::var("DEGO_AUTH_TOKEN").unwrap_or_else(|_| "demo-token".to_string());
    if embedded.is_some() || std::env::var("DEGO_AUTH_TOKEN").is_ok() {
        c.auth(&token)?;
        println!("AUTH              -> OK");
    }

    // 3. Plain key-value traffic.
    c.set("motd", "adjust your objects")?;
    println!("GET motd          -> {:?}", c.get("motd")?);
    check(
        c.get("motd")?.as_deref() == Some("adjust your objects"),
        "SET/GET",
    )?;
    println!("INCR visits       -> {}", c.incr("visits", 1)?);
    println!("INCR visits       -> {}", c.incr("visits", 1)?);
    c.del("motd")?;
    check(c.get("motd")?.is_none(), "DEL")?;
    println!("GET motd (deleted)-> {:?}", c.get("motd")?);

    // 4. TTL: arm a timer, watch the key lazily expire.
    c.set("ephemeral", "going going gone")?;
    let armed = c.expire("ephemeral", 150)?;
    println!("EXPIRE ephemeral  -> {armed}");
    check(armed, "EXPIRE arms on a live key")?;
    std::thread::sleep(std::time::Duration::from_millis(300));
    let expired = c.get("ephemeral")?;
    println!("GET after TTL     -> {expired:?}");
    check(expired.is_none(), "TTL lazily expires")?;

    // 5. Pipelining: many commands, one round trip, through the
    //    server's batched call_batch/group-commit path. The burst size
    //    is tunable (the CI smoke job drives it at 32) and the replies
    //    come back in request order — including the GET-after-SET in
    //    the same burst, which the server barriers on.
    let burst: usize = std::env::var("DEGO_ROUNDTRIP_PIPELINE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
        .max(8); // key5 below must exist whatever the tuning says
    let mut script: Vec<String> = (0..burst).map(|i| format!("SET key{i} value{i}")).collect();
    script.push("GET key5".to_string());
    let replies = c.pipeline(&script)?;
    println!(
        "pipelined {burst} SETs + 1 GET -> {} replies, key5 = {:?}",
        replies.len(),
        replies.last()
    );
    check(replies.len() == burst + 1, "one reply per request")?;
    check(
        matches!(replies.last(), Some(dego_server::ClientReply::Value(v)) if v == "value5"),
        "batched GET observes the SET before it",
    )?;

    // 6. The retwis verbs: a tiny social graph. User ids are derived
    //    from the process id so re-running against a persistent
    //    external server starts from fresh rows every time.
    let u = std::process::id() as u64 * 100;
    for user in u..u + 3 {
        c.add_user(user)?;
    }
    c.follow(u + 1, u)?; // u+1 follows u
    c.follow(u + 2, u)?; // u+2 follows u
    c.post(u, 1001)?;
    c.post(u, 1002)?;
    println!("timeline of u+1   -> {:?}", c.timeline(u + 1)?);
    check(c.timeline(u + 1)? == vec![1002, 1001], "timeline fan-out")?;
    println!("followers of u    -> {}", c.follower_count(u)?);
    c.join_group(u + 2)?;
    println!("u+2 in group      -> {}", c.in_group(u + 2)?);

    // 7. The stats endpoint: storage-plane counters plus — when a
    //    middleware stack is configured — the per-layer mw_* lines the
    //    trace layer folds in.
    println!("\nSTATS:");
    for (name, value) in c.stats()? {
        println!("  {name:>20} = {value}");
    }

    // 8. Clean shutdown (embedded mode only).
    drop(c);
    if let Some(server) = embedded {
        server.shutdown();
        println!("\nserver stopped cleanly");
    } else {
        println!("\nexternal server left running");
    }
    Ok(())
}
