//! A realistic DEGO scenario: a metrics pipeline.
//!
//! Run with: `cargo run --example metrics_pipeline`
//!
//! The motivating workload of the paper's introduction: a server tallies
//! per-endpoint request statistics. Every request thread bumps counters
//! and appends events; a single collector thread aggregates. Each shared
//! object is *adjusted to that exact usage*:
//!
//! * request counters are increment-only (`C3`, CWSR) — nobody resets
//!   them, nobody needs the return value of an increment;
//! * the event log is multi-producer single-consumer (`Q1`, MWSR) — only
//!   the collector drains it;
//! * the service configuration is write-once (`R2`) — set at boot, read
//!   on every request.

use dego_core::{mpsc, CounterIncrementOnly, WriteOnceReader, WriteOnceRef};
use std::sync::Arc;

#[derive(Debug, Clone)]
struct Config {
    sampling: u64,
}

#[derive(Debug)]
struct Event {
    endpoint: usize,
    micros: u64,
}

const ENDPOINTS: usize = 4;
const WORKERS: usize = 4;
const REQUESTS_PER_WORKER: u64 = 50_000;

fn main() {
    // Boot: publish the configuration exactly once.
    let config: Arc<WriteOnceRef<Config>> = Arc::new(WriteOnceRef::new());
    config.set(Config { sampling: 100 });

    // Per-endpoint increment-only counters.
    let counters: Vec<Arc<CounterIncrementOnly>> = (0..ENDPOINTS)
        .map(|_| CounterIncrementOnly::new(WORKERS))
        .collect();

    // The event log: all workers produce, the collector consumes.
    let (event_tx, mut event_rx) = mpsc::queue::<Event>();

    std::thread::scope(|s| {
        // Request workers.
        for w in 0..WORKERS {
            let counters = counters.clone();
            let config = WriteOnceReader::new(Arc::clone(&config));
            let event_tx = event_tx.clone();
            s.spawn(move || {
                let cells: Vec<_> = counters.iter().map(|c| c.cell()).collect();
                let sampling = config.get().expect("configured at boot").sampling;
                for i in 0..REQUESTS_PER_WORKER {
                    let endpoint = (w as u64 + i) as usize % ENDPOINTS;
                    cells[endpoint].inc(); // hot path: plain store
                    if i % sampling == 0 {
                        event_tx.offer(Event {
                            endpoint,
                            micros: 10 + (i % 90),
                        });
                    }
                }
            });
        }

        // The collector: the unique consumer of the event log.
        let counters_for_collector = counters.clone();
        s.spawn(move || {
            let total_expected = WORKERS as u64 * REQUESTS_PER_WORKER;
            let mut sampled = Vec::new();
            loop {
                while let Some(ev) = event_rx.poll() {
                    sampled.push(ev);
                }
                let processed: u64 = counters_for_collector.iter().map(|c| c.get()).sum();
                if processed == total_expected {
                    // Drain any stragglers and report.
                    while let Some(ev) = event_rx.poll() {
                        sampled.push(ev);
                    }
                    println!(
                        "collector: {processed} requests, {} sampled events",
                        sampled.len()
                    );
                    let mean_us = sampled.iter().map(|e| e.micros).sum::<u64>() as f64
                        / sampled.len().max(1) as f64;
                    println!("collector: mean sampled latency {mean_us:.1} µs");
                    for (i, c) in counters_for_collector.iter().enumerate() {
                        println!("collector: endpoint {i}: {} requests", c.get());
                    }
                    assert!(sampled.iter().all(|e| e.endpoint < ENDPOINTS));
                    break;
                }
                std::hint::spin_loop();
            }
        });
    });

    let grand_total: u64 = counters.iter().map(|c| c.get()).sum();
    assert_eq!(grand_total, WORKERS as u64 * REQUESTS_PER_WORKER);
    println!("pipeline complete: {grand_total} requests tallied exactly.");
}
