//! # dego — workspace facade
//!
//! Re-exports every crate of the DEGO workspace under one roof so the
//! root-level integration tests and examples have a single anchor
//! package. See the per-crate docs for the real content:
//!
//! * [`dego_core`] — the adjusted shared objects (the DEGO library)
//! * [`dego_spec`] — the formal foundations (types, graphs, movers)
//! * [`dego_juc`] — the `java.util.concurrent`-style baselines
//! * [`dego_metrics`] — the contention stall proxy and statistics
//! * [`dego_corpus`] — the usage-study pipeline (§6.1)
//! * [`dego_retwis`] — the social-network application (§6.3)
//! * [`dego_bench`] — the figure harnesses
//! * [`dego_server`] — the sharded adjusted-object middleware server

#![warn(missing_docs)]

pub use dego_bench;
pub use dego_core;
pub use dego_corpus;
pub use dego_juc;
pub use dego_metrics;
pub use dego_retwis;
pub use dego_server;
pub use dego_spec;
