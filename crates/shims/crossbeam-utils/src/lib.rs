//! Offline shim for `crossbeam-utils`: only [`CachePadded`], which is
//! all this workspace uses. API-compatible with the real crate for that
//! type; replace the `path` dependency with the registry crate to swap
//! back.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to the length of a cache line (128 bytes
/// covers the prefetch pairs of modern x86_64 and the large lines of
/// some aarch64 parts, matching the real crate's choice there).
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

unsafe impl<T: Send> Send for CachePadded<T> {}
unsafe impl<T: Sync> Sync for CachePadded<T> {}

impl<T> CachePadded<T> {
    /// Pads and aligns a value to the length of a cache line.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachePadded")
            .field("value", &self.value)
            .finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(t: T) -> Self {
        CachePadded::new(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_and_transparent() {
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
        let c = CachePadded::new(7u64);
        assert_eq!(*c, 7);
        assert_eq!(c.into_inner(), 7);
    }
}
