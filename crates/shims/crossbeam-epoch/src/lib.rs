//! Offline shim for `crossbeam-epoch`: the pointer types ([`Atomic`],
//! [`Owned`], [`Shared`]) and guard API ([`pin`], [`unprotected`],
//! [`Guard::defer_destroy`]) this workspace uses, over a simplified but
//! sound reclamation scheme.
//!
//! # Reclamation model
//!
//! Instead of per-thread epochs, the shim keeps one global count of
//! live guards ([`PINS`]) and a monotone [`ERA`]. Deferred garbage is
//! stamped with the era current at [`Guard::defer_destroy`] time and is
//! freed only by a thread that (a) just dropped a guard bringing the
//! count to zero, (b) bumped the era to `E`, and (c) still observed a
//! zero count afterwards — and then only garbage stamped strictly
//! before `E`. The safety argument mirrors epoch reclamation: a zero
//! observation means every guard that could hold a reference to an
//! unlinked node has been dropped, and the era stamp excludes garbage
//! deferred by guards pinned after that observation. Under a constant
//! open pin (e.g. a reader parked on a snapshot) garbage accumulates,
//! exactly like a stalled epoch in the real crate.
//!
//! Only the API surface this workspace needs is provided (no tagged
//! pointers, no `defer` closures); replace the `path` dependency with
//! the registry crate to swap back.

use std::marker::PhantomData;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

// ---------------------------------------------------------- reclamation

static PINS: AtomicUsize = AtomicUsize::new(0);
static ERA: AtomicU64 = AtomicU64::new(1);
static GARBAGE: Mutex<Vec<Deferred>> = Mutex::new(Vec::new());

struct Deferred {
    era: u64,
    ptr: *mut u8,
    drop_fn: unsafe fn(*mut u8),
}

// SAFETY: the raw pointer is only dereferenced by `drop_fn` once the
// reclamation protocol has proved no thread can reach it.
unsafe impl Send for Deferred {}

unsafe fn drop_box<T>(ptr: *mut u8) {
    drop(unsafe { Box::from_raw(ptr.cast::<T>()) });
}

/// Free every deferred item stamped strictly before `before_era`.
fn collect(before_era: u64) {
    let ripe: Vec<Deferred> = {
        let mut garbage = GARBAGE.lock().unwrap_or_else(|p| p.into_inner());
        let mut ripe = Vec::new();
        garbage.retain_mut(|d| {
            if d.era < before_era {
                ripe.push(Deferred {
                    era: d.era,
                    ptr: d.ptr,
                    drop_fn: d.drop_fn,
                });
                false
            } else {
                true
            }
        });
        ripe
    };
    // Run destructors outside the lock: they may defer more garbage.
    for d in ripe {
        // SAFETY: the caller proved no live guard predates `before_era`.
        unsafe { (d.drop_fn)(d.ptr) };
    }
}

/// Attempt a collection right now; frees garbage only when no guard is
/// live anywhere in the process.
fn try_collect() {
    let era = ERA.fetch_add(1, Ordering::SeqCst);
    if PINS.load(Ordering::SeqCst) == 0 {
        collect(era + 1);
    }
}

// --------------------------------------------------------------- guard

/// A guard keeping deferred destruction at bay while it is live.
pub struct Guard {
    pinned: bool,
}

impl Guard {
    /// Defer dropping and freeing the heap allocation behind `ptr`.
    ///
    /// # Safety
    ///
    /// `ptr` must come from [`Owned::new`] (i.e. a `Box` allocation),
    /// must already be unreachable for threads that pin after this
    /// call, and must not be deferred twice.
    pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
        debug_assert!(!ptr.is_null(), "cannot defer destruction of null");
        let item = Deferred {
            era: ERA.load(Ordering::SeqCst),
            ptr: ptr.raw.cast::<u8>(),
            drop_fn: drop_box::<T>,
        };
        GARBAGE.lock().unwrap_or_else(|p| p.into_inner()).push(item);
    }

    /// Defer running an arbitrary closure (type-erased like
    /// [`Guard::defer_destroy`], hence "unchecked").
    ///
    /// # Safety
    ///
    /// The closure must stay sound to call at any later time on any
    /// thread: anything it frees must already be unreachable for
    /// threads that pin after this call.
    pub unsafe fn defer_unchecked<F, R>(&self, f: F)
    where
        F: FnOnce() -> R,
    {
        unsafe fn call_closure(ptr: *mut u8) {
            // SAFETY: round-trip of the double box below.
            let f = unsafe { Box::from_raw(ptr.cast::<Box<dyn FnOnce()>>()) };
            (*f)();
        }

        let erased: Box<dyn FnOnce() + '_> = Box::new(move || {
            let _ = f();
        });
        // SAFETY: lifetime erasure is this method's contract — the
        // caller guarantees the closure (and its captures) stay valid
        // until it runs, exactly as in the real crate.
        let eternal: Box<dyn FnOnce() + 'static> = unsafe { std::mem::transmute(erased) };
        let boxed: Box<Box<dyn FnOnce()>> = Box::new(eternal);
        let item = Deferred {
            era: ERA.load(Ordering::SeqCst),
            ptr: Box::into_raw(boxed).cast::<u8>(),
            drop_fn: call_closure,
        };
        GARBAGE.lock().unwrap_or_else(|p| p.into_inner()).push(item);
    }

    /// Nudge the collector (mirrors the real crate's `flush`).
    pub fn flush(&self) {
        if !self.pinned {
            try_collect();
        }
        // A pinned guard keeps everything alive by definition; nothing
        // to do until it drops.
    }

    /// Re-examine the garbage, as if unpinning and repinning.
    pub fn repin(&mut self) {
        if self.pinned {
            PINS.fetch_sub(1, Ordering::SeqCst);
            try_collect();
            PINS.fetch_add(1, Ordering::SeqCst);
        }
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if self.pinned && PINS.fetch_sub(1, Ordering::SeqCst) == 1 {
            try_collect();
        }
    }
}

/// Pin the current thread: returned [`Guard`] keeps loaded [`Shared`]
/// pointers alive.
pub fn pin() -> Guard {
    PINS.fetch_add(1, Ordering::SeqCst);
    Guard { pinned: true }
}

static UNPROTECTED: Guard = Guard { pinned: false };

/// A dummy guard for exclusive access (construction/teardown).
///
/// # Safety
///
/// The caller must guarantee no other thread is accessing the data
/// structure concurrently, and that deferred items may be freed at any
/// moment.
pub unsafe fn unprotected() -> &'static Guard {
    &UNPROTECTED
}

// Sync for the static above: Guard has no interior state.
unsafe impl Sync for Guard {}

// ------------------------------------------------------------- pointer

/// Types carrying a heap pointer that [`Atomic`] can store.
pub trait Pointer<T> {
    /// Consume `self` into the raw pointer.
    fn into_ptr(self) -> *mut T;

    /// Rebuild from a raw pointer (for CAS-failure hand-back).
    ///
    /// # Safety
    ///
    /// `ptr` must be the value a matching `into_ptr` returned.
    unsafe fn from_ptr(ptr: *mut T) -> Self;
}

/// An owned heap pointer (the unique owner of its allocation).
pub struct Owned<T> {
    ptr: NonNull<T>,
    _marker: PhantomData<Box<T>>,
}

unsafe impl<T: Send> Send for Owned<T> {}

impl<T> Owned<T> {
    /// Allocate `value` on the heap.
    pub fn new(value: T) -> Owned<T> {
        Owned {
            ptr: NonNull::from(Box::leak(Box::new(value))),
            _marker: PhantomData,
        }
    }

    /// Publish the allocation as a [`Shared`], giving up ownership.
    pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
        let raw = self.ptr.as_ptr();
        std::mem::forget(self);
        Shared {
            raw,
            _marker: PhantomData,
        }
    }

    /// Take the allocation back as a `Box`.
    pub fn into_box(self) -> Box<T> {
        let raw = self.ptr.as_ptr();
        std::mem::forget(self);
        // SAFETY: `Owned` uniquely owns the Box allocation.
        unsafe { Box::from_raw(raw) }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        // SAFETY: unique ownership.
        drop(unsafe { Box::from_raw(self.ptr.as_ptr()) });
    }
}

impl<T> std::ops::Deref for Owned<T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: unique ownership of a live allocation.
        unsafe { self.ptr.as_ref() }
    }
}

impl<T> std::ops::DerefMut for Owned<T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: unique ownership of a live allocation.
        unsafe { self.ptr.as_mut() }
    }
}

impl<T> Pointer<T> for Owned<T> {
    fn into_ptr(self) -> *mut T {
        let raw = self.ptr.as_ptr();
        std::mem::forget(self);
        raw
    }

    unsafe fn from_ptr(ptr: *mut T) -> Self {
        Owned {
            // SAFETY: caller passes back a pointer from `into_ptr`,
            // which always came from a live Box.
            ptr: unsafe { NonNull::new_unchecked(ptr) },
            _marker: PhantomData,
        }
    }
}

impl<T> From<T> for Owned<T> {
    fn from(value: T) -> Self {
        Owned::new(value)
    }
}

/// A pointer valid for the lifetime of a [`Guard`]. `Copy`, may be
/// null.
pub struct Shared<'g, T> {
    raw: *mut T,
    _marker: PhantomData<(&'g Guard, *const T)>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Shared<'_, T> {}

impl<T> PartialEq for Shared<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}

impl<T> Eq for Shared<'_, T> {}

impl<T> std::fmt::Debug for Shared<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Shared({:p})", self.raw)
    }
}

impl<'g, T> Shared<'g, T> {
    /// The null pointer.
    pub fn null() -> Shared<'g, T> {
        Shared {
            raw: std::ptr::null_mut(),
            _marker: PhantomData,
        }
    }

    /// Whether this is null.
    pub fn is_null(&self) -> bool {
        self.raw.is_null()
    }

    /// The raw pointer.
    pub fn as_raw(&self) -> *const T {
        self.raw
    }

    /// Dereference to `Option<&T>` (None when null).
    ///
    /// # Safety
    ///
    /// The pointee must still be alive: loaded under the guard `'g`
    /// from a structure that defers destruction through this module.
    pub unsafe fn as_ref(&self) -> Option<&'g T> {
        // SAFETY: forwarded to the caller.
        unsafe { self.raw.as_ref() }
    }

    /// Dereference assuming non-null.
    ///
    /// # Safety
    ///
    /// As [`Shared::as_ref`], plus the pointer must not be null.
    pub unsafe fn deref(&self) -> &'g T {
        debug_assert!(!self.raw.is_null());
        // SAFETY: forwarded to the caller.
        unsafe { &*self.raw }
    }

    /// Reclaim unique ownership.
    ///
    /// # Safety
    ///
    /// The caller must be the unique owner (e.g. teardown under
    /// [`unprotected`]) and the pointer must not be null.
    pub unsafe fn into_owned(self) -> Owned<T> {
        debug_assert!(!self.raw.is_null());
        Owned {
            // SAFETY: non-null per contract.
            ptr: unsafe { NonNull::new_unchecked(self.raw) },
            _marker: PhantomData,
        }
    }
}

impl<T> Pointer<T> for Shared<'_, T> {
    fn into_ptr(self) -> *mut T {
        self.raw
    }

    unsafe fn from_ptr(ptr: *mut T) -> Self {
        Shared {
            raw: ptr,
            _marker: PhantomData,
        }
    }
}

// -------------------------------------------------------------- atomic

/// An atomic nullable heap pointer, loadable under a [`Guard`].
pub struct Atomic<T> {
    data: AtomicPtr<T>,
}

unsafe impl<T: Send + Sync> Send for Atomic<T> {}
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

/// The error of a failed [`Atomic::compare_exchange`].
pub struct CompareExchangeError<'g, T, P: Pointer<T>> {
    /// The value the atomic actually held.
    pub current: Shared<'g, T>,
    /// The proposed new value, handed back to the caller.
    pub new: P,
}

impl<T, P: Pointer<T>> std::fmt::Debug for CompareExchangeError<'_, T, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompareExchangeError")
            .field("current", &self.current)
            .finish_non_exhaustive()
    }
}

impl<T> Atomic<T> {
    /// Allocate `value` and store the pointer.
    pub fn new(value: T) -> Atomic<T> {
        Atomic {
            data: AtomicPtr::new(Box::into_raw(Box::new(value))),
        }
    }

    /// A null atomic pointer.
    pub const fn null() -> Atomic<T> {
        Atomic {
            data: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Load the pointer under `guard`.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            raw: self.data.load(ord),
            _marker: PhantomData,
        }
    }

    /// Store a new pointer. The previous pointee, if any, is **not**
    /// reclaimed (mirror of the real crate: the caller must have saved
    /// and deferred it).
    pub fn store<P: Pointer<T>>(&self, new: P, ord: Ordering) {
        self.data.store(new.into_ptr(), ord);
    }

    /// Swap the pointer, returning the previous value.
    pub fn swap<'g, P: Pointer<T>>(
        &self,
        new: P,
        ord: Ordering,
        _guard: &'g Guard,
    ) -> Shared<'g, T> {
        Shared {
            raw: self.data.swap(new.into_ptr(), ord),
            _marker: PhantomData,
        }
    }

    /// Take unique ownership of the allocation, if non-null.
    ///
    /// # Safety
    ///
    /// The caller must be the unique owner of the atomic and its
    /// pointee (e.g. inside `Drop`).
    pub unsafe fn try_into_owned(self) -> Option<Owned<T>> {
        let raw = self.data.into_inner();
        NonNull::new(raw).map(|ptr| Owned {
            ptr,
            _marker: PhantomData,
        })
    }

    /// Compare-and-exchange: install `new` iff the current pointer is
    /// `current`; on failure the proposed value is handed back in the
    /// error.
    pub fn compare_exchange<'g, P: Pointer<T>>(
        &self,
        current: Shared<'_, T>,
        new: P,
        success: Ordering,
        failure: Ordering,
        _guard: &'g Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
        let new_ptr = new.into_ptr();
        match self
            .data
            .compare_exchange(current.raw, new_ptr, success, failure)
        {
            Ok(prev) => Ok(Shared {
                raw: prev,
                _marker: PhantomData,
            }),
            Err(actual) => Err(CompareExchangeError {
                current: Shared {
                    raw: actual,
                    _marker: PhantomData,
                },
                // SAFETY: round-trip of the pointer we just took.
                new: unsafe { P::from_ptr(new_ptr) },
            }),
        }
    }
}

impl<T> Default for Atomic<T> {
    fn default() -> Self {
        Atomic::null()
    }
}

impl<T> std::fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Atomic({:p})", self.data.load(Ordering::Relaxed))
    }
}

impl<T> From<Owned<T>> for Atomic<T> {
    fn from(owned: Owned<T>) -> Self {
        Atomic {
            data: AtomicPtr::new(owned.into_ptr()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn load_store_swap_roundtrip() {
        let a = Atomic::new(41);
        let guard = pin();
        let s = a.load(Ordering::Acquire, &guard);
        assert_eq!(unsafe { *s.deref() }, 41);
        let old = a.swap(Owned::new(42), Ordering::AcqRel, &guard);
        unsafe { guard.defer_destroy(old) };
        assert_eq!(unsafe { *a.load(Ordering::Acquire, &guard).deref() }, 42);
        drop(guard);
        let guard = unsafe { unprotected() };
        let last = a.load(Ordering::Acquire, guard);
        drop(unsafe { last.into_owned() });
    }

    #[test]
    fn cas_failure_hands_new_back() {
        let a = Atomic::new(1);
        let guard = pin();
        let current = a.load(Ordering::Acquire, &guard);
        let err = a
            .compare_exchange(
                Shared::null(),
                Owned::new(2),
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            )
            .unwrap_err();
        assert_eq!(err.current, current);
        drop(err.new); // Owned handed back: freeing must not double-free
        let prev = a
            .compare_exchange(
                current,
                Owned::new(3),
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            )
            .unwrap();
        unsafe { guard.defer_destroy(prev) };
        drop(guard);
        drop(unsafe { a.load(Ordering::Acquire, unprotected()).into_owned() });
    }

    #[test]
    fn deferred_destruction_runs_destructors() {
        struct NoteDrop(Arc<AtomicUsize>);
        impl Drop for NoteDrop {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }

        let drops = Arc::new(AtomicUsize::new(0));
        {
            let guard = pin();
            let owned = Owned::new(NoteDrop(Arc::clone(&drops)));
            let shared = owned.into_shared(&guard);
            unsafe { guard.defer_destroy(shared) };
            assert_eq!(drops.load(Ordering::SeqCst), 0, "kept alive while pinned");
        }
        // Dropping the last guard collects — eventually, since guards
        // of concurrently running tests also hold collection back.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while drops.load(Ordering::SeqCst) == 0 && std::time::Instant::now() < deadline {
            drop(pin());
            std::thread::yield_now();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_swap_hammer() {
        let a = Arc::new(Atomic::new(0u64));
        std::thread::scope(|s| {
            for t in 0..4 {
                let a = Arc::clone(&a);
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        let guard = pin();
                        let old = a.swap(Owned::new(t * 1_000_000 + i), Ordering::AcqRel, &guard);
                        if !old.is_null() {
                            unsafe { guard.defer_destroy(old) };
                        }
                    }
                });
            }
        });
        let last = a.load(Ordering::Acquire, unsafe { unprotected() });
        drop(unsafe { last.into_owned() });
    }
}
