//! Offline shim for `rand`: [`rngs::StdRng`], [`SeedableRng`] and the
//! [`Rng`] methods this workspace uses (`gen_range` over integer and
//! float ranges, `gen_bool`, `gen`). Deterministic for a given seed —
//! like the real `StdRng` — though the streams differ (the generator
//! here is SplitMix64, not ChaCha12). Replace the `path` dependency
//! with the registry crate to swap back.

use std::ops::{Range, RangeInclusive};

/// A random number generator core.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Seed from a single `u64` (the only constructor this workspace
    /// uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// Values producible uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// A sampleable range for [`Rng::gen_range`]. Generic over the output
/// type — like the real crate — so integer literals infer from the
/// expected result type.
pub trait SampleRange<T> {
    /// Sample uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing generator methods (blanket over every [`RngCore`]).
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Sample a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn unit_f64(bits: u64) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }

        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty inclusive range in gen_range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }

        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG (SplitMix64 under the hood).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng {
                // Scramble so that small consecutive seeds diverge.
                state: state ^ 0x6A09_E667_F3BC_C909,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..10).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let zs: Vec<u64> = (0..10).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_hit_bounds_and_stay_inside() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2_000 {
            let v = rng.gen_range(0..4);
            assert!((0..4).contains(&v));
            saw_lo |= v == 0;
            saw_hi |= v == 3;
        }
        assert!(saw_lo && saw_hi);
        for _ in 0..100 {
            let f = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
            let g = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&g));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
