//! Offline shim for `proptest`: the strategy combinators, runner macro
//! and assertion macros this workspace uses. Differences from the real
//! crate: no shrinking (a failing case reports its unshrunk input), a
//! fixed deterministic RNG per test function, and a regex-subset string
//! strategy (character classes, literals and `{m,n}` / `?` / `*` / `+`
//! repetition). Replace the `path` dependency with the registry crate
//! to swap back.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ----------------------------------------------------------------- rng

/// The deterministic generator driving every strategy (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derive a generator from a test name: deterministic across runs,
    /// distinct across tests.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

// -------------------------------------------------------------- errors

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert!` failed: the property is violated.
    Fail(String),
    /// A `prop_assume!` failed: skip the case, try another.
    Reject(String),
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// ------------------------------------------------------------ strategy

/// A recipe producing random values of one type.
pub trait Strategy {
    /// The produced type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Filter produced values (rejected draws are retried).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn DynStrategy<T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The result of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 draws in a row: {}", self.whence);
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ----------------------------------------------------------- arbitrary

/// Types with a canonical full-range strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Produce one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: PhantomData,
    }
}

// -------------------------------------------------------------- ranges

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// -------------------------------------------------------------- tuples

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

// ------------------------------------------------------- string regexes

/// `&str` patterns act as regex-subset string strategies.
///
/// Supported: literal characters, character classes with ranges
/// (`[a-zA-Z0-9_]`), and repetition `{m}`, `{m,n}`, `?`, `*`, `+`
/// (unbounded capped at 8).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..n {
                let i = rng.below(atom.choices.len() as u64) as usize;
                out.push(atom.choices[i]);
            }
        }
        out
    }
}

struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut chars = pattern.chars().peekable();
    let mut atoms: Vec<Atom> = Vec::new();
    while let Some(c) = chars.next() {
        let choices = match c {
            '[' => {
                let mut class = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().expect("range start");
                            let hi = chars.next().expect("range end");
                            for u in lo as u32..=hi as u32 {
                                class.extend(char::from_u32(u));
                            }
                        }
                        Some(x) => {
                            if let Some(p) = prev.take() {
                                class.push(p);
                            }
                            prev = Some(x);
                        }
                        None => panic!("unterminated character class in {pattern:?}"),
                    }
                }
                if let Some(p) = prev {
                    class.push(p);
                }
                class
            }
            '\\' => vec![chars.next().expect("escaped character")],
            other => vec![other],
        };
        assert!(!choices.is_empty(), "empty character class in {pattern:?}");
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for x in chars.by_ref() {
                    if x == '}' {
                        break;
                    }
                    spec.push(x);
                }
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("repeat min"),
                        n.trim().parse().expect("repeat max"),
                    ),
                    None => {
                        let m = spec.trim().parse().expect("repeat count");
                        (m, m)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "inverted repetition in {pattern:?}");
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

// ---------------------------------------------------------- collections

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count specification for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector of values from `element`, with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// -------------------------------------------------------------- macros

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$( $crate::Strategy::boxed($strategy) ),+])
    };
}

/// Fallible assertion: fails the current case without panicking the
/// whole runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fallible equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            left, right, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left, right, format!($($fmt)+)
        );
    }};
}

/// Fallible inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Discard the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// The test-runner macro: each contained `fn` becomes a `#[test]`
/// running `cases` accepted random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $config; $($rest)*);
    };
    (@run $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng =
                $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(16).max(256);
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest: rejected too many cases ({} accepted of {} wanted)",
                    accepted,
                    config.cases
                );
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let case_dbg = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        move || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        }
                    )
                );
                match outcome {
                    Ok(Ok(())) => accepted += 1,
                    Ok(Err($crate::TestCaseError::Reject(_))) => {}
                    Ok(Err($crate::TestCaseError::Fail(msg))) => {
                        panic!("proptest case failed: {}\n  input: {}", msg, case_dbg)
                    }
                    Err(payload) => {
                        eprintln!("proptest case panicked\n  input: {}", case_dbg);
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_subset() {
        let mut rng = crate::TestRng::from_name("string_pattern_subset");
        for _ in 0..200 {
            let s = "[a-z][a-zA-Z0-9_]{0,8}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "bad length: {s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }

    #[test]
    fn union_and_map_cover_all_arms() {
        let mut rng = crate::TestRng::from_name("union_and_map");
        let strategy = prop_oneof![
            (0u8..4).prop_map(|x| x as u32),
            Just(99u32),
            any::<u8>().prop_map(|x| 200 + x as u32),
        ];
        let mut saw = [false; 3];
        for _ in 0..300 {
            match strategy.generate(&mut rng) {
                v if v < 4 => saw[0] = true,
                99 => saw[1] = true,
                v if (200..=455).contains(&v) => saw[2] = true,
                v => panic!("impossible draw {v}"),
            }
        }
        assert_eq!(saw, [true; 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn runner_respects_ranges(
            xs in collection::vec(1usize..10, 2..5),
            flag in any::<bool>(),
            label in "[ab]{2,3}",
        ) {
            prop_assume!(xs.len() >= 2);
            prop_assert!(xs.iter().all(|&x| (1..10).contains(&x)));
            prop_assert_eq!(flag, flag);
            prop_assert_ne!(label.len(), 0);
            prop_assert!((2..=3).contains(&label.len()), "bad label {}", label);
        }
    }
}
