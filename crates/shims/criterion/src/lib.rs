//! Offline shim for `criterion`: benchmark groups, `Bencher::iter` /
//! `iter_custom`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros. The runner is real but deliberately
//! simple — fixed warm-up, `sample_size` timed samples within
//! `measurement_time`, median ns/op to stdout — with none of the
//! statistics machinery of the real crate. Replace the `path`
//! dependency with the registry crate to swap back.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding `value`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// An identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// The benchmark driver handed to each registered function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            measurement_time: Duration::from_secs(1),
            sample_size: 10,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let mut group = self.benchmark_group("ungrouped");
        group.bench_function(id, f);
        group.finish();
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Total time budget for the samples of each benchmark.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Measure `f` under this group's settings.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        let mut bencher = Bencher {
            budget: self.measurement_time,
            samples: self.sample_size,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some(ns_per_iter) => {
                println!("  {}/{}: {:.1} ns/iter", self.name, id.label, ns_per_iter);
            }
            None => println!("  {}/{}: no measurement", self.name, id.label),
        }
    }

    /// Measure `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Times the closure handed to it.
pub struct Bencher {
    budget: Duration,
    samples: usize,
    result: Option<f64>,
}

impl Bencher {
    /// Measure `routine` called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit one sample's budget?
        let per_sample = self.budget.as_secs_f64() / self.samples as f64;
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let t = start.elapsed().as_secs_f64();
            if t >= per_sample.min(0.01) || iters >= 1 << 30 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            per_iter.push(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
        self.record(per_iter);
    }

    /// Measure with caller-controlled timing: `routine` receives the
    /// iteration count and returns the elapsed wall time.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        // Calibrate the per-sample iteration count.
        let per_sample = self.budget.as_secs_f64() / self.samples as f64;
        let mut iters: u64 = 1;
        loop {
            let t = routine(iters).as_secs_f64();
            if t >= per_sample.min(0.01) || iters >= 1 << 30 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = routine(iters);
            per_iter.push(t.as_secs_f64() * 1e9 / iters as f64);
        }
        self.record(per_iter);
    }

    fn record(&mut self, mut per_iter: Vec<f64>) {
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.result = Some(per_iter[per_iter.len() / 2]);
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-self-test");
        group.measurement_time(Duration::from_millis(50));
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_function("count", |b| b.iter(|| count += 1));
        group.bench_function(BenchmarkId::new("custom", 2), |b| {
            b.iter_custom(|iters| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(());
                }
                start.elapsed()
            })
        });
        group.finish();
        assert!(count > 0);
    }
}
