//! Offline shim for `parking_lot`: [`Mutex`] and [`RwLock`] with the
//! poison-free guard-returning API, implemented over `std::sync`. Only
//! the surface this workspace uses is provided; replace the `path`
//! dependency with the registry crate to swap back.

use std::fmt;
use std::sync;

/// A mutual exclusion primitive (poison-free facade over `std`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard of [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the data.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Whether the mutex is currently held by anyone.
    pub fn is_locked(&self) -> bool {
        match self.inner.try_lock() {
            Ok(_) => false,
            Err(sync::TryLockError::Poisoned(_)) => false,
            Err(sync::TryLockError::WouldBlock) => true,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// A reader-writer lock (poison-free facade over `std`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII guard of [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// RAII guard of [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the data.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: match self.inner.read() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: match self.inner.write() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        assert!(!m.is_locked());
        {
            let mut g = m.lock();
            *g += 1;
            assert!(m.is_locked());
            assert!(m.try_lock().is_none());
        }
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.try_read().expect("shared readers");
            assert_eq!(*a + *b, 10);
            assert!(l.try_write().is_none());
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
