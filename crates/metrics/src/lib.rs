//! # dego-metrics — contention instrumentation and benchmark statistics
//!
//! The paper correlates throughput with the hardware event
//! `cycle_activity.stalls_total` read through `perf` (§6.2). That counter
//! is not portably available, so this crate provides the software **stall
//! proxy** used across the workspace: every substrate (`dego-core`,
//! `dego-juc`) reports the events that *cause* those stall cycles —
//! failed compare-and-swap attempts, lock-acquisition spins and atomic
//! read-modify-writes on contended lines — into a process-wide
//! [`ContentionStats`] sink.
//!
//! On top of the counters, the crate supplies the statistics the
//! evaluation needs: [`stats::pearson`] correlation (the paper reports
//! −0.88 on average, −0.93 for counters), mean/stddev summaries and the
//! fixed-width table renderer shared by the figure harnesses.

#![warn(missing_docs)]

pub mod rng;
pub mod stats;
pub mod table;

use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide contention counters (the software stall proxy).
///
/// All counters are updated with `Relaxed` ordering: they are statistics,
/// not synchronization, and must stay cheap enough not to distort the
/// benchmarks they observe.
#[derive(Debug, Default)]
pub struct ContentionStats {
    cas_failures: AtomicU64,
    lock_spins: AtomicU64,
    rmw_ops: AtomicU64,
}

impl ContentionStats {
    /// A new zeroed sink.
    pub const fn new() -> Self {
        ContentionStats {
            cas_failures: AtomicU64::new(0),
            lock_spins: AtomicU64::new(0),
            rmw_ops: AtomicU64::new(0),
        }
    }

    /// Record `n` failed CAS attempts.
    #[inline]
    pub fn add_cas_failures(&self, n: u64) {
        if n > 0 {
            self.cas_failures.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record `n` lock-acquisition spins (lock found held).
    #[inline]
    pub fn add_lock_spins(&self, n: u64) {
        if n > 0 {
            self.lock_spins.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record `n` atomic read-modify-write operations.
    #[inline]
    pub fn add_rmw(&self, n: u64) {
        if n > 0 {
            self.rmw_ops.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> ContentionSnapshot {
        ContentionSnapshot {
            cas_failures: self.cas_failures.load(Ordering::Relaxed),
            lock_spins: self.lock_spins.load(Ordering::Relaxed),
            rmw_ops: self.rmw_ops.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero (between benchmark phases).
    pub fn reset(&self) {
        self.cas_failures.store(0, Ordering::Relaxed);
        self.lock_spins.store(0, Ordering::Relaxed);
        self.rmw_ops.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`ContentionStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ContentionSnapshot {
    /// Failed CAS attempts.
    pub cas_failures: u64,
    /// Lock-acquisition spins.
    pub lock_spins: u64,
    /// Atomic read-modify-writes.
    pub rmw_ops: u64,
}

impl ContentionSnapshot {
    /// The aggregate stall proxy: the *waiting* events — failed CAS
    /// attempts and lock-acquisition spins. (Plain RMW executions are
    /// tracked separately in [`ContentionSnapshot::rmw_ops`]: they tell
    /// how much synchronization an implementation issues, but a
    /// successful uncontended RMW does not stall anyone.)
    pub fn stall_proxy(&self) -> u64 {
        self.cas_failures + self.lock_spins
    }

    /// Difference since `earlier` (saturating).
    pub fn since(&self, earlier: &ContentionSnapshot) -> ContentionSnapshot {
        ContentionSnapshot {
            cas_failures: self.cas_failures.saturating_sub(earlier.cas_failures),
            lock_spins: self.lock_spins.saturating_sub(earlier.lock_spins),
            rmw_ops: self.rmw_ops.saturating_sub(earlier.rmw_ops),
        }
    }
}

/// The global sink used by `dego-core` and `dego-juc`.
pub static GLOBAL: ContentionStats = ContentionStats::new();

/// Record a failed CAS in the global sink.
#[inline]
pub fn count_cas_failure() {
    GLOBAL.add_cas_failures(1);
}

/// Record a lock spin in the global sink.
#[inline]
pub fn count_lock_spin() {
    GLOBAL.add_lock_spins(1);
}

/// Record an atomic RMW in the global sink.
#[inline]
pub fn count_rmw() {
    GLOBAL.add_rmw(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = ContentionStats::new();
        s.add_cas_failures(3);
        s.add_lock_spins(2);
        s.add_rmw(5);
        s.add_cas_failures(0); // no-op path
        let snap = s.snapshot();
        assert_eq!(snap.cas_failures, 3);
        assert_eq!(snap.lock_spins, 2);
        assert_eq!(snap.rmw_ops, 5);
        assert_eq!(snap.stall_proxy(), 5);
        s.reset();
        assert_eq!(s.snapshot().stall_proxy(), 0);
    }

    #[test]
    fn since_is_saturating_difference() {
        let a = ContentionSnapshot {
            cas_failures: 10,
            lock_spins: 4,
            rmw_ops: 1,
        };
        let b = ContentionSnapshot {
            cas_failures: 12,
            lock_spins: 4,
            rmw_ops: 0,
        };
        let d = b.since(&a);
        assert_eq!(d.cas_failures, 2);
        assert_eq!(d.lock_spins, 0);
        assert_eq!(d.rmw_ops, 0); // saturates rather than wrapping
    }

    #[test]
    fn global_sink_is_reachable() {
        GLOBAL.reset();
        count_cas_failure();
        count_lock_spin();
        count_rmw();
        let snap = GLOBAL.snapshot();
        assert!(snap.stall_proxy() >= 2);
        assert!(snap.rmw_ops >= 1);
        GLOBAL.reset();
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let s = ContentionStats::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        s.add_rmw(1);
                    }
                });
            }
        });
        assert_eq!(s.snapshot().rmw_ops, 4000);
    }
}
