//! Statistics for the evaluation: Pearson correlation, summaries,
//! throughput helpers and a deterministic Zipf/power-law sampler.
//!
//! The Zipf sampler lives here (rather than pulling `rand_distr`) because
//! both the Retwis workload (§6.3, the `α` parameter of Fig. 10) and the
//! corpus generator need power-law draws.

/// Pearson correlation coefficient between two equally-long series.
///
/// Returns `None` when the series lengths differ, are shorter than 2, or
/// either variance is zero (the coefficient is undefined).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some(cov / (vx * vy).sqrt())
}

/// Mean of a series (0 for an empty one).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (0 for fewer than two points).
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Throughput in operations/second given an op count and elapsed time.
pub fn ops_per_sec(ops: u64, elapsed: std::time::Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 {
        0.0
    } else {
        ops as f64 / secs
    }
}

/// A Zipf-like sampler over `0..n` with exponent `alpha`.
///
/// `alpha = 0` is uniform; `alpha = 1` matches the paper's biased
/// distribution ("when α equals 1, it is biased and when it is close to 0
/// the distribution is uniform", §6.3). Sampling uses the inverse-CDF
/// over precomputed cumulative weights, so draws are `O(log n)`.
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `0..n` with the given exponent.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha < 0`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty support");
        assert!(alpha >= 0.0, "negative exponents are not power laws");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(alpha);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Support size.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the support is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Map a uniform draw `u ∈ [0, 1)` to a rank in `0..n`.
    ///
    /// Taking `u` rather than an RNG keeps this crate dependency-free and
    /// deterministic under test.
    pub fn rank(&self, u: f64) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let target = u.clamp(0.0, 1.0 - f64::EPSILON) * total;
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&target).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// Geometric speedup series: `each / baseline`, the format of Figure 9.
pub fn speedups(baseline: &[f64], other: &[f64]) -> Vec<f64> {
    baseline
        .iter()
        .zip(other)
        .map(|(b, o)| if *b > 0.0 { o / b } else { 0.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfectly_correlated() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        let r = pearson(&xs, &ys).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfectly_anticorrelated() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        let r = pearson(&xs, &ys).unwrap();
        assert!((r + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_undefined_cases() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), None); // zero variance
    }

    #[test]
    fn pearson_uncorrelated_is_near_zero() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, -1.0, 1.0, -1.0];
        let r = pearson(&xs, &ys).unwrap();
        assert!(r.abs() < 0.5);
    }

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        let sd = stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((sd - 2.138).abs() < 0.01);
    }

    #[test]
    fn throughput_helper() {
        let t = ops_per_sec(1000, std::time::Duration::from_millis(500));
        assert!((t - 2000.0).abs() < 1e-9);
        assert_eq!(ops_per_sec(10, std::time::Duration::ZERO), 0.0);
    }

    #[test]
    fn zipf_uniform_when_alpha_zero() {
        let z = Zipf::new(4, 0.0);
        assert_eq!(z.rank(0.0), 0);
        assert_eq!(z.rank(0.30), 1);
        assert_eq!(z.rank(0.60), 2);
        assert_eq!(z.rank(0.90), 3);
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let z = Zipf::new(1000, 1.0);
        // The head of the distribution absorbs far more mass than under
        // uniform sampling: rank(0.3) must be far below 300.
        assert!(z.rank(0.3) < 50);
        // And the tail is still reachable.
        assert_eq!(z.rank(1.0 - 1e-15), 999);
    }

    #[test]
    fn zipf_rank_is_monotone_in_u() {
        let z = Zipf::new(100, 0.8);
        let mut last = 0;
        for i in 0..100 {
            let r = z.rank(i as f64 / 100.0);
            assert!(r >= last);
            last = r;
        }
    }

    #[test]
    #[should_panic(expected = "non-empty support")]
    fn zipf_empty_support_rejected() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn speedup_series() {
        let s = speedups(&[2.0, 4.0, 0.0], &[3.0, 4.0, 1.0]);
        assert_eq!(s, vec![1.5, 1.0, 0.0]);
    }
}
