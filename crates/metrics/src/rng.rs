//! Deterministic workload RNG and hashing helpers.
//!
//! The substrates need cheap, dependency-free randomness (skip-list tower
//! heights, workload key picks) that stays deterministic under test. A
//! xorshift64* generator and a Stafford mix13 hash cover both needs.

/// A xorshift64* PRNG: tiny, fast, good enough for tower heights and
/// workload draws (not for cryptography).
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seed the generator; a zero seed is remapped to a fixed constant
    /// (xorshift has a zero fixpoint).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection-free mapping (slight bias is fine for
        // workload generation).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A geometric level in `[1, max]` with `P(level ≥ k+1) = 2^-k` —
    /// the classic skip-list tower height.
    #[inline]
    pub fn tower_height(&mut self, max: usize) -> usize {
        let bits = self.next_u64();
        ((bits.trailing_ones() as usize) + 1).min(max)
    }
}

/// A fast multiply-xor hasher (FxHash-style) for bucket/segment
/// selection. SipHash (std's default) costs ~25 ns per key, which is
/// material when a map operation itself takes ~60 ns; both substrates
/// (`dego-core` and `dego-juc`) use this hasher so the comparison stays
/// fair.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    state: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        mix64(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state.rotate_left(5) ^ b as u64).wrapping_mul(FX_SEED);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.state = (self.state.rotate_left(5) ^ n).wrapping_mul(FX_SEED);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// Hash a key with [`FxHasher`].
#[inline]
pub fn hash_key<K: std::hash::Hash>(key: &K) -> u64 {
    use std::hash::Hasher as _;
    let mut h = FxHasher::default();
    key.hash(&mut h);
    h.finish()
}

/// Stafford variant 13 of the murmur3 finalizer: a strong 64-bit mixer
/// used for hashing keys to segments/buckets.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sequences() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn bounded_draws_in_range() {
        let mut r = XorShift64::new(7);
        for _ in 0..10_000 {
            assert!(r.next_bounded(10) < 10);
        }
    }

    #[test]
    fn f64_draws_in_unit_interval() {
        let mut r = XorShift64::new(9);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn tower_heights_geometric() {
        let mut r = XorShift64::new(3);
        let mut ones = 0;
        let n = 100_000;
        for _ in 0..n {
            let h = r.tower_height(16);
            assert!((1..=16).contains(&h));
            if h == 1 {
                ones += 1;
            }
        }
        // P(height = 1) = 1/2 ± noise.
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn mix64_spreads_sequential_keys() {
        // Adjacent keys land in different low bits most of the time.
        let mut same = 0;
        for k in 0..1000u64 {
            if mix64(k) & 0xFF == mix64(k + 1) & 0xFF {
                same += 1;
            }
        }
        assert!(same < 20);
    }

    #[test]
    fn fx_hash_spreads_and_is_stable() {
        let a = hash_key(&42u64);
        let b = hash_key(&42u64);
        assert_eq!(a, b);
        let mut low_bits = std::collections::BTreeSet::new();
        for k in 0..1024u64 {
            low_bits.insert(hash_key(&k) & 0xFFF);
        }
        // Sequential keys must spread over the low bits.
        assert!(low_bits.len() > 900, "only {} distinct", low_bits.len());
        // Strings hash through write().
        assert_ne!(hash_key(&"abc"), hash_key(&"abd"));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_rejected() {
        XorShift64::new(1).next_bounded(0);
    }
}
