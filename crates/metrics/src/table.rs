//! Fixed-width table rendering shared by the figure harness binaries.
//!
//! Every harness prints the same shape the paper's figures plot: a header
//! row of series names and one row per x-value (thread count, update
//! ratio, working set, α…). Keeping the renderer here means every figure
//! output looks the same and is trivially machine-parsable
//! (`grep '^|'`-style).

use std::fmt::Write as _;

/// A simple fixed-width table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics when the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with column alignment.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                let _ = write!(line, " {:>width$} ", cells[i], width = widths[i]);
                if i + 1 < ncols {
                    line.push('|');
                }
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header));
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }
}

/// Format a float compactly: thousands get no decimals, small values keep
/// two significant decimals.
pub fn fmt_f64(x: f64) -> String {
    if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

/// Format a ratio as `1.73x`.
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.2}x")
}

/// Format kilo-operations per second (the unit of Figs. 6–8).
pub fn fmt_kops(ops_per_sec: f64) -> String {
    fmt_f64(ops_per_sec / 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["threads", "DEGO", "JUC"]);
        t.row(["1", "100", "90"]);
        t.row(["80", "9000", "25"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("threads"));
        assert!(lines[1].chars().all(|c| c == '-' || c == '+'));
        // All rows render to the same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn emptiness() {
        let t = Table::new(["a"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn float_formats() {
        assert_eq!(fmt_f64(12345.6), "12346");
        assert_eq!(fmt_f64(42.25), "42.2");
        assert_eq!(fmt_f64(1.239), "1.24");
        assert_eq!(fmt_speedup(1.7349), "1.73x");
        assert_eq!(fmt_kops(123_456.0), "123.5");
    }
}
