//! Property-based tests of the Retwis substrate: graph-generator
//! invariants and backend agreement on random scripts.

use dego_retwis::backends::{DapBackend, DegoBackend, JucBackend};
use dego_retwis::graph::{generate_edges, in_degree_stats, GraphConfig};
use dego_retwis::{SocialBackend, SocialWorker};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum SocialOp {
    Follow(u64, u64),
    Unfollow(u64, u64),
    Post(u64, u64),
    Timeline(u64),
    Join(u64),
    Leave(u64),
    Profile(u64),
}

fn social_op(users: u64) -> impl Strategy<Value = SocialOp> {
    prop_oneof![
        (0..users, 0..users).prop_map(|(a, b)| SocialOp::Follow(a, b)),
        (0..users, 0..users).prop_map(|(a, b)| SocialOp::Unfollow(a, b)),
        (0..users, 0..10_000u64).prop_map(|(a, m)| SocialOp::Post(a, m)),
        (0..users).prop_map(SocialOp::Timeline),
        (0..users).prop_map(SocialOp::Join),
        (0..users).prop_map(SocialOp::Leave),
        (0..users).prop_map(SocialOp::Profile),
    ]
}

fn run_script<B: SocialBackend>(users: u64, ops: &[SocialOp]) -> Vec<u64> {
    let backend = B::create(1, users as usize);
    let mut w = backend.worker();
    for u in 0..users {
        w.add_user(u);
    }
    let mut observations = Vec::new();
    for op in ops {
        match *op {
            SocialOp::Follow(a, b) if a != b => w.follow(a, b),
            SocialOp::Follow(..) => {}
            SocialOp::Unfollow(a, b) => w.unfollow(a, b),
            SocialOp::Post(a, m) => w.post(a, m),
            SocialOp::Timeline(u) => {
                let tl = w.read_timeline(u);
                observations.push(tl.len() as u64);
                observations.extend(tl);
            }
            SocialOp::Join(u) => w.join_group(u),
            SocialOp::Leave(u) => w.leave_group(u),
            SocialOp::Profile(u) => w.update_profile(u),
        }
    }
    // Final observable state summary.
    for u in 0..users {
        observations.push(w.follower_count(u) as u64);
        observations.push(u64::from(w.in_group(u)));
        observations.push(w.profile_version(u));
    }
    observations
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All three backends observe identical state for any single-worker
    /// script (DAP is only an upper bound *concurrently*; sequentially it
    /// must agree exactly).
    #[test]
    fn backends_agree_on_random_scripts(
        ops in proptest::collection::vec(social_op(12), 1..60),
    ) {
        let juc = run_script::<JucBackend>(12, &ops);
        let dego = run_script::<DegoBackend>(12, &ops);
        let dap = run_script::<DapBackend>(12, &ops);
        prop_assert_eq!(&juc, &dego, "JUC vs DEGO diverged");
        prop_assert_eq!(&juc, &dap, "JUC vs DAP diverged");
    }

    /// Graph generation: valid edges, no dupes, deterministic, skew
    /// increases with alpha.
    #[test]
    fn graph_invariants(users in 50usize..500, seed in any::<u64>()) {
        let cfg = GraphConfig {
            users,
            mean_out_degree: 6,
            alpha: 1.0,
            seed,
        };
        let edges = generate_edges(&cfg);
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &edges {
            prop_assert!(a != b);
            prop_assert!((a as usize) < users && (b as usize) < users);
            prop_assert!(seen.insert((a, b)));
        }
        prop_assert_eq!(generate_edges(&cfg), edges);
    }

    /// In-degree concentration grows with alpha.
    #[test]
    fn skew_monotone_in_alpha(seed in any::<u64>()) {
        let base = GraphConfig {
            users: 2_000,
            mean_out_degree: 8,
            alpha: 0.0,
            seed,
        };
        let uniform = in_degree_stats(base.users, &generate_edges(&base));
        let skewed = in_degree_stats(
            base.users,
            &generate_edges(&GraphConfig { alpha: 1.2, ..base }),
        );
        prop_assert!(
            skewed.top1pct_share > uniform.top1pct_share,
            "alpha 1.2 share {} <= alpha 0 share {}",
            skewed.top1pct_share,
            uniform.top1pct_share
        );
    }
}
