//! The three backends of the social network application (§6.3).
//!
//! * [`JucBackend`] — every structure is a strongly-consistent `dego-juc`
//!   object.
//! * [`DegoBackend`] — the five structures adjusted as in the paper:
//!   `mapFollowers`, `mapFollowing`, `mapTimelines`, `mapProfiles` are
//!   CWMR segmented maps; each timeline queue is multi-producer
//!   single-consumer; `community` is a CWMR segmented set. The *inner*
//!   follower/following sets intentionally stay JUC-style concurrent
//!   sets: the paper reports that adjusting them as well was defeated by
//!   write amplification.
//! * [`DapBackend`] — disjoint-access parallel: per-worker private state,
//!   no sharing at all. An upper bound, not a correct implementation of
//!   the shared semantics (cross-partition effects stay local).
//! * [`NetworkBackend`] — the same interface served over TCP by an
//!   embedded `dego-server`: the middleware deployment of the adjusted
//!   objects, wire latency included.

use crate::store::{MessageId, SocialBackend, SocialWorker, UserId, FANOUT_LIMIT, TIMELINE_LIMIT};
use dego_core::{mpsc, SegmentationKind, SegmentedHashMap, SegmentedHashMapWriter};
use dego_core::{SegmentedSet, SegmentedSetWriter};
use dego_juc::{AtomicLong, ConcurrentHashMap, ConcurrentLinkedQueue, ConcurrentSet};
use std::collections::HashMap;
use std::sync::Arc;

// ------------------------------------------------------------------ JUC

/// The baseline backend: all five structures from `dego-juc`.
pub struct JucBackend {
    followers: ConcurrentHashMap<UserId, Arc<ConcurrentSet<UserId>>>,
    following: ConcurrentHashMap<UserId, Arc<ConcurrentSet<UserId>>>,
    timelines: ConcurrentHashMap<UserId, Arc<ConcurrentLinkedQueue<MessageId>>>,
    profiles: ConcurrentHashMap<UserId, Arc<AtomicLong>>,
    community: ConcurrentSet<UserId>,
}

impl std::fmt::Debug for JucBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JucBackend").finish_non_exhaustive()
    }
}

impl SocialBackend for JucBackend {
    type Worker = JucWorker;

    fn create(_n_workers: usize, expected_users: usize) -> Arc<Self> {
        Arc::new(JucBackend {
            followers: ConcurrentHashMap::with_capacity(expected_users),
            following: ConcurrentHashMap::with_capacity(expected_users),
            timelines: ConcurrentHashMap::with_capacity(expected_users),
            profiles: ConcurrentHashMap::with_capacity(expected_users),
            community: ConcurrentSet::with_capacity(expected_users / 4 + 16),
        })
    }

    fn worker(self: &Arc<Self>) -> JucWorker {
        JucWorker {
            shared: Arc::clone(self),
        }
    }

    fn name() -> &'static str {
        "JUC"
    }
}

/// Per-thread worker over [`JucBackend`] (stateless besides the handle).
#[derive(Debug)]
pub struct JucWorker {
    shared: Arc<JucBackend>,
}

impl SocialWorker for JucWorker {
    fn add_user(&mut self, user: UserId) {
        let s = &self.shared;
        s.followers
            .insert(user, Arc::new(ConcurrentSet::with_capacity(32)));
        s.following
            .insert(user, Arc::new(ConcurrentSet::with_capacity(32)));
        s.timelines
            .insert(user, Arc::new(ConcurrentLinkedQueue::new()));
        s.profiles.insert(user, Arc::new(AtomicLong::new(0)));
    }

    fn follow(&mut self, follower: UserId, followee: UserId) {
        if let Some(set) = self.shared.following.get(&follower) {
            set.add(followee);
        }
        if let Some(set) = self.shared.followers.get(&followee) {
            set.add(follower);
        }
    }

    fn unfollow(&mut self, follower: UserId, followee: UserId) {
        if let Some(set) = self.shared.following.get(&follower) {
            set.remove(&followee);
        }
        if let Some(set) = self.shared.followers.get(&followee) {
            set.remove(&follower);
        }
    }

    fn post(&mut self, author: UserId, msg: MessageId) {
        if let Some(q) = self.shared.timelines.get(&author) {
            q.offer(msg);
        }
        if let Some(fans) = self.shared.followers.get(&author) {
            for fan in fans.take_first(FANOUT_LIMIT) {
                if let Some(q) = self.shared.timelines.get(&fan) {
                    q.offer(msg);
                }
            }
        }
    }

    fn read_timeline(&mut self, user: UserId) -> Vec<MessageId> {
        let Some(q) = self.shared.timelines.get(&user) else {
            return Vec::new();
        };
        // Trim the backlog (CAS polls — the cost QueueMasp avoids),
        // then fetch everything and keep the most recent TIMELINE_LIMIT.
        while q.size() > TIMELINE_LIMIT {
            if q.poll().is_none() {
                break;
            }
        }
        let mut all = q.to_vec();
        let keep = all.len().saturating_sub(TIMELINE_LIMIT);
        all.split_off(keep)
    }

    fn join_group(&mut self, user: UserId) {
        self.shared.community.add(user);
    }

    fn leave_group(&mut self, user: UserId) {
        self.shared.community.remove(&user);
    }

    fn update_profile(&mut self, user: UserId) {
        if let Some(p) = self.shared.profiles.get(&user) {
            p.increment_and_get();
        }
    }

    fn is_following(&self, follower: UserId, followee: UserId) -> bool {
        self.shared
            .following
            .get(&follower)
            .is_some_and(|s| s.contains(&followee))
    }

    fn follower_count(&self, user: UserId) -> usize {
        self.shared.followers.get(&user).map_or(0, |s| s.len())
    }

    fn in_group(&self, user: UserId) -> bool {
        self.shared.community.contains(&user)
    }

    fn profile_version(&self, user: UserId) -> u64 {
        self.shared
            .profiles
            .get(&user)
            .map_or(0, |p| p.get().max(0) as u64)
    }
}

// ----------------------------------------------------------------- DEGO

type FollowSet = Arc<ConcurrentSet<UserId>>;

/// The adjusted backend (§6.3's DEGO configuration).
pub struct DegoBackend {
    followers: Arc<SegmentedHashMap<UserId, FollowSet>>,
    following: Arc<SegmentedHashMap<UserId, FollowSet>>,
    timelines: Arc<SegmentedHashMap<UserId, mpsc::Producer<MessageId>>>,
    profiles: Arc<SegmentedHashMap<UserId, u64>>,
    community: Arc<SegmentedSet<UserId>>,
}

impl std::fmt::Debug for DegoBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DegoBackend").finish_non_exhaustive()
    }
}

impl SocialBackend for DegoBackend {
    type Worker = DegoWorker;

    fn create(n_workers: usize, expected_users: usize) -> Arc<Self> {
        let k = SegmentationKind::Extended;
        Arc::new(DegoBackend {
            followers: SegmentedHashMap::new(n_workers, expected_users, k),
            following: SegmentedHashMap::new(n_workers, expected_users, k),
            timelines: SegmentedHashMap::new(n_workers, expected_users, k),
            profiles: SegmentedHashMap::new(n_workers, expected_users, k),
            community: SegmentedSet::new(n_workers, expected_users / 4 + 16, k),
        })
    }

    fn worker(self: &Arc<Self>) -> DegoWorker {
        DegoWorker {
            followers_w: self.followers.writer(),
            following_w: self.following.writer(),
            timelines_w: self.timelines.writer(),
            profiles_w: self.profiles.writer(),
            community_w: self.community.writer(),
            consumers: HashMap::new(),
            shared: Arc::clone(self),
        }
    }

    fn name() -> &'static str {
        "DEGO"
    }
}

/// Per-thread worker over [`DegoBackend`]: owns the thread's segment
/// writers and the timeline consumers of its user partition.
pub struct DegoWorker {
    followers_w: SegmentedHashMapWriter<UserId, FollowSet>,
    following_w: SegmentedHashMapWriter<UserId, FollowSet>,
    timelines_w: SegmentedHashMapWriter<UserId, mpsc::Producer<MessageId>>,
    profiles_w: SegmentedHashMapWriter<UserId, u64>,
    community_w: SegmentedSetWriter<UserId>,
    consumers: HashMap<UserId, mpsc::Consumer<MessageId>>,
    shared: Arc<DegoBackend>,
}

impl std::fmt::Debug for DegoWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DegoWorker")
            .field("owned_timelines", &self.consumers.len())
            .finish()
    }
}

impl SocialWorker for DegoWorker {
    fn add_user(&mut self, user: UserId) {
        self.followers_w
            .put(user, Arc::new(ConcurrentSet::with_capacity(32)));
        self.following_w
            .put(user, Arc::new(ConcurrentSet::with_capacity(32)));
        let (producer, consumer) = mpsc::queue();
        self.timelines_w.put(user, producer);
        self.consumers.insert(user, consumer);
        self.profiles_w.put(user, 0);
    }

    fn follow(&mut self, follower: UserId, followee: UserId) {
        if let Some(set) = self.shared.following.get(&follower) {
            set.add(followee);
        }
        if let Some(set) = self.shared.followers.get(&followee) {
            set.add(follower);
        }
    }

    fn unfollow(&mut self, follower: UserId, followee: UserId) {
        if let Some(set) = self.shared.following.get(&follower) {
            set.remove(&followee);
        }
        if let Some(set) = self.shared.followers.get(&followee) {
            set.remove(&follower);
        }
    }

    fn post(&mut self, author: UserId, msg: MessageId) {
        if let Some(producer) = self.shared.timelines.get(&author) {
            producer.offer(msg);
        }
        if let Some(fans) = self.shared.followers.get(&author) {
            for fan in fans.take_first(FANOUT_LIMIT) {
                if let Some(producer) = self.shared.timelines.get(&fan) {
                    producer.offer(msg);
                }
            }
        }
    }

    fn read_timeline(&mut self, user: UserId) -> Vec<MessageId> {
        let Some(consumer) = self.consumers.get_mut(&user) else {
            // Not this worker's partition: the drivers never do this.
            debug_assert!(false, "timeline read outside the home partition");
            return Vec::new();
        };
        // Trim the backlog — plain pointer moves, no CAS (QueueMasp).
        while consumer.len() > TIMELINE_LIMIT {
            if consumer.poll().is_none() {
                break;
            }
        }
        let mut all = consumer.snapshot();
        let keep = all.len().saturating_sub(TIMELINE_LIMIT);
        all.split_off(keep)
    }

    fn join_group(&mut self, user: UserId) {
        self.community_w.add(user);
    }

    fn leave_group(&mut self, user: UserId) {
        self.community_w.remove(&user);
    }

    fn update_profile(&mut self, user: UserId) {
        let version = self.shared.profiles.get(&user).unwrap_or(0);
        self.profiles_w.put(user, version + 1);
    }

    fn is_following(&self, follower: UserId, followee: UserId) -> bool {
        self.shared
            .following
            .get(&follower)
            .is_some_and(|s| s.contains(&followee))
    }

    fn follower_count(&self, user: UserId) -> usize {
        self.shared.followers.get(&user).map_or(0, |s| s.len())
    }

    fn in_group(&self, user: UserId) -> bool {
        self.shared.community.contains(&user)
    }

    fn profile_version(&self, user: UserId) -> u64 {
        self.shared.profiles.get(&user).unwrap_or(0)
    }
}

// ------------------------------------------------------------------ DAP

/// The disjoint-access-parallel upper bound: per-worker private state.
#[derive(Debug, Default)]
pub struct DapBackend;

impl SocialBackend for DapBackend {
    type Worker = DapWorker;

    fn create(_n_workers: usize, _expected_users: usize) -> Arc<Self> {
        Arc::new(DapBackend)
    }

    fn worker(self: &Arc<Self>) -> DapWorker {
        DapWorker {
            users: HashMap::new(),
            group: std::collections::HashSet::new(),
        }
    }

    fn name() -> &'static str {
        "DAP"
    }
}

#[derive(Debug, Default)]
struct DapUser {
    followers: Vec<UserId>,
    following: Vec<UserId>,
    timeline: std::collections::VecDeque<MessageId>,
    profile: u64,
}

/// Per-thread worker over [`DapBackend`]: everything thread-private.
#[derive(Debug)]
pub struct DapWorker {
    users: HashMap<UserId, DapUser>,
    group: std::collections::HashSet<UserId>,
}

impl DapWorker {
    fn user(&mut self, user: UserId) -> &mut DapUser {
        self.users.entry(user).or_default()
    }
}

impl SocialWorker for DapWorker {
    fn add_user(&mut self, user: UserId) {
        self.users.insert(user, DapUser::default());
    }

    fn follow(&mut self, follower: UserId, followee: UserId) {
        let f = self.user(follower);
        if !f.following.contains(&followee) {
            f.following.push(followee);
        }
        let e = self.user(followee);
        if !e.followers.contains(&follower) {
            e.followers.push(follower);
        }
    }

    fn unfollow(&mut self, follower: UserId, followee: UserId) {
        self.user(follower).following.retain(|&u| u != followee);
        self.user(followee).followers.retain(|&u| u != follower);
    }

    fn post(&mut self, author: UserId, msg: MessageId) {
        let fans: Vec<UserId> = {
            let a = self.user(author);
            a.timeline.push_back(msg);
            a.followers.iter().take(FANOUT_LIMIT).copied().collect()
        };
        for fan in fans {
            let t = &mut self.user(fan).timeline;
            t.push_back(msg);
            while t.len() > TIMELINE_LIMIT * 2 {
                t.pop_front();
            }
        }
    }

    fn read_timeline(&mut self, user: UserId) -> Vec<MessageId> {
        let t = &mut self.user(user).timeline;
        while t.len() > TIMELINE_LIMIT {
            t.pop_front();
        }
        t.iter().copied().collect()
    }

    fn join_group(&mut self, user: UserId) {
        self.group.insert(user);
    }

    fn leave_group(&mut self, user: UserId) {
        self.group.remove(&user);
    }

    fn update_profile(&mut self, user: UserId) {
        self.user(user).profile += 1;
    }

    fn is_following(&self, follower: UserId, followee: UserId) -> bool {
        self.users
            .get(&follower)
            .is_some_and(|u| u.following.contains(&followee))
    }

    fn follower_count(&self, user: UserId) -> usize {
        self.users.get(&user).map_or(0, |u| u.followers.len())
    }

    fn in_group(&self, user: UserId) -> bool {
        self.group.contains(&user)
    }

    fn profile_version(&self, user: UserId) -> u64 {
        self.users.get(&user).map_or(0, |u| u.profile)
    }
}

// -------------------------------------------------------------- NETWORK

/// The middleware backend: the same [`SocialWorker`] interface served
/// by an embedded [`dego_server`] over real TCP.
///
/// `create` boots an in-process sharded server (one shard per worker)
/// on an ephemeral loopback port; each worker opens its own pipelined
/// connection. Where the in-process backends call a method, this one
/// speaks the wire protocol — the latency of a real middleware
/// deployment, with the same adjusted objects underneath
/// (`dego-server`'s storage plane is `dego-core` end to end).
pub struct NetworkBackend {
    server: dego_server::ServerHandle,
}

impl std::fmt::Debug for NetworkBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetworkBackend")
            .field("addr", &self.server.local_addr())
            .finish()
    }
}

impl NetworkBackend {
    /// The embedded server's address (e.g. to point external load
    /// generators at it).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.server.local_addr()
    }

    /// The embedded server's operation counters.
    pub fn server_stats(&self) -> dego_server::StatsSnapshot {
        self.server.stats()
    }

    /// How many middleware layers the embedded server runs.
    pub fn middleware_depth(&self) -> usize {
        self.server.stack().depth()
    }

    /// `SLOWLOG GET` against the embedded server: the slowest captured
    /// commands, slowest first, one rendered line each. Errors when no
    /// trace layer is configured (the verb rejects structurally).
    pub fn slowlog(&self) -> std::io::Result<Vec<String>> {
        let mut client = dego_server::Client::connect(self.server.local_addr())?;
        client.slowlog_get()
    }

    /// Boot the embedded server behind an explicit middleware pipeline
    /// (the trait's `create` reads `DEGO_RETWIS_MIDDLEWARE` instead).
    pub fn create_with_middleware(
        n_workers: usize,
        expected_users: usize,
        middleware: dego_server::MiddlewareConfig,
    ) -> Arc<Self> {
        let server = dego_server::spawn(dego_server::ServerConfig {
            shards: n_workers.max(1),
            capacity: (expected_users * 4).max(1024),
            middleware,
            ..dego_server::ServerConfig::default()
        })
        .expect("embedded dego-server boots");
        Arc::new(NetworkBackend { server })
    }
}

impl SocialBackend for NetworkBackend {
    type Worker = NetworkWorker;

    fn create(n_workers: usize, expected_users: usize) -> Arc<Self> {
        // `DEGO_RETWIS_MIDDLEWARE` selects the pipeline the embedded
        // server runs (`none` (default), `full`, or a comma list of
        // layers) — the social workload then doubles as a contention
        // driver for every configured layer. The workers speak the
        // protocol unauthenticated, so the default-open auth policy is
        // kept as-is.
        let middleware = std::env::var("DEGO_RETWIS_MIDDLEWARE")
            .ok()
            .map(|spec| {
                let mut config = dego_server::MiddlewareConfig::none();
                config.layers = dego_server::MiddlewareConfig::parse_layers(&spec)
                    .expect("DEGO_RETWIS_MIDDLEWARE spec");
                config
            })
            .unwrap_or_default();
        Self::create_with_middleware(n_workers, expected_users, middleware)
    }

    fn worker(self: &Arc<Self>) -> NetworkWorker {
        let addr = self.server.local_addr();
        NetworkWorker {
            client: dego_server::Client::connect(addr).expect("connect to embedded server"),
            addr,
            scratch: std::cell::RefCell::new(None),
        }
    }

    fn name() -> &'static str {
        "NET"
    }
}

/// Per-thread worker over [`NetworkBackend`]: one TCP connection.
///
/// The [`SocialWorker`] interface is infallible, so I/O failures panic;
/// workers live inside benchmark drivers and tests where a dead
/// embedded server is unrecoverable anyway.
pub struct NetworkWorker {
    client: dego_server::Client,
    addr: std::net::SocketAddr,
    /// Lazily opened second connection for the `&self` read hooks.
    scratch: std::cell::RefCell<Option<dego_server::Client>>,
}

impl std::fmt::Debug for NetworkWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetworkWorker").finish_non_exhaustive()
    }
}

impl SocialWorker for NetworkWorker {
    fn add_user(&mut self, user: UserId) {
        self.client.add_user(user).expect("ADDUSER");
    }

    fn follow(&mut self, follower: UserId, followee: UserId) {
        self.client.follow(follower, followee).expect("FOLLOW");
    }

    fn unfollow(&mut self, follower: UserId, followee: UserId) {
        self.client.unfollow(follower, followee).expect("UNFOLLOW");
    }

    fn post(&mut self, author: UserId, msg: MessageId) {
        self.client.post(author, msg).expect("POST");
    }

    fn read_timeline(&mut self, user: UserId) -> Vec<MessageId> {
        // The wire protocol serves newest first; the backend interface
        // wants the last TIMELINE_LIMIT oldest→newest.
        let mut tl = self.client.timeline(user).expect("TIMELINE");
        tl.truncate(TIMELINE_LIMIT);
        tl.reverse();
        tl
    }

    fn join_group(&mut self, user: UserId) {
        self.client.join_group(user).expect("JOIN");
    }

    fn leave_group(&mut self, user: UserId) {
        self.client.leave_group(user).expect("LEAVE");
    }

    fn update_profile(&mut self, user: UserId) {
        self.client.profile_bump(user).expect("PROFILE");
    }

    fn is_following(&self, follower: UserId, followee: UserId) -> bool {
        self.probe(|c| c.is_following(follower, followee).expect("ISFOLLOWING"))
    }

    fn follower_count(&self, user: UserId) -> usize {
        self.probe(|c| c.follower_count(user).expect("FOLLOWERS"))
    }

    fn in_group(&self, user: UserId) -> bool {
        self.probe(|c| c.in_group(user).expect("INGROUP"))
    }

    fn profile_version(&self, user: UserId) -> u64 {
        self.probe(|c| c.profile_version(user).expect("PROFILEVER"))
    }
}

impl NetworkWorker {
    /// Run a read hook over the cached scratch connection (the `&self`
    /// test hooks of [`SocialWorker`] cannot borrow the main socket's
    /// buffers mutably, and reconnecting per probe would price every
    /// probe at a TCP handshake).
    fn probe<T>(&self, f: impl FnOnce(&mut dego_server::Client) -> T) -> T {
        let mut slot = self.scratch.borrow_mut();
        let scratch = slot.get_or_insert_with(|| {
            dego_server::Client::connect(self.addr).expect("scratch connection")
        });
        f(scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::home_worker;

    fn exercise<B: SocialBackend>() {
        let backend = B::create(1, 64);
        let mut w = backend.worker();
        for u in 0..10 {
            w.add_user(u);
        }
        w.follow(1, 2);
        w.follow(3, 2);
        assert!(w.is_following(1, 2));
        assert!(!w.is_following(2, 1));
        assert_eq!(w.follower_count(2), 2);

        w.post(2, 100);
        w.post(2, 101);
        // 2's followers (1 and 3) and 2 itself see the messages.
        for reader in [1u64, 2, 3] {
            let tl = w.read_timeline(reader);
            assert_eq!(tl, vec![100, 101], "user {reader}");
        }
        assert!(w.read_timeline(4).is_empty());

        w.unfollow(1, 2);
        assert!(!w.is_following(1, 2));
        assert_eq!(w.follower_count(2), 1);

        w.join_group(5);
        assert!(w.in_group(5));
        w.leave_group(5);
        assert!(!w.in_group(5));

        assert_eq!(w.profile_version(6), 0);
        w.update_profile(6);
        w.update_profile(6);
        assert_eq!(w.profile_version(6), 2);
    }

    #[test]
    fn juc_backend_semantics() {
        exercise::<JucBackend>();
    }

    #[test]
    fn dego_backend_semantics() {
        exercise::<DegoBackend>();
    }

    #[test]
    fn dap_backend_semantics() {
        exercise::<DapBackend>();
    }

    #[test]
    fn network_backend_semantics() {
        exercise::<NetworkBackend>();
    }

    #[test]
    fn network_backend_runs_the_full_stack() {
        // The same social workload, but every wire command now crosses
        // the seven-layer middleware pipeline.
        let backend =
            NetworkBackend::create_with_middleware(1, 64, dego_server::MiddlewareConfig::full());
        assert_eq!(backend.middleware_depth(), 7);
        let mut w = backend.worker();
        for u in 0..4 {
            w.add_user(u);
        }
        w.follow(1, 0);
        w.post(0, 7);
        assert_eq!(w.read_timeline(1), vec![7]);
        assert!(w.is_following(1, 0));
        assert!(backend.server_stats().applied > 0);
    }

    #[test]
    fn network_backend_surfaces_the_slowlog() {
        // A zero threshold captures every traced command, so the social
        // traffic above the middleware shows up in SLOWLOG GET.
        let mut middleware = dego_server::MiddlewareConfig::full();
        middleware.trace.slowlog_threshold_us = 0;
        let backend = NetworkBackend::create_with_middleware(1, 64, middleware);
        let mut w = backend.worker();
        w.add_user(1);
        w.post(1, 3);
        let entries = backend.slowlog().expect("trace layer answers SLOWLOG");
        assert!(!entries.is_empty(), "zero threshold captures commands");
        assert!(
            entries.iter().all(|line| line.contains("us=")),
            "rendered entries carry elapsed time: {entries:?}"
        );

        // Without a trace layer the verb rejects structurally.
        let bare =
            NetworkBackend::create_with_middleware(1, 64, dego_server::MiddlewareConfig::none());
        assert!(bare.slowlog().is_err());
    }

    #[test]
    fn timeline_is_bounded() {
        let backend = DegoBackend::create(1, 8);
        let mut w = backend.worker();
        w.add_user(1);
        for m in 0..200u64 {
            w.post(1, m);
        }
        let tl = w.read_timeline(1);
        assert_eq!(tl.len(), TIMELINE_LIMIT);
        assert_eq!(*tl.last().unwrap(), 199);
        assert_eq!(tl[0], 150);
    }

    #[test]
    fn fanout_is_limited() {
        let backend = JucBackend::create(1, 128);
        let mut w = backend.worker();
        for u in 0..40 {
            w.add_user(u);
        }
        for fan in 1..40 {
            w.follow(fan, 0);
        }
        w.post(0, 7);
        let delivered: usize = (1..40)
            .filter(|&fan| w.read_timeline(fan) == vec![7])
            .count();
        assert_eq!(delivered, FANOUT_LIMIT);
    }

    #[test]
    fn dego_two_workers_cross_partition_follow() {
        let backend = DegoBackend::create(2, 64);
        // Find one user per partition.
        let u0 = (0..).find(|&u| home_worker(u, 2) == 0).unwrap();
        let u1 = (0..).find(|&u| home_worker(u, 2) == 1).unwrap();
        let b2 = Arc::clone(&backend);
        std::thread::scope(|s| {
            let t0 = s.spawn(move || {
                let mut w = backend.worker();
                w.add_user(u0);
                w
            });
            let mut w0 = t0.join().unwrap();
            let b3 = Arc::clone(&b2);
            let t1 = s.spawn(move || {
                let mut w = b3.worker();
                w.add_user(u1);
                // u1 follows u0 (cross-partition write to u0's row).
                w.follow(u1, u0);
                w
            });
            let w1 = t1.join().unwrap();
            assert!(w1.is_following(u1, u0));
            assert_eq!(w0.follower_count(u0), 1);
            // A post by u0 reaches u1's timeline (read by u1's worker).
            std::thread::scope(|s2| {
                s2.spawn(move || {
                    w0.post(u0, 55);
                });
            });
            let mut w1 = w1;
            assert_eq!(w1.read_timeline(u1), vec![55]);
        });
    }
}
