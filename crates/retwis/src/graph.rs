//! Directed power-law follow-graph generation (§6.3).
//!
//! Following the method the paper adopts from Schweimer et al.: in- and
//! out-degrees follow power laws, as observed in the Twitter follow
//! graph. Each user draws an out-degree from a truncated Pareto-like
//! distribution and picks followees by Zipf popularity rank — popular
//! users accumulate followers. The clustering-coefficient boosting step
//! is omitted, exactly as the paper omits it ("too time consuming at the
//! scales we consider").

use crate::store::UserId;
use dego_metrics::stats::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A follow edge `(follower, followee)`.
pub type Edge = (UserId, UserId);

/// Configuration of the graph generator.
#[derive(Clone, Debug)]
pub struct GraphConfig {
    /// Number of users.
    pub users: usize,
    /// Mean out-degree (Twitter-like graphs: a handful to a few dozen).
    pub mean_out_degree: usize,
    /// Popularity skew of followee picks (≥ 0; 1 ≈ Twitter-like).
    pub alpha: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            users: 10_000,
            mean_out_degree: 12,
            alpha: 1.0,
            seed: 42,
        }
    }
}

/// Generate the follow edges.
///
/// Self-follows and duplicate picks are skipped, so a user's realized
/// out-degree can be slightly below its draw.
pub fn generate_edges(config: &GraphConfig) -> Vec<Edge> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let zipf = Zipf::new(config.users, config.alpha);
    let mut edges = Vec::with_capacity(config.users * config.mean_out_degree);
    for follower in 0..config.users as UserId {
        let out = sample_out_degree(&mut rng, config.mean_out_degree);
        let mut picked = std::collections::HashSet::with_capacity(out);
        for _ in 0..out {
            let followee = zipf.rank(rng.gen_range(0.0..1.0)) as UserId;
            if followee != follower && picked.insert(followee) {
                edges.push((follower, followee));
            }
        }
    }
    edges
}

/// Pareto-ish out-degree with the given mean: most users follow a few,
/// some follow many.
fn sample_out_degree(rng: &mut StdRng, mean: usize) -> usize {
    // Inverse-CDF of a Pareto with shape 1.5, scaled to the target mean
    // (mean of Pareto(x_m, 1.5) is 3·x_m).
    let u: f64 = rng.gen_range(1e-6..1.0);
    let x_m = mean as f64 / 3.0;
    let d = x_m / u.powf(1.0 / 1.5);
    (d.round() as usize).clamp(1, mean * 50)
}

/// In-degree histogram summary used to verify the power-law shape.
#[derive(Clone, Debug)]
pub struct DegreeStats {
    /// Maximum in-degree.
    pub max_in: usize,
    /// Mean in-degree.
    pub mean_in: f64,
    /// Fraction of all edges landing on the top 1 % of users.
    pub top1pct_share: f64,
}

/// Compute in-degree statistics over an edge list.
pub fn in_degree_stats(users: usize, edges: &[Edge]) -> DegreeStats {
    let mut indeg = vec![0usize; users];
    for &(_, v) in edges {
        indeg[v as usize] += 1;
    }
    let max_in = indeg.iter().copied().max().unwrap_or(0);
    let mean_in = edges.len() as f64 / users.max(1) as f64;
    let mut sorted = indeg.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let top = (users / 100).max(1);
    let top_sum: usize = sorted.iter().take(top).sum();
    DegreeStats {
        max_in,
        mean_in,
        top1pct_share: if edges.is_empty() {
            0.0
        } else {
            top_sum as f64 / edges.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_are_valid() {
        let cfg = GraphConfig {
            users: 2_000,
            mean_out_degree: 10,
            alpha: 1.0,
            seed: 1,
        };
        let edges = generate_edges(&cfg);
        assert!(!edges.is_empty());
        for &(a, b) in &edges {
            assert!(a != b, "self-follow");
            assert!((a as usize) < cfg.users && (b as usize) < cfg.users);
        }
        // No duplicate edges per follower.
        let mut seen = std::collections::HashSet::new();
        for e in &edges {
            assert!(seen.insert(*e), "duplicate edge {e:?}");
        }
    }

    #[test]
    fn in_degrees_are_skewed_under_alpha_one() {
        let cfg = GraphConfig {
            users: 5_000,
            mean_out_degree: 12,
            alpha: 1.0,
            seed: 9,
        };
        let edges = generate_edges(&cfg);
        let stats = in_degree_stats(cfg.users, &edges);
        // Power law: the top 1 % of users absorb a large share of edges.
        assert!(
            stats.top1pct_share > 0.15,
            "top-1% share {}",
            stats.top1pct_share
        );
        assert!(stats.max_in > 50);
    }

    #[test]
    fn alpha_zero_is_roughly_uniform() {
        let cfg = GraphConfig {
            users: 5_000,
            mean_out_degree: 12,
            alpha: 0.0,
            seed: 9,
        };
        let stats = in_degree_stats(cfg.users, &generate_edges(&cfg));
        assert!(
            stats.top1pct_share < 0.05,
            "uniform graph too skewed: {}",
            stats.top1pct_share
        );
    }

    #[test]
    fn mean_out_degree_is_close_to_target() {
        let cfg = GraphConfig {
            users: 20_000,
            mean_out_degree: 12,
            alpha: 1.0,
            seed: 5,
        };
        let edges = generate_edges(&cfg);
        let mean = edges.len() as f64 / cfg.users as f64;
        assert!((6.0..20.0).contains(&mean), "mean out-degree {mean}");
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GraphConfig::default();
        assert_eq!(generate_edges(&cfg), generate_edges(&cfg));
    }
}
