//! The Table 2 workload and the benchmark driver (§6.3).
//!
//! Each worker thread owns a user partition (consistent hashing). The
//! benchmark first populates users and the power-law follow graph, then
//! runs the measured phase: each thread repeatedly draws an operation by
//! the Table 2 mix and an acting user from its partition by a Zipf
//! distribution with exponent `α` ("when α equals 1, it is biased and
//! when it is close to 0 the distribution is uniform").
//!
//! As in the paper, follow/unfollow (and join/leave) immediately apply
//! the converse operation to preserve the network's invariants; the
//! second call is not counted.

use crate::graph::{generate_edges, GraphConfig};
use crate::store::{home_worker, SocialBackend, SocialWorker, UserId};
use dego_metrics::rng::XorShift64;
use dego_metrics::stats::Zipf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Operation mix in percent (must sum to 100).
#[derive(Clone, Copy, Debug)]
pub struct OpMix {
    /// Add a user.
    pub add_user: u32,
    /// Follow + converse unfollow.
    pub follow_unfollow: u32,
    /// Post a tweet.
    pub post: u32,
    /// Display the timeline.
    pub timeline: u32,
    /// Join + converse leave of the interest group.
    pub join_leave: u32,
    /// Update the profile.
    pub update_profile: u32,
}

impl OpMix {
    /// Table 2: 5 / 5 / 15 / 60 / 5 / 10.
    pub const TABLE2: OpMix = OpMix {
        add_user: 5,
        follow_unfollow: 5,
        post: 15,
        timeline: 60,
        join_leave: 5,
        update_profile: 10,
    };

    fn validate(&self) {
        let total = self.add_user
            + self.follow_unfollow
            + self.post
            + self.timeline
            + self.join_leave
            + self.update_profile;
        assert_eq!(total, 100, "operation mix must sum to 100%");
    }
}

/// Benchmark configuration.
#[derive(Clone, Debug)]
pub struct BenchmarkConfig {
    /// Worker threads.
    pub threads: usize,
    /// Initial user population.
    pub users: usize,
    /// User-pick skew (`α` of Fig. 10).
    pub alpha: f64,
    /// Measured duration.
    pub duration: Duration,
    /// Operation mix.
    pub mix: OpMix,
    /// Mean out-degree of the preloaded follow graph.
    pub mean_out_degree: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BenchmarkConfig {
    fn default() -> Self {
        BenchmarkConfig {
            threads: 4,
            users: 10_000,
            alpha: 1.0,
            duration: Duration::from_millis(500),
            mix: OpMix::TABLE2,
            mean_out_degree: 10,
            seed: 0x7E7815,
        }
    }
}

/// Benchmark outcome.
#[derive(Clone, Debug)]
pub struct BenchmarkResult {
    /// Backend name.
    pub backend: &'static str,
    /// Worker threads used.
    pub threads: usize,
    /// Initial user count.
    pub users: usize,
    /// Zipf exponent used.
    pub alpha: f64,
    /// Operations completed in the measured phase.
    pub total_ops: u64,
    /// Measured wall-clock time.
    pub elapsed: Duration,
}

impl BenchmarkResult {
    /// Operations per second.
    pub fn throughput(&self) -> f64 {
        dego_metrics::stats::ops_per_sec(self.total_ops, self.elapsed)
    }
}

struct WorkerPlan {
    slot: usize,
    /// This worker's user partition.
    my_users: Vec<UserId>,
    /// Follow edges whose follower lives in this partition.
    my_edges: Vec<(UserId, UserId)>,
}

fn plan_workers(threads: usize, users: usize, cfg: &BenchmarkConfig) -> Vec<WorkerPlan> {
    let edges = generate_edges(&GraphConfig {
        users,
        mean_out_degree: cfg.mean_out_degree,
        alpha: cfg.alpha.max(0.2),
        seed: cfg.seed,
    });
    let mut plans: Vec<WorkerPlan> = (0..threads)
        .map(|slot| WorkerPlan {
            slot,
            my_users: Vec::new(),
            my_edges: Vec::new(),
        })
        .collect();
    for u in 0..users as UserId {
        plans[home_worker(u, threads)].my_users.push(u);
    }
    for (a, b) in edges {
        plans[home_worker(a, threads)].my_edges.push((a, b));
    }
    plans
}

/// Run the benchmark on backend `B`.
pub fn run_benchmark<B: SocialBackend>(cfg: &BenchmarkConfig) -> BenchmarkResult {
    cfg.mix.validate();
    assert!(cfg.threads > 0 && cfg.users >= cfg.threads);
    let backend = B::create(cfg.threads, cfg.users * 2);
    let plans = plan_workers(cfg.threads, cfg.users, cfg);
    let loaded = Arc::new(Barrier::new(cfg.threads));
    let stop = Arc::new(AtomicBool::new(false));
    let total_ops = Arc::new(AtomicU64::new(0));
    let started = Arc::new(Barrier::new(cfg.threads + 1));

    std::thread::scope(|s| {
        for plan in plans {
            let backend = Arc::clone(&backend);
            let loaded = Arc::clone(&loaded);
            let stop = Arc::clone(&stop);
            let total_ops = Arc::clone(&total_ops);
            let started = Arc::clone(&started);
            let cfg = cfg.clone();
            s.spawn(move || {
                let mut worker = backend.worker();
                // Phase 1: populate this partition's users.
                for &u in &plan.my_users {
                    worker.add_user(u);
                }
                loaded.wait();
                // Phase 2: preload the follow graph (follower-side home).
                for &(a, b) in &plan.my_edges {
                    worker.follow(a, b);
                }
                started.wait();
                // Phase 3: measured loop.
                let ops = drive(&mut worker, &plan, &cfg, &stop);
                total_ops.fetch_add(ops, Ordering::AcqRel);
            });
        }
        started.wait();
        std::thread::sleep(cfg.duration);
        stop.store(true, Ordering::Release);
        // The scope joins every worker before returning.
    });
    // All workers joined: the counter is final. Workers observe `stop`
    // within one 64-op batch, so the sleep window is the measured time.
    // Settle deferred epoch garbage before the next benchmark starts.
    dego_core::reclaim::drain(2048);
    let elapsed = cfg.duration;
    BenchmarkResult {
        backend: B::name(),
        threads: cfg.threads,
        users: cfg.users,
        alpha: cfg.alpha,
        total_ops: total_ops.load(Ordering::Acquire),
        elapsed,
    }
}

fn drive<W: SocialWorker>(
    worker: &mut W,
    plan: &WorkerPlan,
    cfg: &BenchmarkConfig,
    stop: &AtomicBool,
) -> u64 {
    let mut rng = XorShift64::new(cfg.seed ^ ((plan.slot as u64 + 1) * 0x9E37_79B9));
    let my_zipf = Zipf::new(plan.my_users.len().max(1), cfg.alpha);
    let all_zipf = Zipf::new(cfg.users, cfg.alpha);
    let mix = cfg.mix;
    let mut next_user_probe: UserId = cfg.users as UserId;
    let mut msg_counter: u64 = (plan.slot as u64) << 40;
    let mut new_users: Vec<UserId> = Vec::new();
    let mut ops = 0u64;

    // Thresholds over 0..100.
    let t_add = mix.add_user;
    let t_follow = t_add + mix.follow_unfollow;
    let t_post = t_follow + mix.post;
    let t_timeline = t_post + mix.timeline;
    let t_group = t_timeline + mix.join_leave;

    while !stop.load(Ordering::Acquire) {
        // Check the stop flag every batch to keep overhead low.
        for _ in 0..64 {
            let my_user = if plan.my_users.is_empty() {
                0
            } else {
                plan.my_users[my_zipf.rank(rng.next_f64())]
            };
            let roll = rng.next_bounded(100) as u32;
            if roll < t_add {
                // Allocate a fresh id homed at this worker.
                let threads = cfg.threads;
                let mut id = next_user_probe + plan.slot as UserId + 1;
                while home_worker(id, threads) != plan.slot {
                    id += 1;
                }
                next_user_probe = id + 1;
                worker.add_user(id);
                new_users.push(id);
            } else if roll < t_follow {
                let target = all_zipf.rank(rng.next_f64()) as UserId;
                if target != my_user {
                    worker.follow(my_user, target);
                    // Converse operation, not measured (§6.3).
                    worker.unfollow(my_user, target);
                }
            } else if roll < t_post {
                msg_counter += 1;
                worker.post(my_user, msg_counter);
            } else if roll < t_timeline {
                let tl = worker.read_timeline(my_user);
                std::hint::black_box(tl);
            } else if roll < t_group {
                worker.join_group(my_user);
                // Converse operation, not measured.
                worker.leave_group(my_user);
            } else {
                worker.update_profile(my_user);
            }
            ops += 1;
        }
    }
    std::hint::black_box(&new_users);
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::{DapBackend, DegoBackend, JucBackend};

    fn quick(threads: usize) -> BenchmarkConfig {
        BenchmarkConfig {
            threads,
            users: 600,
            alpha: 1.0,
            duration: Duration::from_millis(80),
            mix: OpMix::TABLE2,
            mean_out_degree: 6,
            seed: 5,
        }
    }

    #[test]
    fn mix_must_sum_to_100() {
        OpMix::TABLE2.validate();
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn bad_mix_rejected() {
        let mut mix = OpMix::TABLE2;
        mix.post = 99;
        mix.validate();
    }

    #[test]
    fn juc_benchmark_runs() {
        let r = run_benchmark::<JucBackend>(&quick(2));
        assert_eq!(r.backend, "JUC");
        assert!(r.total_ops > 100, "only {} ops", r.total_ops);
        assert!(r.throughput() > 0.0);
    }

    #[test]
    fn dego_benchmark_runs() {
        let r = run_benchmark::<DegoBackend>(&quick(2));
        assert_eq!(r.backend, "DEGO");
        assert!(r.total_ops > 100);
    }

    #[test]
    fn dap_benchmark_runs() {
        let r = run_benchmark::<DapBackend>(&quick(2));
        assert_eq!(r.backend, "DAP");
        assert!(r.total_ops > 100);
    }

    #[test]
    fn single_thread_runs_all_backends() {
        assert!(run_benchmark::<JucBackend>(&quick(1)).total_ops > 0);
        assert!(run_benchmark::<DegoBackend>(&quick(1)).total_ops > 0);
        assert!(run_benchmark::<DapBackend>(&quick(1)).total_ops > 0);
    }

    #[test]
    fn four_threads_scale_without_errors() {
        let r = run_benchmark::<DegoBackend>(&quick(4));
        assert!(r.total_ops > 100);
        assert_eq!(r.threads, 4);
    }
}
