//! The social-store interface shared by the three backends.

use std::sync::Arc;

/// A user identifier.
pub type UserId = u64;
/// A message identifier (the benchmark does not materialize bodies).
pub type MessageId = u64;

/// How many followers receive a post synchronously. The paper limits
/// fan-out "to the first followers"; the rest would be asynchronous
/// (not implemented there either).
pub const FANOUT_LIMIT: usize = 16;

/// Timeline length returned to the user ("the last 50 messages").
pub const TIMELINE_LIMIT: usize = 50;

/// The worker that owns a user under consistent hashing.
pub fn home_worker(user: UserId, n_workers: usize) -> usize {
    (dego_metrics::rng::mix64(user) % n_workers as u64) as usize
}

/// A backend: shared state plus per-thread worker construction.
pub trait SocialBackend: Send + Sync + Sized + 'static {
    /// The per-thread worker type.
    type Worker: SocialWorker;

    /// Create the shared state for `n_workers` worker threads and about
    /// `expected_users` users.
    fn create(n_workers: usize, expected_users: usize) -> Arc<Self>;

    /// Build the calling thread's worker. Must be invoked **on** the
    /// worker's own thread (slot registration and writer handles are
    /// per-thread).
    fn worker(self: &Arc<Self>) -> Self::Worker;

    /// Backend name for reports.
    fn name() -> &'static str;
}

/// Per-thread operations of the social application.
///
/// Routing discipline (enforced by the drivers, asserted in debug
/// builds): `add_user`, `read_timeline`, `join_group`, `leave_group` and
/// `update_profile` are invoked by the user's home worker; `follow` /
/// `unfollow` / `post` are invoked by the *acting* user's home worker and
/// may touch other users' shared rows.
pub trait SocialWorker: Send {
    /// Register a new user (creates its five rows).
    fn add_user(&mut self, user: UserId);

    /// `follower` starts following `followee`.
    fn follow(&mut self, follower: UserId, followee: UserId);

    /// `follower` stops following `followee`.
    fn unfollow(&mut self, follower: UserId, followee: UserId);

    /// `author` posts message `msg` (fans out to the first
    /// [`FANOUT_LIMIT`] followers and the author's own timeline).
    fn post(&mut self, author: UserId, msg: MessageId);

    /// Read the last [`TIMELINE_LIMIT`] messages of `user`'s timeline.
    fn read_timeline(&mut self, user: UserId) -> Vec<MessageId>;

    /// `user` joins the interest group.
    fn join_group(&mut self, user: UserId);

    /// `user` leaves the interest group.
    fn leave_group(&mut self, user: UserId);

    /// Bump `user`'s profile version.
    fn update_profile(&mut self, user: UserId);

    /// Whether `follower` currently follows `followee` (test hook).
    fn is_following(&self, follower: UserId, followee: UserId) -> bool;

    /// Number of followers of `user` (test hook).
    fn follower_count(&self, user: UserId) -> usize;

    /// Whether `user` is in the interest group (test hook).
    fn in_group(&self, user: UserId) -> bool;

    /// Current profile version of `user` (test hook).
    fn profile_version(&self, user: UserId) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn home_worker_is_stable_and_in_range() {
        for n in [1usize, 2, 7, 80] {
            for u in 0..200u64 {
                let h = home_worker(u, n);
                assert!(h < n);
                assert_eq!(h, home_worker(u, n));
            }
        }
    }

    #[test]
    fn home_worker_spreads_users() {
        let n = 8;
        let mut counts = vec![0usize; n];
        for u in 0..8_000u64 {
            counts[home_worker(u, n)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "unbalanced partition: {c}");
        }
    }
}
