//! # dego-retwis — the social network application of §6.3
//!
//! A multithreaded Retwis-like benchmark (a simplified Twitter clone).
//! The application maintains five shared structures: `mapFollowers`,
//! `mapFollowing`, `mapTimelines`, `mapProfiles` and the `community`
//! interest group. Users write messages, follow/unfollow each other,
//! read their timelines, join/leave the group and update their profiles
//! (Table 2's operation mix).
//!
//! Four interchangeable backends implement the same [`SocialWorker`]
//! interface:
//!
//! * [`JucBackend`] — everything on `dego-juc` strongly-consistent
//!   objects (the baseline);
//! * [`DegoBackend`] — the outer maps are CWMR segmented maps, the
//!   timeline queues multi-producer single-consumer, the interest group a
//!   CWMR segmented set. Exactly as in the paper, the *inner*
//!   follower/following sets stay JUC-style: adjusting them too was
//!   tried and rejected because of write amplification (§6.3);
//! * [`DapBackend`] — disjoint-access parallel: every worker keeps its
//!   own private structures, an upper bound on parallel performance;
//! * [`NetworkBackend`] — the same interface over TCP, served by an
//!   embedded `dego-server` (the middleware deployment).
//!
//! Each worker thread owns a user partition by consistent hashing
//! ([`home_worker`]); the follow graph is a directed power law
//! ([`graph`]), and user picks follow a Zipf distribution with the
//! paper's `α` skew parameter ([`workload`]).

#![warn(missing_docs)]

pub mod backends;
pub mod graph;
pub mod store;
pub mod workload;

pub use backends::{DapBackend, DegoBackend, JucBackend, NetworkBackend};
pub use store::{home_worker, MessageId, SocialBackend, SocialWorker, UserId};
pub use workload::{run_benchmark, BenchmarkConfig, BenchmarkResult, OpMix};
