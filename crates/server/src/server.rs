//! The TCP front-end: accept loop, per-connection threads, the
//! middleware pipeline, pipelining and shutdown.
//!
//! A connection thread parses request lines and drives each one
//! through its session's middleware [`Stack`] chain (trace → deadline
//! → auth → rate-limit → ttl, whichever are configured); the innermost
//! service executes against the store, splitting two ways: **reads**
//! (`GET`, `TIMELINE`, `ISFOLLOWING`, …) are served inline from the
//! lock-free segment readers; **mutations** are enqueued to the owning
//! shard thread and acknowledged through the connection's reply
//! channel before the response line is emitted — so a client that saw
//! `+OK` for a `SET` observes that value on every later read, from any
//! connection (the shard applied it before acking, and segment
//! publication is release/acquire).
//!
//! Pipelining: responses are buffered and flushed only when the input
//! buffer runs dry, so a burst of `k` commands costs one write.

use crate::protocol::{Command, Reply};
use crate::stats::{ServerStats, StatsSnapshot};
use crate::store::{self, Mutation, Store, FANOUT_LIMIT};
use dego_middleware::{MiddlewareConfig, Request, Response, Service, Session, Stack};
use std::io::{BufRead, BufReader, BufWriter, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Timeline length returned to clients (the paper's "last 50
/// messages").
pub const TIMELINE_LIMIT: usize = 50;

/// How long a connection waits for a shard acknowledgement before
/// reporting an error (only reachable when shutting down mid-request).
const ACK_TIMEOUT: Duration = Duration::from_secs(5);

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Number of storage shards (= shard-owner threads).
    pub shards: usize,
    /// Expected keyspace size (presizes the segment tables).
    pub capacity: usize,
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: SocketAddr,
    /// The middleware pipeline in front of the store (default: none —
    /// requests go straight to the storage plane).
    pub middleware: MiddlewareConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 4,
            capacity: 16_384,
            addr: "127.0.0.1:0".parse().expect("literal addr"),
            middleware: MiddlewareConfig::none(),
        }
    }
}

/// A running server; dropping it (or calling [`ServerHandle::shutdown`])
/// stops it.
pub struct ServerHandle {
    addr: SocketAddr,
    store: Arc<Store>,
    stats: Arc<ServerStats>,
    stack: Arc<Stack>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    shard_threads: Vec<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of storage shards.
    pub fn shards(&self) -> usize {
        self.store.shards()
    }

    /// The middleware stack every connection drives requests through
    /// (runtime admin: token/policy reloads, metrics).
    pub fn stack(&self) -> &Arc<Stack> {
        &self.stack
    }

    /// A snapshot of the operation counters.
    pub fn stats(&self) -> StatsSnapshot {
        let mut snap = self.stats.snapshot();
        // The authoritative applied count lives in the storage plane's
        // per-shard counter.
        snap.applied = self.store.applied.get();
        snap
    }

    /// Stop accepting, drain the shards, join every thread.
    pub fn shutdown(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let conns = std::mem::take(&mut *self.connections.lock().expect("connection registry"));
        for c in conns {
            let _ = c.join();
        }
        // Shard threads exit once the flag is up and their queue is
        // drained; wake any parked ones.
        for _ in 0..2 {
            for shard in 0..self.store.shards() {
                self.store.wake(shard);
            }
        }
        for t in self.shard_threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Bind and spawn a server.
pub fn spawn(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(config.addr)?;
    let addr = listener.local_addr()?;
    let stats = Arc::new(ServerStats::new());
    let stack = Stack::build(&config.middleware);
    let shutdown = Arc::new(AtomicBool::new(false));
    let runtime = store::spawn_shards(
        config.shards,
        config.capacity,
        Arc::clone(&stats),
        Arc::clone(&shutdown),
    );
    let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let accept_thread = {
        let store = Arc::clone(&runtime.store);
        let stats = Arc::clone(&stats);
        let stack = Arc::clone(&stack);
        let shutdown = Arc::clone(&shutdown);
        let connections = Arc::clone(&connections);
        std::thread::Builder::new()
            .name("dego-accept".into())
            .spawn(move || accept_loop(listener, store, stats, stack, shutdown, connections))
            .expect("spawn accept thread")
    };

    Ok(ServerHandle {
        addr,
        store: runtime.store,
        stats,
        stack,
        shutdown,
        accept_thread: Some(accept_thread),
        shard_threads: runtime.threads,
        connections,
    })
}

fn accept_loop(
    listener: TcpListener,
    store: Arc<Store>,
    stats: Arc<ServerStats>,
    stack: Arc<Stack>,
    shutdown: Arc<AtomicBool>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut next_conn = 0u64;
    loop {
        let (socket, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        stats.note_connection();
        let store = Arc::clone(&store);
        let stats = Arc::clone(&stats);
        let stack = Arc::clone(&stack);
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name(format!("dego-conn-{next_conn}"))
            .spawn(move || {
                let _ = serve_connection(socket, store, stats, stack, flag);
            })
            .expect("spawn connection thread");
        next_conn += 1;
        let mut registry = connections.lock().expect("connection registry");
        // Reap dead sessions so a long-lived server with connection
        // churn does not accumulate handles without bound.
        registry.retain(|h| !h.is_finished());
        registry.push(handle);
    }
}

/// The innermost service: executes commands against the storage plane
/// (the thing every middleware layer ultimately wraps).
struct ExecService {
    store: Arc<Store>,
    stats: Arc<ServerStats>,
    ack_tx: Sender<Reply>,
    ack_rx: Receiver<Reply>,
}

impl Service for ExecService {
    fn call(&mut self, req: Request) -> Response {
        match &req.command {
            // The middleware-owned verbs answer structurally when their
            // layer is not in the pipeline (they never reach the store).
            Command::Auth(_) => Response::rejection("AUTH", "auth layer not enabled"),
            Command::Expire(..) => Response::rejection("TTL", "ttl layer not enabled"),
            cmd => {
                let (reply, close) =
                    execute(cmd, &self.store, &self.stats, &self.ack_tx, &self.ack_rx);
                Response { reply, close }
            }
        }
    }
}

/// One connection's session: parse, drive the middleware chain,
/// pipeline replies.
fn serve_connection(
    socket: TcpStream,
    store: Arc<Store>,
    stats: Arc<ServerStats>,
    stack: Arc<Stack>,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<()> {
    socket.set_nodelay(true)?;
    socket.set_read_timeout(Some(Duration::from_millis(100)))?;
    let session = Session {
        client: socket
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "unknown".to_string()),
    };
    let mut reader = BufReader::new(socket.try_clone()?);
    let mut writer = BufWriter::new(socket);
    let (ack_tx, ack_rx) = channel::<Reply>();
    let mut chain = stack.service(
        &session,
        Box::new(ExecService {
            store,
            stats: Arc::clone(&stats),
            ack_tx,
            ack_rx,
        }),
    );
    let mut line = String::new();
    let mut out = String::new();

    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                stats.note_command();
                let (reply, quit) = match Command::parse(line.trim_end_matches('\n')) {
                    Ok(cmd) => {
                        let resp = chain.call(Request::new(cmd));
                        (resp.reply, resp.close)
                    }
                    Err(e) => (Reply::Error(e.0), false),
                };
                if matches!(reply, Reply::Error(_)) {
                    stats.note_error();
                }
                reply.render(&mut out);
                line.clear();
                // Pipelining: only pay a socket write once the input
                // buffer has run dry.
                if reader.buffer().is_empty() {
                    writer.write_all(out.as_bytes())?;
                    writer.flush()?;
                    out.clear();
                }
                if quit {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // Idle tick: push out anything buffered, check for
                // shutdown. A partially read line stays in `line`.
                if !out.is_empty() {
                    writer.write_all(out.as_bytes())?;
                    writer.flush()?;
                    out.clear();
                }
                if shutdown.load(Ordering::Acquire) {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::InvalidData => {
                // Non-UTF-8 bytes: this is a text protocol. Say why,
                // then hang up (the byte stream is unrecoverable —
                // read_line cannot tell where the bad input ended).
                stats.note_error();
                Reply::Error("protocol requires UTF-8 input".into()).render(&mut out);
                break;
            }
            Err(_) => break,
        }
    }
    if !out.is_empty() {
        writer.write_all(out.as_bytes())?;
        writer.flush()?;
    }
    Ok(())
}

/// Enqueue `mutation` to `shard` and wait for its acknowledgement.
///
/// On timeout the connection is poisoned (`dead` set): the ack may
/// still arrive later, and once a stale ack can be sitting in the
/// channel every later request/reply pairing would be off by one —
/// closing the session is the only honest recovery.
fn roundtrip(
    store: &Store,
    shard: usize,
    mutation: Mutation,
    ack_rx: &Receiver<Reply>,
    dead: &mut bool,
) -> Reply {
    store.enqueue(shard, mutation);
    match ack_rx.recv_timeout(ACK_TIMEOUT) {
        Ok(reply) => reply,
        Err(RecvTimeoutError::Timeout) => {
            *dead = true;
            Reply::Error("shard ack timeout; closing connection".into())
        }
        Err(RecvTimeoutError::Disconnected) => {
            *dead = true;
            Reply::Error("shard gone; closing connection".into())
        }
    }
}

fn execute(
    cmd: &Command,
    store: &Store,
    stats: &ServerStats,
    ack_tx: &Sender<Reply>,
    ack_rx: &Receiver<Reply>,
) -> (Reply, bool) {
    let mut dead = false;
    let reply = match cmd {
        // ------------------------------------------------ local reads
        Command::Get(key) => match store.kv.get(key) {
            Some(v) => {
                stats.note_get_hit();
                Reply::Value(v)
            }
            None => {
                stats.note_get_miss();
                Reply::Nil
            }
        },
        Command::Timeline(user) => {
            stats.note_timeline_read();
            let mut row = store.timelines.get(user).unwrap_or_default();
            // Stored oldest→newest; serve newest first, capped.
            row.reverse();
            row.truncate(TIMELINE_LIMIT);
            Reply::Array(row.iter().map(|m| format!(":{m}")).collect())
        }
        Command::IsFollowing(follower, followee) => {
            let follows = store
                .followers
                .get(followee)
                .is_some_and(|row| row.contains(follower));
            Reply::Int(follows as i64)
        }
        Command::Followers(user) => {
            Reply::Int(store.followers.get(user).map_or(0, |row| row.len()) as i64)
        }
        Command::InGroup(user) => Reply::Int(store.group.contains(user) as i64),
        Command::ProfileVer(user) => Reply::Int(store.profiles.get(user).unwrap_or(0) as i64),
        Command::Stats => {
            let mut snap = stats.snapshot();
            snap.applied = store.applied.get();
            Reply::Array(snap.render_lines(store.shards(), store.kv.len()))
        }
        Command::Ping => Reply::Status("PONG"),
        Command::Quit => return (Reply::Status("OK"), true),
        // Middleware-owned verbs are answered by ExecService (or their
        // layer) before reaching the store executor.
        Command::Auth(_) | Command::Expire(..) => {
            Reply::Error("middleware verb reached the store".into())
        }

        // -------------------------------------- single-shard mutations
        Command::Set(key, value) => {
            stats.note_mutation();
            roundtrip(
                store,
                store.shard_of_key(key),
                Mutation::Set {
                    key: key.clone(),
                    value: value.clone(),
                    reply: ack_tx.clone(),
                },
                ack_rx,
                &mut dead,
            )
        }
        Command::Del(key) => {
            stats.note_mutation();
            roundtrip(
                store,
                store.shard_of_key(key),
                Mutation::Del {
                    key: key.clone(),
                    reply: ack_tx.clone(),
                },
                ack_rx,
                &mut dead,
            )
        }
        Command::Incr(key, delta) => {
            stats.note_mutation();
            roundtrip(
                store,
                store.shard_of_key(key),
                Mutation::Incr {
                    key: key.clone(),
                    delta: *delta,
                    reply: ack_tx.clone(),
                },
                ack_rx,
                &mut dead,
            )
        }
        Command::AddUser(user) => {
            stats.note_mutation();
            roundtrip(
                store,
                store.shard_of_user(*user),
                Mutation::AddUser {
                    user: *user,
                    reply: ack_tx.clone(),
                },
                ack_rx,
                &mut dead,
            )
        }
        Command::Follow(follower, followee) => {
            stats.note_mutation();
            roundtrip(
                store,
                store.shard_of_user(*followee),
                Mutation::FollowerAdd {
                    followee: *followee,
                    follower: *follower,
                    reply: ack_tx.clone(),
                },
                ack_rx,
                &mut dead,
            )
        }
        Command::Unfollow(follower, followee) => {
            stats.note_mutation();
            roundtrip(
                store,
                store.shard_of_user(*followee),
                Mutation::FollowerDel {
                    followee: *followee,
                    follower: *follower,
                    reply: ack_tx.clone(),
                },
                ack_rx,
                &mut dead,
            )
        }
        Command::Join(user) => {
            stats.note_mutation();
            roundtrip(
                store,
                store.shard_of_user(*user),
                Mutation::GroupJoin {
                    user: *user,
                    reply: ack_tx.clone(),
                },
                ack_rx,
                &mut dead,
            )
        }
        Command::Leave(user) => {
            stats.note_mutation();
            roundtrip(
                store,
                store.shard_of_user(*user),
                Mutation::GroupLeave {
                    user: *user,
                    reply: ack_tx.clone(),
                },
                ack_rx,
                &mut dead,
            )
        }
        Command::Profile(user) => {
            stats.note_mutation();
            roundtrip(
                store,
                store.shard_of_user(*user),
                Mutation::ProfileBump {
                    user: *user,
                    reply: ack_tx.clone(),
                },
                ack_rx,
                &mut dead,
            )
        }

        // ------------------------------------- multi-shard fan-out
        Command::Post(author, msg) => {
            stats.note_mutation();
            // Fan out to the author plus the first FANOUT_LIMIT
            // followers; every target's shard must ack before the
            // client sees +OK, so a post is visible on every timeline
            // it reached once acknowledged.
            // The author's own timeline is always a target; a
            // self-follow must not deliver twice (Vec::dedup would only
            // catch it when adjacent), so filter the author out of the
            // follower fan-out.
            let mut targets = vec![*author];
            if let Some(row) = store.followers.get(author) {
                targets.extend(row.into_iter().filter(|f| f != author).take(FANOUT_LIMIT));
            }
            let n = targets.len();
            for user in targets {
                store.enqueue(
                    store.shard_of_user(user),
                    Mutation::TimelinePush {
                        user,
                        msg: *msg,
                        reply: ack_tx.clone(),
                    },
                );
            }
            let mut failure = None;
            for _ in 0..n {
                match ack_rx.recv_timeout(ACK_TIMEOUT) {
                    Ok(Reply::Error(e)) => failure = Some(e),
                    Ok(_) => {}
                    Err(_) => {
                        // As in `roundtrip`: a late ack would desync
                        // every later reply on this connection.
                        dead = true;
                        failure = Some("shard ack timeout; closing connection".into());
                    }
                }
            }
            match failure {
                None => Reply::Status("OK"),
                Some(e) => Reply::Error(e),
            }
        }
    };
    (reply, dead)
}
