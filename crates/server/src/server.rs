//! The TCP front-end: accept loop, the connection planes, the
//! middleware pipeline, batched pipelining and shutdown.
//!
//! Connections are served by one of two **planes**: the default
//! event-loop plane (`event_loop.rs` — N epoll loop threads
//! multiplexing every connection, deferring ack barriers so bursts
//! from different connections group-commit into one shard sweep) or
//! the original thread-per-connection plane behind
//! [`ServerConfig::thread_per_conn`], kept for A/B equivalence and
//! regression measurement. Both planes drive the same per-session
//! middleware chain and are byte-identical on the wire.
//!
//! A connection parses request lines and drives them through
//! its session's middleware [`Stack`] chain (trace → breaker →
//! deadline → auth → rate-limit → shed → ttl, whichever are
//! configured); the innermost service
//! executes against the store, splitting two ways: **reads** (`GET`,
//! `TIMELINE`, `ISFOLLOWING`, …) are served inline from the lock-free
//! segment readers; **mutations** are enqueued to the owning shard
//! thread and acknowledged through the connection's reply channel
//! before the response line is emitted — so a client that saw `+OK`
//! for a `SET` observes that value on every later read, from any
//! connection (the shard applied it before acking, and segment
//! publication is release/acquire).
//!
//! Pipelining is **batched end to end** (unless
//! [`ServerConfig::batch`] is off): the whole buffered burst is
//! drained into one `Vec<Request>` and driven through
//! [`Service::call_batch`], so every layer pays its per-request cost
//! once per burst; below the stack, the burst's mutations are enqueued
//! tagged with sequence numbers, shard owners group-acknowledge each
//! drained batch, and the replies are reassembled in request order and
//! written with a single buffered socket write.
//!
//! Within a burst, replies are byte-identical to sequential execution:
//! mutations keep per-key order through the FIFO shard queues, and a
//! read whose key has an outstanding mutation in the same burst waits
//! for the acks (a *barrier*) before being served — reads on untouched
//! keys proceed immediately, which is where the batching wins.

use crate::event_loop::{run_loop, Epoll, LoopCtx, LoopWaker};
use crate::protocol::{Command, Reply};
use crate::stats::{ServerStats, StatsSnapshot};
use crate::store::{self, AckItem, Mutation, MutationMsg, ShardAck, Store, FANOUT_LIMIT};
use dego_middleware::{
    BoxService, FusedService, MiddlewareConfig, PressureProbe, Request, Response, Service, Session,
    ShardPressure, Stack,
};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, BufWriter, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Timeline length returned to clients (the paper's "last 50
/// messages").
pub const TIMELINE_LIMIT: usize = 50;

/// The reply when a shard acknowledgement never arrived in time.
pub(crate) const ACK_TIMEOUT_MSG: &str = "shard ack timeout; closing connection";
/// The reply when the shard plane is gone (shutdown mid-request).
const ACK_GONE_MSG: &str = "shard gone; closing connection";

/// The placeholder status a deferred slot answers with inside
/// `call_batch` — patched by the event loop once the acks arrive. The
/// sentinel is unforgeable as a *status*: `Reply::Status` only ever
/// carries compile-time literals (client bytes travel in
/// `Reply::Value`/`Error`), and no other literal contains `\u{1}`.
pub(crate) const PENDING_MARKER: &str = "\u{1}DEGO-DEFERRED\u{1}";

/// Whether `reply` is the deferral placeholder (see [`PENDING_MARKER`]).
pub(crate) fn is_pending_marker(reply: &Reply) -> bool {
    matches!(reply, Reply::Status(s) if *s == PENDING_MARKER)
}

/// Longest single backoff sleep after an `accept()` failure.
const ACCEPT_BACKOFF_CAP: Duration = Duration::from_millis(100);

/// Test hook: replaces the next `accept()` outcome. Returning
/// `Some(err)` makes the accept loop treat it as an accept failure
/// (without touching the real listener); `None` falls through to the
/// real `accept()`. Used by the fd-pressure regression tests.
#[derive(Clone)]
pub struct AcceptHook(pub Arc<dyn Fn() -> Option<std::io::Error> + Send + Sync>);

impl std::fmt::Debug for AcceptHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AcceptHook(..)")
    }
}

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Number of storage shards (= shard-owner threads).
    pub shards: usize,
    /// Expected keyspace size (presizes the segment tables).
    pub capacity: usize,
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: SocketAddr,
    /// Bind address for the Prometheus `/metrics` responder; `None`
    /// (the default) means no metrics endpoint. Port 0 picks an
    /// ephemeral port (see [`ServerHandle::metrics_addr`]).
    pub metrics_addr: Option<SocketAddr>,
    /// The middleware pipeline in front of the store (default: none —
    /// requests go straight to the storage plane).
    pub middleware: MiddlewareConfig,
    /// Drive pipelined bursts through the batched `call_batch` path
    /// (default). Off = the pre-batching per-command path, kept for
    /// A/B benchmarking and equivalence tests.
    pub batch: bool,
    /// How long a connection waits for shard acknowledgements before
    /// poisoning itself — **one overall deadline per burst or
    /// fan-out**, not per ack (only reachable when a shard is stuck or
    /// shutting down mid-request).
    pub ack_timeout: Duration,
    /// Serve every connection on its own blocking OS thread instead of
    /// the event-loop plane (`--thread-per-conn`). The pre-event-loop
    /// architecture, kept for A/B equivalence and regression
    /// measurement — it can never reach the 100k+ connection regime.
    pub thread_per_conn: bool,
    /// Number of event-loop threads (`--event-loops`); `0` (the
    /// default) means one per available core. Ignored when
    /// `thread_per_conn` is set.
    pub event_loops: usize,
    /// Close connections that have read nothing for this long
    /// (`--idle-timeout-ms`), freeing their fds; `None` (the default)
    /// never reaps. Event-loop plane only — an idle threaded
    /// connection parks its own thread and leaks nothing shared.
    pub idle_timeout: Option<Duration>,
    /// Test hook: inject `accept()` failures (fd-pressure regression
    /// tests). Leave `None` in production.
    pub accept_hook: Option<AcceptHook>,
    /// Test hook: make every shard apply this much slower (stuck-shard
    /// timeout tests). Leave `None` in production.
    pub shard_delay: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 4,
            capacity: 16_384,
            addr: "127.0.0.1:0".parse().expect("literal addr"),
            metrics_addr: None,
            middleware: MiddlewareConfig::none(),
            batch: true,
            ack_timeout: Duration::from_secs(5),
            thread_per_conn: false,
            event_loops: 0,
            idle_timeout: None,
            accept_hook: None,
            shard_delay: None,
        }
    }
}

/// A running server; dropping it (or calling [`ServerHandle::shutdown`])
/// stops it.
pub struct ServerHandle {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    store: Arc<Store>,
    stats: Arc<ServerStats>,
    stack: Arc<Stack>,
    shutdown: Arc<AtomicBool>,
    ready: Arc<AtomicBool>,
    /// Stops the metrics responder. Separate from `shutdown` so the
    /// responder keeps serving probes (`/ready` → 503) while the drain
    /// flushes in-flight work; it only goes down last.
    metrics_stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    metrics_thread: Option<JoinHandle<()>>,
    shard_threads: Vec<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
    loop_threads: Vec<JoinHandle<()>>,
    loop_wakers: Vec<Arc<LoopWaker>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The address the Prometheus `/metrics` responder is listening
    /// on, when one was configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Number of storage shards.
    pub fn shards(&self) -> usize {
        self.store.shards()
    }

    /// The middleware stack every connection drives requests through
    /// (runtime admin: token/policy reloads, metrics).
    pub fn stack(&self) -> &Arc<Stack> {
        &self.stack
    }

    /// A snapshot of the operation counters.
    pub fn stats(&self) -> StatsSnapshot {
        let mut snap = self.stats.snapshot();
        // The authoritative applied count lives in the storage plane's
        // per-shard counter (reported since the last `STATS RESET`).
        snap.applied = self.store.applied_since_reset();
        snap
    }

    /// Whether the server currently reports itself ready (the `READY`
    /// verb and the `/ready` endpoint). Flips to `false` the moment a
    /// drain begins.
    pub fn ready(&self) -> bool {
        self.ready.load(Ordering::Acquire)
    }

    /// Flip the readiness gate by hand (e.g. to take the server out of
    /// rotation before an orchestrated drain). `READY` answers
    /// `-ERR NOTREADY draining` and `/ready` answers 503 while down.
    pub fn set_ready(&self, ready: bool) {
        self.ready.store(ready, Ordering::Release);
    }

    /// Set (or clear) the chaos stall every shard owner sleeps before
    /// applying each mutation. Runtime-tunable: the stuck-shard and
    /// load-shedding tests stall a live server, watch shedding engage,
    /// then clear it and watch the backlog drain.
    pub fn set_shard_delay(&self, delay: Option<Duration>) {
        self.store.set_shard_delay(delay);
    }

    /// Stop accepting, drain the shards, join every thread.
    pub fn shutdown(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Readiness goes first: anything probing `/ready` or `READY`
        // stops routing new work here before the listener closes.
        self.ready.store(false, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let conns = std::mem::take(&mut *self.connections.lock().expect("connection registry"));
        for c in conns {
            let _ = c.join();
        }
        // Event-loop plane: wake every loop so it observes the flag,
        // then join. Before the shard threads go down, so in-flight
        // deferred bursts still receive their acks while draining.
        for waker in &self.loop_wakers {
            waker.wake();
        }
        for t in self.loop_threads.drain(..) {
            let _ = t.join();
        }
        // The metrics responder is the last plane to go down — it joins
        // after the connections so `/ready` keeps answering 503 (and
        // `/metrics` keeps scraping) while the in-flight bursts flush.
        self.metrics_stop.store(true, Ordering::Release);
        if let Some(addr) = self.metrics_addr {
            let _ = TcpStream::connect(addr);
        }
        if let Some(t) = self.metrics_thread.take() {
            let _ = t.join();
        }
        // Shard threads exit once the flag is up and their queue is
        // drained; wake any parked ones.
        for _ in 0..2 {
            for shard in 0..self.store.shards() {
                self.store.wake(shard);
            }
        }
        for t in self.shard_threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Bind and spawn a server.
pub fn spawn(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(config.addr)?;
    let addr = listener.local_addr()?;
    let stats = Arc::new(ServerStats::new());
    let stack = Stack::build(&config.middleware);
    let shutdown = Arc::new(AtomicBool::new(false));
    let ready = Arc::new(AtomicBool::new(true));
    let runtime = store::spawn_shards(
        config.shards,
        config.capacity,
        Arc::clone(&stats),
        Arc::clone(&shutdown),
        config.shard_delay,
        config.middleware.trace.window_secs,
    );
    let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    // The shed layer's pressure probe reads the live shard telemetry;
    // the store exists only now, so the probe is seated post-build.
    // A no-op when the shed layer is not configured.
    let _ = stack.shed_set_probe(Arc::new(StorePressure {
        store: Arc::clone(&runtime.store),
    }));

    let tuning = ConnTuning {
        batch: config.batch,
        ack_timeout: config.ack_timeout,
        // DEGO_TEST_DYN_STACK=1 forces the boxed onion without
        // touching the config — the CI matrix leg that runs the
        // whole tier-1 suite against the fallback dispatch plane.
        dyn_stack: config.middleware.dyn_stack
            || std::env::var("DEGO_TEST_DYN_STACK").is_ok_and(|v| v == "1"),
    };
    // DEGO_TEST_THREAD_PER_CONN=1 forces the threaded plane without
    // touching the config — the CI matrix leg that runs the whole
    // tier-1 suite against the A/B fallback.
    let thread_per_conn = config.thread_per_conn
        || std::env::var("DEGO_TEST_THREAD_PER_CONN").is_ok_and(|v| v == "1");

    // The accept loop is plane-agnostic: it hands each accepted socket
    // (plus its global connection id) to a dispatch sink. The threaded
    // plane spawns a dedicated thread per socket; the event-loop plane
    // round-robins sockets across the loop threads and wakes the
    // target's epoll.
    let mut loop_threads: Vec<JoinHandle<()>> = Vec::new();
    let mut loop_wakers: Vec<Arc<LoopWaker>> = Vec::new();
    let dispatch: DispatchSink = if thread_per_conn {
        let store = Arc::clone(&runtime.store);
        let stats = Arc::clone(&stats);
        let stack = Arc::clone(&stack);
        let flag = Arc::clone(&shutdown);
        let ready = Arc::clone(&ready);
        let connections = Arc::clone(&connections);
        Box::new(move |socket, conn| {
            let store = Arc::clone(&store);
            let stats = Arc::clone(&stats);
            let stack = Arc::clone(&stack);
            let flag = Arc::clone(&flag);
            let ready = Arc::clone(&ready);
            let handle = std::thread::Builder::new()
                .name(format!("dego-conn-{conn}"))
                .spawn(move || {
                    let _ =
                        serve_connection(socket, store, stats, stack, flag, ready, conn, tuning);
                })
                .expect("spawn connection thread");
            let mut registry = connections.lock().expect("connection registry");
            // Reap dead sessions so a long-lived server with connection
            // churn does not accumulate handles without bound.
            registry.retain(|h| !h.is_finished());
            registry.push(handle);
        })
    } else {
        // Default: one loop per core, floored at two. A dispatch can
        // still block its loop for a bounded stretch (a span-sampled
        // burst waits for its store segments, a read-after-write
        // barrier waits for acks), and with a single loop that would
        // head-of-line block every other connection on the box — two
        // is the minimum that keeps one stalled burst from serializing
        // the whole connection plane. An explicit `--event-loops 1`
        // is honored (A/B runs and reproductions).
        let loops = if config.event_loops == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .max(2)
        } else {
            config.event_loops
        };
        let mut senders: Vec<LoopSink> = Vec::new();
        for i in 0..loops {
            let waker = Arc::new(LoopWaker::new()?);
            let epoll = Epoll::new()?;
            let (conn_tx, conn_rx) = channel::<(TcpStream, u64)>();
            let ctx = LoopCtx {
                epoll,
                waker: Arc::clone(&waker),
                inbox: conn_rx,
                store: Arc::clone(&runtime.store),
                stats: Arc::clone(&stats),
                stack: Arc::clone(&stack),
                shutdown: Arc::clone(&shutdown),
                ready: Arc::clone(&ready),
                tuning,
                idle_timeout: config.idle_timeout,
            };
            loop_threads.push(
                std::thread::Builder::new()
                    .name(format!("dego-loop-{i}"))
                    .spawn(move || run_loop(ctx))?,
            );
            senders.push((conn_tx, Arc::clone(&waker)));
            loop_wakers.push(waker);
        }
        let mut next = 0usize;
        Box::new(move |socket, conn| {
            let (conn_tx, waker) = &senders[next];
            next = (next + 1) % senders.len();
            if conn_tx.send((socket, conn)).is_ok() {
                waker.wake();
            }
        })
    };

    let accept_thread = {
        let stats = Arc::clone(&stats);
        let shutdown = Arc::clone(&shutdown);
        let hook = config.accept_hook.clone();
        std::thread::Builder::new()
            .name("dego-accept".into())
            .spawn(move || accept_loop(listener, stats, shutdown, dispatch, hook))
            .expect("spawn accept thread")
    };

    let metrics_stop = Arc::new(AtomicBool::new(false));
    let (metrics_addr, metrics_thread) = match config.metrics_addr {
        Some(addr) => {
            let (bound, handle) = crate::metrics_http::spawn_metrics(
                addr,
                Arc::clone(&runtime.store),
                Arc::clone(&stats),
                Arc::clone(&stack),
                Arc::clone(&metrics_stop),
                Arc::clone(&ready),
            )?;
            (Some(bound), Some(handle))
        }
        None => (None, None),
    };

    Ok(ServerHandle {
        addr,
        metrics_addr,
        store: runtime.store,
        stats,
        stack,
        shutdown,
        ready,
        metrics_stop,
        accept_thread: Some(accept_thread),
        metrics_thread,
        shard_threads: runtime.threads,
        connections,
        loop_threads,
        loop_wakers,
    })
}

/// The accept loop's per-socket sink (see `spawn`).
type DispatchSink = Box<dyn FnMut(TcpStream, u64) + Send>;

/// One event loop's connection inlet plus its epoll doorbell.
type LoopSink = (Sender<(TcpStream, u64)>, Arc<LoopWaker>);

/// Per-connection knobs threaded from the config into each session
/// (shared by both connection planes).
#[derive(Clone, Copy)]
pub(crate) struct ConnTuning {
    pub(crate) batch: bool,
    pub(crate) ack_timeout: Duration,
    pub(crate) dyn_stack: bool,
}

/// The shed layer's window onto live shard pressure: routes a write
/// the way [`ExecService::plan_mutation`] will (same `home_segment`
/// hash), then reads the target shard's queue-depth gauge and windowed
/// ack p99 straight off the telemetry the shard owners already
/// publish. Lock-free on both calls — this runs on every write's
/// admission path when shedding is armed.
struct StorePressure {
    store: Arc<Store>,
}

impl PressureProbe for StorePressure {
    fn shard_of(&self, cmd: &Command) -> Option<usize> {
        let shard = match cmd {
            Command::Set(key, _) | Command::Del(key) | Command::Incr(key, _) => {
                self.store.shard_of_key(key)
            }
            Command::AddUser(user)
            | Command::Join(user)
            | Command::Leave(user)
            | Command::Profile(user) => self.store.shard_of_user(*user),
            Command::Follow(_, followee) | Command::Unfollow(_, followee) => {
                self.store.shard_of_user(*followee)
            }
            // A POST fans out to many shards; gate it on the author's
            // timeline shard (always a target, and the hottest row).
            Command::Post(author, _) => self.store.shard_of_user(*author),
            _ => return None,
        };
        Some(shard)
    }

    fn pressure_of(&self, shard: usize) -> ShardPressure {
        let t = &self.store.telemetry()[shard];
        ShardPressure {
            queue_depth: t.queue_depth(),
            ack_p99_us: t.ack_us().percentile_us(0.99),
        }
    }
}

/// The per-connection dispatch chain. With the canonical seven-layer
/// stack (and no `--dyn-stack` override) the onion monomorphizes into
/// one concrete [`FusedService`] — direct calls between layers, plus
/// the batch-1 inline fast path — while partial/reordered stacks and
/// the explicit fallback keep the boxed `dyn Service` onion. Replies
/// and metrics are identical either way (the middleware proptests pin
/// this).
pub(crate) enum Chain {
    Fused(Box<FusedService<ExecService>>),
    Dyn(BoxService),
}

impl Chain {
    /// Dispatch a singleton: the fused chain takes its inline batch-1
    /// fast path; the dyn onion pays the per-layer virtual calls.
    pub(crate) fn call_one(&mut self, req: Request) -> Response {
        match self {
            Chain::Fused(chain) => chain.call_one(req),
            Chain::Dyn(chain) => chain.call(req),
        }
    }

    /// Dispatch a pipelined burst through the group-commit batch path.
    pub(crate) fn call_batch(&mut self, reqs: Vec<Request>) -> Vec<Response> {
        match self {
            Chain::Fused(chain) => chain.call_batch(reqs),
            Chain::Dyn(chain) => chain.call_batch(reqs),
        }
    }
}

/// Build one connection's dispatch chain around its innermost service
/// (shared by both connection planes — the fusibility rules must not
/// drift between them).
pub(crate) fn build_chain(
    stack: &Arc<Stack>,
    session: &Session,
    exec: ExecService,
    dyn_stack: bool,
) -> Chain {
    if !dyn_stack && stack.fusible() {
        let fused = stack
            .fused_service(session, exec)
            .expect("fusible stack fuses");
        Chain::Fused(Box::new(fused))
    } else {
        Chain::Dyn(stack.service(session, Box::new(exec)))
    }
}

/// The backoff slept after the `n`-th consecutive `accept()` failure:
/// exponential from 1 ms, capped at [`ACCEPT_BACKOFF_CAP`]. Persistent
/// failures (EMFILE/ENFILE fd exhaustion) therefore cost ~10 wakeups a
/// second instead of a 100%-CPU spin, and the loop stays responsive to
/// shutdown.
pub(crate) fn accept_backoff(consecutive: u32) -> Duration {
    Duration::from_millis(1u64 << consecutive.min(10)).min(ACCEPT_BACKOFF_CAP)
}

fn accept_loop(
    listener: TcpListener,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    mut dispatch: DispatchSink,
    hook: Option<AcceptHook>,
) {
    let mut next_conn = 0u64;
    let mut consecutive_errors = 0u32;
    loop {
        let accepted = match &hook {
            Some(hook) => match (hook.0)() {
                Some(err) => Err(err),
                None => listener.accept(),
            },
            None => listener.accept(),
        };
        let (socket, _) = match accepted {
            Ok(pair) => {
                consecutive_errors = 0;
                pair
            }
            Err(_) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Persistent accept errors (fd exhaustion) must not
                // busy-spin the core: count them and back off.
                stats.note_accept_error();
                std::thread::sleep(accept_backoff(consecutive_errors));
                consecutive_errors = consecutive_errors.saturating_add(1);
                continue;
            }
        };
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        stats.note_connection();
        dispatch(socket, next_conn);
        next_conn += 1;
    }
}

/// A storage-plane row a burst's outstanding mutation is about to
/// touch; reads declare the rows they depend on, and a match forces a
/// barrier so the read observes the writes before it in the burst.
///
/// Kv keys are tracked by **hash**, not by owned string, so the hot
/// batch path never clones a key: a hash collision merely forces a
/// spurious barrier (always safe — the read just waits a little), a
/// miss is impossible (equal keys hash equally).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum PendingKey {
    Kv(u64),
    Timeline(u64),
    Follower(u64),
    Profile(u64),
    Group(u64),
}

/// The hash [`PendingKey::Kv`] tracks string keys by.
fn kv_pending(key: &str) -> PendingKey {
    use std::hash::{Hash as _, Hasher as _};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut hasher);
    PendingKey::Kv(hasher.finish())
}

/// What a batched request is waiting on when assembly begins.
enum Slot {
    /// Answered inline (read, control, structural rejection).
    Done(Reply),
    /// One mutation: the ack with this sequence number.
    Single(u64),
    /// A `POST` fan-out: every one of these acks.
    Fanout(Vec<u64>),
}

/// A slot the event loop must still resolve: the subset of [`Slot`]
/// that can cross the deferral boundary (inline replies never defer).
pub(crate) enum PendingSlot {
    /// One mutation: the ack with this sequence number.
    Single(u64),
    /// A `POST` fan-out: every one of these acks.
    Fanout(Vec<u64>),
}

/// The contract between an event loop and its connection's innermost
/// service, threaded through the middleware onion out of band (the
/// chain is thread-local, so plain `Rc` + interior mutability).
///
/// The loop **arms** the cell immediately before a `call_batch`
/// dispatch; the innermost service consumes the armed flag and — if
/// the burst ended healthy and unsampled — skips its final ack
/// barrier, answering unresolved slots with [`PENDING_MARKER`]
/// placeholders and parking the real work here. The loop pairs the
/// placeholders with the parked slots positionally (both emitted in
/// request order) and collects the acks without blocking, which is
/// what lets bursts from many connections share one shard sweep.
///
/// Mid-burst barriers (read-after-write and friends) stay synchronous
/// inside `call_batch`, so reply bytes are identical to the threaded
/// plane.
pub(crate) struct DeferCell {
    armed: Cell<bool>,
    pending: RefCell<Vec<PendingSlot>>,
    received: RefCell<HashMap<u64, Reply>>,
}

impl DeferCell {
    pub(crate) fn new() -> DeferCell {
        DeferCell {
            armed: Cell::new(false),
            pending: RefCell::new(Vec::new()),
            received: RefCell::new(HashMap::new()),
        }
    }

    /// Allow the next `call_batch` to defer its final barrier.
    pub(crate) fn arm(&self) {
        self.armed.set(true);
    }

    /// Defensive reset after dispatch: a batch that never reached the
    /// innermost service (e.g. the TTL layer's sequential fallback)
    /// must not leave the flag armed.
    pub(crate) fn disarm(&self) {
        self.armed.set(false);
    }

    /// Consume the armed flag (the innermost `call_batch` calls this
    /// exactly once per dispatch).
    fn consume_armed(&self) -> bool {
        self.armed.replace(false)
    }

    fn park(&self, slot: PendingSlot) {
        self.pending.borrow_mut().push(slot);
    }

    fn stash_received(&self, received: HashMap<u64, Reply>) {
        *self.received.borrow_mut() = received;
    }

    /// The deferred burst's unresolved slots (in emission order) and
    /// any acks that had already arrived before the barrier was
    /// skipped. Empties the cell.
    pub(crate) fn take_output(&self) -> (Vec<PendingSlot>, HashMap<u64, Reply>) {
        (
            std::mem::take(&mut self.pending.borrow_mut()),
            std::mem::take(&mut self.received.borrow_mut()),
        )
    }
}

/// The innermost service: executes commands against the storage plane
/// (the thing every middleware layer ultimately wraps).
pub(crate) struct ExecService {
    store: Arc<Store>,
    stats: Arc<ServerStats>,
    /// The readiness gate `READY` reports; flips to `false` the moment
    /// a drain begins.
    ready: Arc<AtomicBool>,
    /// This connection's id: the group-ack run key shard owners batch
    /// consecutive mutations by.
    conn: u64,
    /// Next mutation sequence number (reply reassembly key).
    next_seq: u64,
    ack_timeout: Duration,
    ack_tx: Sender<ShardAck>,
    /// Shared with the event loop (which drains deferred acks); the
    /// chain is thread-local, so `Rc` suffices.
    ack_rx: Rc<Receiver<ShardAck>>,
    /// The deferral contract with the owning event loop; `None` on the
    /// threaded plane (every barrier synchronous).
    defer: Option<Rc<DeferCell>>,
    /// The owning event loop's `epoll` waker, carried on every
    /// mutation envelope so a shard's group-ack flush can unblock the
    /// loop; `None` on the threaded plane (a blocking `recv` needs no
    /// wakeup).
    waker: Option<Arc<LoopWaker>>,
}

impl ExecService {
    /// Wire up the innermost service for one connection. Both planes
    /// build it; only the event loop passes `defer`/`waker`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        store: Arc<Store>,
        stats: Arc<ServerStats>,
        ready: Arc<AtomicBool>,
        conn: u64,
        ack_timeout: Duration,
        ack_tx: Sender<ShardAck>,
        ack_rx: Rc<Receiver<ShardAck>>,
        defer: Option<Rc<DeferCell>>,
        waker: Option<Arc<LoopWaker>>,
    ) -> ExecService {
        ExecService {
            store,
            stats,
            ready,
            conn,
            next_seq: 0,
            ack_timeout,
            ack_tx,
            ack_rx,
            defer,
            waker,
        }
    }

    /// Enqueue one mutation to its shard, returning its sequence
    /// number.
    fn enqueue(&mut self, shard: usize, op: Mutation) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.store.enqueue(
            shard,
            MutationMsg {
                conn: self.conn,
                seq,
                reply: self.ack_tx.clone(),
                waker: self.waker.clone(),
                enqueued_at: Instant::now(),
                // Only span-sampled requests pay for shard-side
                // stamping; the flag rides the envelope across the
                // queue boundary.
                traced: dego_middleware::span::active(),
                op,
            },
        );
        seq
    }

    /// File one acknowledgement: the reply is keyed by sequence number
    /// for reassembly, and a traced envelope's store-side segment is
    /// handed to the connection thread's active span (no-op when the
    /// span already closed — e.g. a late ack after a barrier).
    fn accept_ack(ack: AckItem, received: &mut HashMap<u64, Reply>) {
        if let Some(seg) = ack.seg {
            dego_middleware::span::record_store(seg);
        }
        received.insert(ack.seq, ack.reply);
    }

    /// Collect acks until every sequence number in `want` has a reply
    /// in `received`, under **one overall deadline** for the whole
    /// wait. On timeout the connection must be poisoned by the caller:
    /// a late ack may still arrive, and once a stale ack can be
    /// sitting in the channel every later request/reply pairing would
    /// be off by one — closing the session is the only honest
    /// recovery.
    fn collect(
        &mut self,
        received: &mut HashMap<u64, Reply>,
        want: &[u64],
    ) -> Result<(), &'static str> {
        let deadline = Instant::now() + self.ack_timeout;
        while want.iter().any(|seq| !received.contains_key(seq)) {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(ACK_TIMEOUT_MSG);
            }
            match self.ack_rx.recv_timeout(left) {
                Ok(ShardAck::One(ack)) => {
                    Self::accept_ack(ack, received);
                }
                Ok(ShardAck::Many(acks)) => {
                    for ack in acks {
                        Self::accept_ack(ack, received);
                    }
                }
                Err(RecvTimeoutError::Timeout) => return Err(ACK_TIMEOUT_MSG),
                Err(RecvTimeoutError::Disconnected) => return Err(ACK_GONE_MSG),
            }
        }
        Ok(())
    }

    /// The single-shard mutation (and the rows it touches) for `cmd`,
    /// or `None` when `cmd` is not a single-shard mutation.
    fn plan_mutation(&self, cmd: &Command) -> Option<(usize, Mutation, Vec<PendingKey>)> {
        let planned = match cmd {
            Command::Set(key, value) => (
                self.store.shard_of_key(key),
                Mutation::Set {
                    key: key.clone(),
                    value: value.clone(),
                },
                vec![kv_pending(key)],
            ),
            Command::Del(key) => (
                self.store.shard_of_key(key),
                Mutation::Del { key: key.clone() },
                vec![kv_pending(key)],
            ),
            Command::Incr(key, delta) => (
                self.store.shard_of_key(key),
                Mutation::Incr {
                    key: key.clone(),
                    delta: *delta,
                },
                vec![kv_pending(key)],
            ),
            Command::AddUser(user) => (
                self.store.shard_of_user(*user),
                Mutation::AddUser { user: *user },
                vec![
                    PendingKey::Timeline(*user),
                    PendingKey::Follower(*user),
                    PendingKey::Profile(*user),
                ],
            ),
            Command::Follow(follower, followee) => (
                self.store.shard_of_user(*followee),
                Mutation::FollowerAdd {
                    followee: *followee,
                    follower: *follower,
                },
                vec![PendingKey::Follower(*followee)],
            ),
            Command::Unfollow(follower, followee) => (
                self.store.shard_of_user(*followee),
                Mutation::FollowerDel {
                    followee: *followee,
                    follower: *follower,
                },
                vec![PendingKey::Follower(*followee)],
            ),
            Command::Join(user) => (
                self.store.shard_of_user(*user),
                Mutation::GroupJoin { user: *user },
                vec![PendingKey::Group(*user)],
            ),
            Command::Leave(user) => (
                self.store.shard_of_user(*user),
                Mutation::GroupLeave { user: *user },
                vec![PendingKey::Group(*user)],
            ),
            Command::Profile(user) => (
                self.store.shard_of_user(*user),
                Mutation::ProfileBump { user: *user },
                vec![PendingKey::Profile(*user)],
            ),
            _ => return None,
        };
        Some(planned)
    }

    /// The rows a read-class (or `STATS`) command depends on; `None`
    /// means "everything" (a full barrier).
    fn read_deps(cmd: &Command) -> Option<Vec<PendingKey>> {
        match cmd {
            Command::Get(key) => Some(vec![kv_pending(key)]),
            Command::Timeline(user) => Some(vec![PendingKey::Timeline(*user)]),
            Command::IsFollowing(_, followee) => Some(vec![PendingKey::Follower(*followee)]),
            Command::Followers(user) => Some(vec![PendingKey::Follower(*user)]),
            Command::InGroup(user) => Some(vec![PendingKey::Group(*user)]),
            Command::ProfileVer(user) => Some(vec![PendingKey::Profile(*user)]),
            Command::Stats | Command::StatsShards | Command::StatsReset => None,
            _ => Some(Vec::new()),
        }
    }

    /// Serve a read/control command inline from the lock-free segment
    /// readers (never a mutation, `QUIT`, or a middleware verb).
    fn serve_read(&self, cmd: &Command) -> Reply {
        match cmd {
            Command::Get(key) => match self.store.kv.get(key) {
                Some(v) => {
                    self.stats.note_get_hit();
                    Reply::Value(v)
                }
                None => {
                    self.stats.note_get_miss();
                    Reply::Nil
                }
            },
            Command::Timeline(user) => {
                self.stats.note_timeline_read();
                let mut row = self.store.timelines.get(user).unwrap_or_default();
                // Stored oldest→newest; serve newest first, capped.
                row.reverse();
                row.truncate(TIMELINE_LIMIT);
                Reply::Array(row.iter().map(|m| format!(":{m}")).collect())
            }
            Command::IsFollowing(follower, followee) => {
                let follows = self
                    .store
                    .followers
                    .get(followee)
                    .is_some_and(|row| row.contains(follower));
                Reply::Int(follows as i64)
            }
            Command::Followers(user) => {
                Reply::Int(self.store.followers.get(user).map_or(0, |row| row.len()) as i64)
            }
            Command::InGroup(user) => Reply::Int(self.store.group.contains(user) as i64),
            Command::ProfileVer(user) => {
                Reply::Int(self.store.profiles.get(user).unwrap_or(0) as i64)
            }
            Command::Stats => {
                let mut snap = self.stats.snapshot();
                snap.applied = self.store.applied_since_reset();
                Reply::Array(snap.render_lines(self.store.shards(), self.store.kv.len()))
            }
            Command::StatsShards => Reply::Array(self.store.render_shard_lines()),
            Command::StatsReset => {
                // Zero the server-plane counters and shard telemetry;
                // the trace layer (when present) resets the middleware
                // plane after this reply travels back up through it.
                self.stats.reset();
                self.store.reset_telemetry();
                Reply::Status("OK")
            }
            Command::Ping => Reply::Status("PONG"),
            // Liveness: answers as long as the process serves at all —
            // even mid-drain (the orchestrator must not kill a server
            // that is still flushing its queues).
            Command::Health => Reply::Status("OK"),
            // Readiness: whether *new* traffic should route here.
            Command::Ready => {
                if self.ready.load(Ordering::Acquire) {
                    Reply::Status("READY")
                } else {
                    Reply::Error("NOTREADY draining".into())
                }
            }
            other => Reply::Error(format!("{} reached the read executor", other.verb())),
        }
    }

    /// Enqueue a `POST`'s fan-out (author plus up to `FANOUT_LIMIT`
    /// followers), returning `(target, sequence number)` pairs.
    fn enqueue_post(&mut self, author: u64, msg: u64) -> Vec<(u64, u64)> {
        // The author's own timeline is always a target; a self-follow
        // must not deliver twice (Vec::dedup would only catch it when
        // adjacent), so filter the author out of the follower fan-out.
        let mut targets = vec![author];
        if let Some(row) = self.store.followers.get(&author) {
            targets.extend(row.into_iter().filter(|f| *f != author).take(FANOUT_LIMIT));
        }
        targets
            .into_iter()
            .map(|user| {
                let shard = self.store.shard_of_user(user);
                (
                    user,
                    self.enqueue(shard, Mutation::TimelinePush { user, msg }),
                )
            })
            .collect()
    }

    /// Resolve a fan-out's collected acks: any error (or missing ack)
    /// fails the whole `POST`. Also called by the event loop when it
    /// completes a deferred fan-out slot.
    pub(crate) fn fanout_reply(
        received: &mut HashMap<u64, Reply>,
        seqs: &[u64],
        missing: &'static str,
    ) -> Reply {
        let mut failure = None;
        for seq in seqs {
            match received.remove(seq) {
                Some(Reply::Error(e)) => failure = Some(e),
                Some(_) => {}
                None => failure = Some(missing.to_string()),
            }
        }
        match failure {
            None => Reply::Status("OK"),
            Some(e) => Reply::Error(e),
        }
    }

    /// The structural depth-0 rejections: middleware-owned verbs
    /// (`AUTH`, `EXPIRE`, the `SLOWLOG`/`TRACE` rings) answered here,
    /// at the innermost service, when their layer is not in the
    /// pipeline — they never reach the store. One shared check for
    /// `call` and `call_batch`, so the two paths can never drift apart
    /// textually.
    fn structural_rejection(cmd: &Command) -> Option<Response> {
        match cmd {
            Command::Auth(_) => Some(Response::rejection("AUTH", "auth layer not enabled")),
            Command::Expire(..) => Some(Response::rejection("TTL", "ttl layer not enabled")),
            Command::SlowlogGet
            | Command::SlowlogReset
            | Command::SlowlogLen
            | Command::TraceGet
            | Command::TraceReset
            | Command::TraceLen => Some(Response::rejection("TRACE", "trace layer not enabled")),
            _ => None,
        }
    }
}

impl Service for ExecService {
    fn call(&mut self, req: Request) -> Response {
        if let Some(resp) = Self::structural_rejection(&req.command) {
            return resp;
        }
        match &req.command {
            Command::Quit => Response {
                reply: Reply::Status("OK"),
                close: true,
            },
            Command::Post(author, msg) => {
                self.stats.note_mutation();
                // Fan out to the author plus the first FANOUT_LIMIT
                // followers; every target's shard must ack before the
                // client sees +OK, so a post is visible on every
                // timeline it reached once acknowledged. One overall
                // deadline covers the whole fan-out — a stuck shard
                // costs ack_timeout once, not once per follower — and
                // a timeout bails immediately instead of draining the
                // remaining acks against a poisoned session.
                let seqs: Vec<u64> = self
                    .enqueue_post(*author, *msg)
                    .into_iter()
                    .map(|(_, seq)| seq)
                    .collect();
                let mut received = HashMap::new();
                match self.collect(&mut received, &seqs) {
                    Ok(()) => Response::ok(Self::fanout_reply(&mut received, &seqs, ACK_GONE_MSG)),
                    Err(msg) => Response {
                        reply: Reply::Error(msg.into()),
                        close: true,
                    },
                }
            }
            cmd => {
                if let Some((shard, op, _touched)) = self.plan_mutation(cmd) {
                    self.stats.note_mutation();
                    let seq = self.enqueue(shard, op);
                    let mut received = HashMap::new();
                    match self.collect(&mut received, &[seq]) {
                        Ok(()) => {
                            Response::ok(received.remove(&seq).expect("collect delivered this seq"))
                        }
                        Err(msg) => Response {
                            reply: Reply::Error(msg.into()),
                            close: true,
                        },
                    }
                } else {
                    Response::ok(self.serve_read(cmd))
                }
            }
        }
    }

    /// The group-commit batch path. Mutations are enqueued as they are
    /// encountered (FIFO shard queues keep per-key order); reads are
    /// served inline unless a row they depend on has an outstanding
    /// mutation in this burst, in which case a barrier collects every
    /// outstanding ack first. One final collection (single overall
    /// deadline) gathers the rest, and replies are assembled in
    /// request order.
    fn call_batch(&mut self, reqs: Vec<Request>) -> Vec<Response> {
        let mut dead: Option<&'static str> = None;
        let mut received: HashMap<u64, Reply> = HashMap::new();
        // Sequence numbers issued but not yet confirmed collected.
        let mut unmet: Vec<u64> = Vec::new();
        let mut pending: HashSet<PendingKey> = HashSet::new();
        let mut slots: Vec<Slot> = Vec::with_capacity(reqs.len());

        // A barrier: wait for every outstanding ack, then forget the
        // pending rows (they are applied and visible).
        macro_rules! barrier {
            () => {
                if !unmet.is_empty() {
                    match self.collect(&mut received, &unmet) {
                        Ok(()) => {
                            unmet.clear();
                            pending.clear();
                        }
                        Err(msg) => dead = Some(msg),
                    }
                }
            };
        }

        for req in &reqs {
            if let Some(cause) = dead {
                // The session is poisoned: answer without executing
                // (the sequential path would have hung up already).
                slots.push(Slot::Done(Reply::Error(cause.into())));
                continue;
            }
            if let Some(resp) = Self::structural_rejection(&req.command) {
                slots.push(Slot::Done(resp.reply));
                continue;
            }
            match &req.command {
                Command::Quit => slots.push(Slot::Done(Reply::Status("OK"))),
                Command::Post(author, msg) => {
                    self.stats.note_mutation();
                    // The fan-out reads the follower row: wait for any
                    // outstanding FOLLOW/UNFOLLOW before targeting.
                    if pending.contains(&PendingKey::Follower(*author)) {
                        barrier!();
                        if let Some(cause) = dead {
                            slots.push(Slot::Done(Reply::Error(cause.into())));
                            continue;
                        }
                    }
                    // Every fan-out target's timeline is now dirty: a
                    // TIMELINE of any of them later in this burst must
                    // barrier first.
                    let mut seqs = Vec::new();
                    for (target, seq) in self.enqueue_post(*author, *msg) {
                        pending.insert(PendingKey::Timeline(target));
                        unmet.push(seq);
                        seqs.push(seq);
                    }
                    slots.push(Slot::Fanout(seqs));
                }
                cmd => {
                    if let Some((shard, op, touched)) = self.plan_mutation(cmd) {
                        self.stats.note_mutation();
                        let seq = self.enqueue(shard, op);
                        unmet.push(seq);
                        pending.extend(touched);
                        slots.push(Slot::Single(seq));
                    } else {
                        let needs_barrier = match Self::read_deps(cmd) {
                            None => !unmet.is_empty(),
                            Some(deps) => deps.iter().any(|k| pending.contains(k)),
                        };
                        if needs_barrier {
                            barrier!();
                            if let Some(cause) = dead {
                                slots.push(Slot::Done(Reply::Error(cause.into())));
                                continue;
                            }
                        }
                        slots.push(Slot::Done(self.serve_read(cmd)));
                    }
                }
            }
        }
        // The final barrier — skipped when the owning event loop armed
        // the deferral and the burst ended healthy: the loop collects
        // the tail acks asynchronously, so bursts from *other*
        // connections can hit the same shard sweep (cross-connection
        // group commit). A span-sampled burst stays synchronous so its
        // store segments land in the trace tree before the span
        // closes; a poisoned burst already has its answer.
        let deferring = dead.is_none()
            && self.defer.as_ref().is_some_and(|cell| cell.consume_armed())
            && !dego_middleware::span::active();
        if dead.is_none() && !deferring {
            barrier!();
        }

        let missing = dead.unwrap_or(ACK_GONE_MSG);
        let defer = self.defer.clone();
        let mut responses: Vec<Response> = reqs
            .iter()
            .zip(slots)
            .map(|(req, slot)| {
                let reply = match slot {
                    Slot::Done(reply) => reply,
                    Slot::Single(seq) => match received.remove(&seq) {
                        Some(reply) => reply,
                        None if deferring => {
                            let cell = defer.as_ref().expect("deferring implies a cell");
                            cell.park(PendingSlot::Single(seq));
                            Reply::Status(PENDING_MARKER)
                        }
                        None => Reply::Error(missing.into()),
                    },
                    Slot::Fanout(seqs) => {
                        if deferring && seqs.iter().any(|seq| !received.contains_key(seq)) {
                            let cell = defer.as_ref().expect("deferring implies a cell");
                            cell.park(PendingSlot::Fanout(seqs));
                            Reply::Status(PENDING_MARKER)
                        } else {
                            Self::fanout_reply(&mut received, &seqs, missing)
                        }
                    }
                };
                Response {
                    reply,
                    close: matches!(req.command, Command::Quit),
                }
            })
            .collect();
        if deferring && !received.is_empty() {
            // Acks that arrived early but belong to a parked fan-out:
            // hand them to the loop alongside the parked slots.
            if let Some(cell) = defer.as_ref() {
                cell.stash_received(received);
            }
        }
        if dead.is_some() {
            // Poisoned: whatever the client was told, the session ends.
            if let Some(last) = responses.last_mut() {
                last.close = true;
            }
        }
        responses
    }
}

/// What one request line of a burst turned into.
enum LineSlot {
    /// A parsed command, answered by the service chain (in order).
    Cmd,
    /// A parse failure, answered in place.
    Err(String),
}

/// One connection's session: parse, drive the middleware chain,
/// pipeline replies.
///
/// Batched mode drains every complete line already buffered into one
/// burst, drives the parsed commands through `call_batch`, and writes
/// the replies (parse errors stitched back in positionally) with one
/// buffered socket write. Blank/whitespace-only lines are keepalives:
/// skipped before parsing and before any counter or rate-limit token
/// is touched, Redis-style.
#[allow(clippy::too_many_arguments)]
fn serve_connection(
    socket: TcpStream,
    store: Arc<Store>,
    stats: Arc<ServerStats>,
    stack: Arc<Stack>,
    shutdown: Arc<AtomicBool>,
    ready: Arc<AtomicBool>,
    conn: u64,
    tuning: ConnTuning,
) -> std::io::Result<()> {
    socket.set_nodelay(true)?;
    socket.set_read_timeout(Some(Duration::from_millis(100)))?;
    let session = Session {
        client: socket
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "unknown".to_string()),
    };
    let mut reader = BufReader::new(socket.try_clone()?);
    let mut writer = BufWriter::new(socket);
    let (ack_tx, ack_rx) = channel::<ShardAck>();
    let exec = ExecService::new(
        store,
        Arc::clone(&stats),
        ready,
        conn,
        tuning.ack_timeout,
        ack_tx,
        Rc::new(ack_rx),
        None,
        None,
    );
    let mut chain = build_chain(&stack, &session, exec, tuning.dyn_stack);
    let mut line = String::new();
    let mut out = String::new();

    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                // Drain the whole buffered burst: every complete line
                // already in the buffer parses into the same batch
                // (reading them cannot block — the newline is there).
                let mut lines = vec![std::mem::take(&mut line)];
                let mut burst_err: Option<std::io::Error> = None;
                while tuning.batch && reader.buffer().contains(&b'\n') {
                    let mut next = String::new();
                    match reader.read_line(&mut next) {
                        Ok(0) => break,
                        Ok(_) => lines.push(next),
                        Err(e) => {
                            // A failed mid-burst line (non-UTF-8 bytes)
                            // must answer like the sequential path —
                            // after the valid lines before it — not be
                            // swallowed reply-less.
                            burst_err = Some(e);
                            break;
                        }
                    }
                }
                let mut requests: Vec<Request> = Vec::new();
                let mut line_slots: Vec<LineSlot> = Vec::new();
                for raw in &lines {
                    let text = raw.trim_end_matches('\n');
                    // Blank lines are keepalives: no command, no error,
                    // no token — skip before any accounting.
                    if text.trim().is_empty() {
                        continue;
                    }
                    stats.note_command();
                    match Command::parse(text) {
                        Ok(cmd) => {
                            let quit = matches!(cmd, Command::Quit);
                            requests.push(Request::new(cmd));
                            line_slots.push(LineSlot::Cmd);
                            if quit {
                                // Input after QUIT is discarded, as the
                                // sequential path always did.
                                break;
                            }
                        }
                        Err(e) => line_slots.push(LineSlot::Err(e.0)),
                    }
                }
                // Singletons keep the unamortized path: its per-command
                // metrics (class latency histograms) stay meaningful.
                let responses = match requests.len() {
                    0 => Vec::new(),
                    1 => vec![chain.call_one(requests.pop().expect("one request"))],
                    _ => chain.call_batch(requests),
                };
                let mut responses = responses.into_iter();
                let mut closing = false;
                for slot in line_slots {
                    let (reply, close) = match slot {
                        LineSlot::Cmd => {
                            let resp = responses.next().expect("one response per command");
                            (resp.reply, resp.close)
                        }
                        LineSlot::Err(e) => (Reply::Error(e), false),
                    };
                    if matches!(reply, Reply::Error(_)) {
                        stats.note_error();
                    }
                    reply.render(&mut out);
                    if close {
                        closing = true;
                        break;
                    }
                }
                if let Some(e) = burst_err {
                    if !closing {
                        // Mirror the outer error arms, positioned after
                        // the burst's replies: non-UTF-8 input gets its
                        // structured error, and either way the byte
                        // stream is unrecoverable — hang up.
                        if e.kind() == ErrorKind::InvalidData {
                            stats.note_error();
                            Reply::Error("protocol requires UTF-8 input".into()).render(&mut out);
                        }
                        closing = true;
                    }
                }
                // Pipelining: only pay a socket write once no complete
                // line remains buffered.
                if !out.is_empty() && !reader.buffer().contains(&b'\n') {
                    writer.write_all(out.as_bytes())?;
                    writer.flush()?;
                    out.clear();
                }
                if closing {
                    break;
                }
                // Draining: this burst's replies are flushed, so stop
                // reading new requests and hang up. Input still in the
                // socket buffer was never acknowledged.
                if out.is_empty() && shutdown.load(Ordering::Acquire) {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // Idle tick: push out anything buffered, check for
                // shutdown. A partially read line stays in `line`.
                if !out.is_empty() {
                    writer.write_all(out.as_bytes())?;
                    writer.flush()?;
                    out.clear();
                }
                if shutdown.load(Ordering::Acquire) {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::InvalidData => {
                // Non-UTF-8 bytes: this is a text protocol. Say why,
                // then hang up (the byte stream is unrecoverable —
                // read_line cannot tell where the bad input ended).
                stats.note_error();
                Reply::Error("protocol requires UTF-8 input".into()).render(&mut out);
                break;
            }
            Err(_) => break,
        }
    }
    if !out.is_empty() {
        writer.write_all(out.as_bytes())?;
        writer.flush()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_backoff_grows_and_saturates() {
        assert_eq!(accept_backoff(0), Duration::from_millis(1));
        assert_eq!(accept_backoff(3), Duration::from_millis(8));
        assert_eq!(accept_backoff(7), ACCEPT_BACKOFF_CAP);
        // Huge streaks must neither overflow nor exceed the cap.
        assert_eq!(accept_backoff(u32::MAX), ACCEPT_BACKOFF_CAP);
    }
}
