//! The wire protocol: a compact, RESP-inspired line protocol.
//!
//! Requests are single lines, `VERB arg1 arg2 ...`, terminated by `\n`
//! (a trailing `\r` is tolerated). `SET`'s value is the rest of the
//! line, so values may contain spaces but not newlines. Verbs are
//! case-insensitive.
//!
//! Replies are lines too:
//!
//! | First byte | Meaning |
//! |---|---|
//! | `+` | status (`+OK`, `+PONG`) |
//! | `$` | one value, rest of line |
//! | `_` | nil (absent key) |
//! | `:` | signed integer |
//! | `-` | error (`-ERR <message>`) |
//! | `*` | array header `*<n>`, followed by `n` element lines |
//!
//! The full verb set is listed in [`Command`].

use std::fmt::Write as _;

/// A parsed request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// `GET key` → `$value` | `_`
    Get(String),
    /// `SET key value...` → `+OK`
    Set(String, String),
    /// `DEL key` → `+OK` (blind, like the M2 map's `remove`)
    Del(String),
    /// `INCR key [delta]` → `:new` (missing keys count from 0)
    Incr(String, i64),
    /// `ADDUSER user` → `+OK`
    AddUser(u64),
    /// `POST user msg` → `+OK` (fans out to followers' timelines)
    Post(u64, u64),
    /// `FOLLOW follower followee` → `+OK`
    Follow(u64, u64),
    /// `UNFOLLOW follower followee` → `+OK`
    Unfollow(u64, u64),
    /// `TIMELINE user` → `*n` + n × `:msg` (newest first)
    Timeline(u64),
    /// `ISFOLLOWING follower followee` → `:0` | `:1`
    IsFollowing(u64, u64),
    /// `FOLLOWERS user` → `:count`
    Followers(u64),
    /// `JOIN user` → `+OK`
    Join(u64),
    /// `LEAVE user` → `+OK`
    Leave(u64),
    /// `INGROUP user` → `:0` | `:1`
    InGroup(u64),
    /// `PROFILE user` → `:version` (bump the profile version)
    Profile(u64),
    /// `PROFILEVER user` → `:version`
    ProfileVer(u64),
    /// `STATS` → `*n` + n × `name=value`
    Stats,
    /// `PING` → `+PONG`
    Ping,
    /// `QUIT` → `+OK`, then the server closes the connection
    Quit,
}

/// A parse failure, reported to the client as `-ERR ...`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

fn need<'a>(parts: &mut impl Iterator<Item = &'a str>, what: &str) -> Result<&'a str, ParseError> {
    parts
        .next()
        .ok_or_else(|| ParseError(format!("missing {what}")))
}

fn need_u64<'a>(parts: &mut impl Iterator<Item = &'a str>, what: &str) -> Result<u64, ParseError> {
    let raw = need(parts, what)?;
    raw.parse()
        .map_err(|_| ParseError(format!("{what} must be an unsigned integer, got {raw:?}")))
}

impl Command {
    /// Parse one request line (without its terminator).
    pub fn parse(line: &str) -> Result<Command, ParseError> {
        let line = line.strip_suffix('\r').unwrap_or(line).trim_start();
        let mut parts = line.split_whitespace();
        let verb = need(&mut parts, "verb")?.to_ascii_uppercase();
        let cmd = match verb.as_str() {
            "GET" => Command::Get(need(&mut parts, "key")?.to_string()),
            "SET" => {
                let key = need(&mut parts, "key")?;
                // The value is the rest of the line after the key, so
                // it may contain spaces.
                let after_verb = &line[line.find(char::is_whitespace).unwrap_or(line.len())..];
                let after_verb = after_verb.trim_start();
                let value = after_verb[key.len()..].trim();
                if value.is_empty() {
                    return Err(ParseError("missing value".into()));
                }
                Command::Set(key.to_string(), value.to_string())
            }
            "DEL" => Command::Del(need(&mut parts, "key")?.to_string()),
            "INCR" => {
                let key = need(&mut parts, "key")?.to_string();
                let delta = match parts.next() {
                    None => 1,
                    Some(raw) => raw
                        .parse()
                        .map_err(|_| ParseError(format!("bad delta {raw:?}")))?,
                };
                Command::Incr(key, delta)
            }
            "ADDUSER" => Command::AddUser(need_u64(&mut parts, "user")?),
            "POST" => Command::Post(need_u64(&mut parts, "user")?, need_u64(&mut parts, "msg")?),
            "FOLLOW" => Command::Follow(
                need_u64(&mut parts, "follower")?,
                need_u64(&mut parts, "followee")?,
            ),
            "UNFOLLOW" => Command::Unfollow(
                need_u64(&mut parts, "follower")?,
                need_u64(&mut parts, "followee")?,
            ),
            "TIMELINE" => Command::Timeline(need_u64(&mut parts, "user")?),
            "ISFOLLOWING" => Command::IsFollowing(
                need_u64(&mut parts, "follower")?,
                need_u64(&mut parts, "followee")?,
            ),
            "FOLLOWERS" => Command::Followers(need_u64(&mut parts, "user")?),
            "JOIN" => Command::Join(need_u64(&mut parts, "user")?),
            "LEAVE" => Command::Leave(need_u64(&mut parts, "user")?),
            "INGROUP" => Command::InGroup(need_u64(&mut parts, "user")?),
            "PROFILE" => Command::Profile(need_u64(&mut parts, "user")?),
            "PROFILEVER" => Command::ProfileVer(need_u64(&mut parts, "user")?),
            "STATS" => Command::Stats,
            "PING" => Command::Ping,
            "QUIT" => Command::Quit,
            other => return Err(ParseError(format!("unknown verb {other:?}"))),
        };
        Ok(cmd)
    }
}

/// A reply on its way to the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// `+OK` / `+PONG` status.
    Status(&'static str),
    /// A present value.
    Value(String),
    /// An absent value.
    Nil,
    /// A signed integer.
    Int(i64),
    /// An error.
    Error(String),
    /// An array of pre-rendered element lines.
    Array(Vec<String>),
}

impl Reply {
    /// Append the wire form (with terminators) to `out`.
    pub fn render(&self, out: &mut String) {
        match self {
            Reply::Status(s) => {
                let _ = writeln!(out, "+{s}");
            }
            Reply::Value(v) => {
                let _ = writeln!(out, "${v}");
            }
            Reply::Nil => out.push_str("_\n"),
            Reply::Int(i) => {
                let _ = writeln!(out, ":{i}");
            }
            Reply::Error(e) => {
                let _ = writeln!(out, "-ERR {e}");
            }
            Reply::Array(items) => {
                let _ = writeln!(out, "*{}", items.len());
                for item in items {
                    let _ = writeln!(out, "{item}");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_kv_verbs() {
        assert_eq!(Command::parse("GET a"), Ok(Command::Get("a".into())));
        assert_eq!(
            Command::parse("set key hello world "),
            Ok(Command::Set("key".into(), "hello world".into()))
        );
        assert_eq!(Command::parse("DEL k\r"), Ok(Command::Del("k".into())));
        assert_eq!(Command::parse("INCR k"), Ok(Command::Incr("k".into(), 1)));
        assert_eq!(
            Command::parse("INCR k -5"),
            Ok(Command::Incr("k".into(), -5))
        );
    }

    #[test]
    fn parses_the_social_verbs() {
        assert_eq!(Command::parse("POST 3 77"), Ok(Command::Post(3, 77)));
        assert_eq!(Command::parse("FOLLOW 1 2"), Ok(Command::Follow(1, 2)));
        assert_eq!(Command::parse("TIMELINE 9"), Ok(Command::Timeline(9)));
        assert_eq!(Command::parse("stats"), Ok(Command::Stats));
    }

    #[test]
    fn leading_whitespace_does_not_corrupt_set() {
        assert_eq!(
            Command::parse("  SET k v"),
            Ok(Command::Set("k".into(), "v".into()))
        );
        assert_eq!(
            Command::parse("\t SET key hello world"),
            Ok(Command::Set("key".into(), "hello world".into()))
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Command::parse("").is_err());
        assert!(Command::parse("BLORP 1").is_err());
        assert!(Command::parse("GET").is_err());
        assert!(Command::parse("SET k").is_err());
        assert!(Command::parse("POST notanumber 5").is_err());
    }

    #[test]
    fn renders_replies() {
        let mut out = String::new();
        Reply::Status("OK").render(&mut out);
        Reply::Value("v with spaces".into()).render(&mut out);
        Reply::Nil.render(&mut out);
        Reply::Int(-3).render(&mut out);
        Reply::Error("nope".into()).render(&mut out);
        Reply::Array(vec![":1".into(), ":2".into()]).render(&mut out);
        assert_eq!(out, "+OK\n$v with spaces\n_\n:-3\n-ERR nope\n*2\n:1\n:2\n");
    }
}
