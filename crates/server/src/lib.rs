//! # dego-server — the sharded adjusted-object middleware server
//!
//! The paper adjusts shared objects to their usage so they scale; this
//! crate puts those objects behind a network: a multi-threaded TCP
//! key-value + retwis service whose entire storage plane is built from
//! `dego-core`'s catalogue.
//!
//! | Piece | Adjusted object | Type (Table 1) |
//! |---|---|---|
//! | keyspace, timelines, followers, profiles | [`dego_core::SegmentedHashMap`] | `(M2, CWMR)` |
//! | interest group | [`dego_core::SegmentedSet`] | `(S3, CWMR)` |
//! | mutation funnel, one per shard | [`dego_core::mpsc`] (`QueueMasp`) | `(Q1, MWSR)` |
//! | applied-mutation counter | [`dego_core::CounterIncrementOnly`] | `(C3, CWSR)` |
//!
//! The server keeps the paper's access disciplines **by construction**:
//! every segmented structure has one segment per shard, and only that
//! shard's owner thread holds its writer handles. Connection threads
//! read lock-free from any segment and funnel every mutation through
//! the owning shard's MPSC queue — multi-producer is exactly what the
//! `(Q1, MWSR)` adjustment grants, and single-consumer is what the
//! single-writer segments require. No lock is taken on any hot path.
//!
//! Consistency: a mutation is acknowledged only after the owning shard
//! applied it, so `GET` after a `SET`'s `+OK` observes the value from
//! any connection (per-key linearizable — one writer serializes each
//! key, and segment publication is release/acquire).
//!
//! The wire protocol is a compact RESP-like line protocol; see
//! [`protocol`]. A blocking [`Client`] with pipelining support lives
//! in [`client`].
//!
//! ## Quickstart
//!
//! ```
//! use dego_server::{spawn, Client, ServerConfig};
//!
//! let server = spawn(ServerConfig { shards: 2, ..ServerConfig::default() }).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! client.set("greeting", "hello world").unwrap();
//! assert_eq!(client.get("greeting").unwrap().as_deref(), Some("hello world"));
//! assert_eq!(client.incr("visits", 2).unwrap(), 2);
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod client;
mod event_loop;
mod metrics_http;
mod server;
pub mod stats;
mod store;

// The wire protocol lives in dego-middleware (the pipeline intercepts
// and rewrites commands); re-exported here so `dego_server::protocol`
// keeps working.
pub use dego_middleware::protocol;

pub use client::{Client, ClientReply};
pub use dego_middleware::{MiddlewareConfig, Role, Stack, TokenSpec};
pub use server::{spawn, AcceptHook, ServerConfig, ServerHandle, TIMELINE_LIMIT};
pub use stats::{ServerStats, StatsSnapshot};
pub use store::{FANOUT_LIMIT, TIMELINE_KEEP};

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServerHandle {
        spawn(ServerConfig {
            shards: 2,
            capacity: 256,
            ..ServerConfig::default()
        })
        .expect("server spawns")
    }

    #[test]
    fn kv_roundtrip_over_tcp() {
        let server = tiny();
        let mut c = Client::connect(server.local_addr()).unwrap();
        c.ping().unwrap();
        assert_eq!(c.get("missing").unwrap(), None);
        c.set("k", "v1").unwrap();
        assert_eq!(c.get("k").unwrap().as_deref(), Some("v1"));
        c.set("k", "value with spaces").unwrap();
        assert_eq!(c.get("k").unwrap().as_deref(), Some("value with spaces"));
        c.del("k").unwrap();
        assert_eq!(c.get("k").unwrap(), None);
        assert_eq!(c.incr("n", 5).unwrap(), 5);
        assert_eq!(c.incr("n", -2).unwrap(), 3);
        c.set("s", "notanumber").unwrap();
        assert!(c.incr("s", 1).is_err());
        server.shutdown();
    }

    #[test]
    fn social_verbs_roundtrip() {
        let server = tiny();
        let mut c = Client::connect(server.local_addr()).unwrap();
        for u in 0..4 {
            c.add_user(u).unwrap();
        }
        c.follow(1, 0).unwrap();
        c.follow(2, 0).unwrap();
        assert!(c.is_following(1, 0).unwrap());
        assert!(!c.is_following(0, 1).unwrap());
        assert_eq!(c.follower_count(0).unwrap(), 2);
        c.post(0, 41).unwrap();
        c.post(0, 42).unwrap();
        // Author and followers all see the messages, newest first.
        assert_eq!(c.timeline(0).unwrap(), vec![42, 41]);
        assert_eq!(c.timeline(1).unwrap(), vec![42, 41]);
        assert_eq!(c.timeline(2).unwrap(), vec![42, 41]);
        assert_eq!(c.timeline(3).unwrap(), Vec::<u64>::new());
        c.unfollow(1, 0).unwrap();
        assert!(!c.is_following(1, 0).unwrap());
        assert_eq!(c.follower_count(0).unwrap(), 1);
        c.join_group(3).unwrap();
        assert!(c.in_group(3).unwrap());
        c.leave_group(3).unwrap();
        assert!(!c.in_group(3).unwrap());
        assert_eq!(c.profile_bump(2).unwrap(), 1);
        assert_eq!(c.profile_bump(2).unwrap(), 2);
        assert_eq!(c.profile_version(2).unwrap(), 2);
        server.shutdown();
    }

    #[test]
    fn pipelined_burst_keeps_order() {
        let server = tiny();
        let mut c = Client::connect(server.local_addr()).unwrap();
        for i in 0..100 {
            c.send(&format!("SET k{i} {i}")).unwrap();
        }
        for _ in 0..100 {
            c.send("INCR total 1").unwrap();
        }
        c.flush().unwrap();
        for _ in 0..100 {
            assert_eq!(c.read_reply().unwrap(), ClientReply::Status("OK".into()));
        }
        for i in 1..=100 {
            assert_eq!(c.read_reply().unwrap(), ClientReply::Int(i));
        }
        assert_eq!(c.get("k37").unwrap().as_deref(), Some("37"));
        server.shutdown();
    }

    #[test]
    fn pipeline_api_keeps_reply_order() {
        let server = tiny();
        let mut c = Client::connect(server.local_addr()).unwrap();
        let replies = c
            .pipeline([
                "SET k one",
                "GET k",
                "INCR n 2",
                "SET k two",
                "GET k",
                "PING",
            ])
            .unwrap();
        assert_eq!(
            replies,
            vec![
                ClientReply::Status("OK".into()),
                ClientReply::Value("one".into()),
                ClientReply::Int(2),
                ClientReply::Status("OK".into()),
                ClientReply::Value("two".into()),
                ClientReply::Status("PONG".into()),
            ]
        );
        server.shutdown();
    }

    #[test]
    fn blank_lines_are_keepalives_not_commands() {
        let server = tiny();
        let mut c = Client::connect(server.local_addr()).unwrap();
        // Blank and whitespace-only lines produce no reply, no command
        // count, no error count — the PING right after answers first.
        c.send("").unwrap();
        c.send("   ").unwrap();
        c.send("\t").unwrap();
        c.ping().unwrap();
        let snap = server.stats();
        assert_eq!(snap.commands, 1, "only the PING counts");
        assert_eq!(snap.errors, 0, "keepalives are not errors");
        server.shutdown();
    }

    #[test]
    fn pipelined_bursts_group_commit_on_the_shards() {
        // A slowed shard guarantees the whole burst is enqueued before
        // the owner finishes draining, so the group commit is visible
        // deterministically: far fewer drains than mutations.
        let server = spawn(ServerConfig {
            shards: 1,
            capacity: 256,
            shard_delay: Some(std::time::Duration::from_millis(1)),
            ..ServerConfig::default()
        })
        .expect("server spawns");
        let mut c = Client::connect(server.local_addr()).unwrap();
        let burst: Vec<String> = (0..16).map(|i| format!("SET g{i} v{i}")).collect();
        for reply in c.pipeline(&burst).unwrap() {
            assert_eq!(reply, ClientReply::Status("OK".into()));
        }
        let snap = server.stats();
        assert_eq!(snap.applied, 16);
        assert!(snap.shard_batches > 0, "shard drained batches");
        assert!(
            snap.shard_batches <= 8,
            "group commit: far fewer drains than mutations, got {}",
            snap.shard_batches
        );
        assert_eq!(c.get("g15").unwrap().as_deref(), Some("v15"));
        server.shutdown();
    }

    #[test]
    fn batch_and_unbatched_servers_answer_identically() {
        let batched = tiny();
        let unbatched = spawn(ServerConfig {
            shards: 2,
            capacity: 256,
            batch: false,
            ..ServerConfig::default()
        })
        .expect("server spawns");
        let script: Vec<String> = (0..40)
            .flat_map(|i| {
                vec![
                    format!("SET k{} v{i}", i % 7),
                    format!("GET k{}", i % 7),
                    format!("INCR n{} 3", i % 3),
                    "BLORP".to_string(), // parse errors keep their slot
                ]
            })
            .collect();
        let mut a = Client::connect(batched.local_addr()).unwrap();
        let mut b = Client::connect(unbatched.local_addr()).unwrap();
        let got_a = a.pipeline(&script).unwrap();
        let got_b = b.pipeline(&script).unwrap();
        assert_eq!(got_a, got_b, "batched replies must match sequential");
        batched.shutdown();
        unbatched.shutdown();
    }

    #[test]
    fn stats_reflect_traffic() {
        let server = tiny();
        let mut c = Client::connect(server.local_addr()).unwrap();
        c.set("a", "1").unwrap();
        c.set("b", "2").unwrap();
        let _ = c.get("a").unwrap();
        let _ = c.get("nope").unwrap();
        let stats = c.stats_map().unwrap();
        let lookup = |name: &str| -> u64 {
            stats
                .get(name)
                .unwrap_or_else(|| panic!("stat {name} missing"))
                .parse()
                .expect("numeric stat")
        };
        assert_eq!(lookup("shards"), 2);
        assert_eq!(lookup("keys"), 2);
        assert!(lookup("gets") >= 2);
        assert!(lookup("get_hits") >= 1);
        assert!(lookup("mutations") >= 2);
        assert!(lookup("applied") >= 2);
        let snap = server.stats();
        assert!(snap.commands >= 5);
        assert_eq!(snap.applied, 2);
        server.shutdown();
    }

    #[test]
    fn self_follow_delivers_posts_once() {
        let server = tiny();
        let mut c = Client::connect(server.local_addr()).unwrap();
        for u in 0..3 {
            c.add_user(u).unwrap();
        }
        c.follow(1, 0).unwrap();
        c.follow(0, 0).unwrap(); // the author follows themselves
        c.post(0, 9).unwrap();
        assert_eq!(c.timeline(0).unwrap(), vec![9], "no double delivery");
        assert_eq!(c.timeline(1).unwrap(), vec![9]);
        server.shutdown();
    }

    #[test]
    fn rejected_mutations_do_not_count_as_applied() {
        let server = tiny();
        let mut c = Client::connect(server.local_addr()).unwrap();
        c.set("s", "notanumber").unwrap();
        let before = server.stats().applied;
        assert!(c.incr("s", 1).is_err());
        assert_eq!(server.stats().applied, before);
        server.shutdown();
    }

    #[test]
    fn bad_requests_get_errors_not_disconnects() {
        let server = tiny();
        let mut c = Client::connect(server.local_addr()).unwrap();
        assert!(matches!(
            c.request("BLORP 1").unwrap(),
            ClientReply::Error(_)
        ));
        assert!(matches!(c.request("GET").unwrap(), ClientReply::Error(_)));
        // The session survives protocol errors.
        c.ping().unwrap();
        server.shutdown();
    }

    #[test]
    fn quit_closes_the_session() {
        let server = tiny();
        let mut c = Client::connect(server.local_addr()).unwrap();
        c.quit().unwrap();
        assert!(c.ping().is_err());
        server.shutdown();
    }

    #[test]
    fn middleware_full_stack_serves_ttl_over_tcp() {
        let server = spawn(ServerConfig {
            shards: 2,
            capacity: 256,
            middleware: MiddlewareConfig::full(),
            ..ServerConfig::default()
        })
        .expect("server spawns");
        let mut c = Client::connect(server.local_addr()).unwrap();
        c.set("k", "v").unwrap();
        assert!(c.expire("k", 30).unwrap(), "timer armed on a live key");
        assert!(!c.expire("ghost", 30).unwrap(), "no timer on a miss");
        std::thread::sleep(std::time::Duration::from_millis(60));
        assert_eq!(c.get("k").unwrap(), None, "lazily expired");
        // No tokens are configured, so AUTH is a structured rejection.
        let err = c.auth("nope").unwrap_err();
        assert!(err.to_string().contains("AUTH"), "got {err}");
        // The trace layer folds mw_* lines into STATS.
        let stats = c.stats_map().unwrap();
        assert_eq!(stats.get("mw_depth").map(String::as_str), Some("7"));
        assert!(stats.contains_key("mw_ttl_expired"));
        server.shutdown();
    }

    #[test]
    fn middleware_verbs_reject_structurally_at_depth_zero() {
        let server = tiny();
        let mut c = Client::connect(server.local_addr()).unwrap();
        match c.request("EXPIRE k 100").unwrap() {
            ClientReply::Error(e) => assert!(e.starts_with("TTL "), "got {e:?}"),
            other => panic!("expected TTL rejection, got {other:?}"),
        }
        match c.request("AUTH tok").unwrap() {
            ClientReply::Error(e) => assert!(e.starts_with("AUTH "), "got {e:?}"),
            other => panic!("expected AUTH rejection, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_clean() {
        let server = tiny();
        let addr = server.local_addr();
        {
            let mut c = Client::connect(addr).unwrap();
            c.set("x", "1").unwrap();
        }
        server.shutdown();
        // The port is released: a fresh connection must not find a
        // live server behind it.
        assert!(Client::connect(addr).and_then(|mut c| c.ping()).is_err());
    }
}
