//! A small blocking client for the wire protocol, with explicit
//! pipelining support (`send` many, then `read_reply` many).
//!
//! Used by the retwis `NetworkBackend`, the load-generator bench and
//! the integration tests; applications are equally welcome to speak
//! the line protocol directly.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A reply parsed off the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientReply {
    /// `+STATUS`
    Status(String),
    /// `$value`
    Value(String),
    /// `_`
    Nil,
    /// `:n`
    Int(i64),
    /// `-ERR message`
    Error(String),
    /// `*n` plus `n` element lines, returned raw.
    Array(Vec<String>),
}

impl ClientReply {
    fn expect_status(self, what: &str) -> std::io::Result<()> {
        match self {
            ClientReply::Status(_) => Ok(()),
            other => Err(bad_reply(what, &other)),
        }
    }

    fn expect_int(self, what: &str) -> std::io::Result<i64> {
        match self {
            ClientReply::Int(n) => Ok(n),
            other => Err(bad_reply(what, &other)),
        }
    }
}

fn bad_reply(what: &str, got: &ClientReply) -> std::io::Error {
    std::io::Error::other(format!("unexpected reply to {what}: {got:?}"))
}

/// A blocking connection to a dego-server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Queue one request line without flushing (pipelining).
    pub fn send(&mut self, request: &str) -> std::io::Result<()> {
        self.writer.write_all(request.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Push queued requests to the server.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }

    /// Read one reply (blocking).
    pub fn read_reply(&mut self) -> std::io::Result<ClientReply> {
        let line = self.read_line()?;
        let reply = match line.as_bytes().first() {
            Some(b'+') => ClientReply::Status(line[1..].to_string()),
            Some(b'$') => ClientReply::Value(line[1..].to_string()),
            Some(b'_') => ClientReply::Nil,
            Some(b':') => ClientReply::Int(
                line[1..]
                    .parse()
                    .map_err(|_| std::io::Error::other(format!("bad integer reply {line:?}")))?,
            ),
            Some(b'-') => {
                let msg = line[1..].strip_prefix("ERR ").unwrap_or(&line[1..]);
                ClientReply::Error(msg.to_string())
            }
            Some(b'*') => {
                let n: usize = line[1..]
                    .parse()
                    .map_err(|_| std::io::Error::other(format!("bad array header {line:?}")))?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(self.read_line()?);
                }
                ClientReply::Array(items)
            }
            _ => return Err(std::io::Error::other(format!("unparseable reply {line:?}"))),
        };
        Ok(reply)
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Send one request and read its reply.
    pub fn request(&mut self, request: &str) -> std::io::Result<ClientReply> {
        self.send(request)?;
        self.flush()?;
        self.read_reply()
    }

    /// Drive a whole pipelined batch in one round trip: send every
    /// request line, flush once, read one reply per request, in order.
    ///
    /// The server executes the burst through its batched
    /// `call_batch`/group-commit path (one middleware walk, one
    /// deadline check, one bulk token-bucket take, group-acked shard
    /// writes), so this is the fastest way to push bulk traffic —
    /// replies are identical to sending the same requests one at a
    /// time.
    ///
    /// Blank/whitespace-only entries are skipped without being sent:
    /// the server treats them as reply-less keepalives, so counting a
    /// reply for one would block this call forever.
    pub fn pipeline<I, S>(&mut self, requests: I) -> std::io::Result<Vec<ClientReply>>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut sent = 0usize;
        for request in requests {
            let request = request.as_ref();
            if request.trim().is_empty() {
                continue;
            }
            self.send(request)?;
            sent += 1;
        }
        self.flush()?;
        (0..sent).map(|_| self.read_reply()).collect()
    }

    // ------------------------------------------------------ kv verbs

    /// `GET key`.
    pub fn get(&mut self, key: &str) -> std::io::Result<Option<String>> {
        match self.request(&format!("GET {key}"))? {
            ClientReply::Value(v) => Ok(Some(v)),
            ClientReply::Nil => Ok(None),
            other => Err(bad_reply("GET", &other)),
        }
    }

    /// `SET key value`.
    pub fn set(&mut self, key: &str, value: &str) -> std::io::Result<()> {
        self.request(&format!("SET {key} {value}"))?
            .expect_status("SET")
    }

    /// `DEL key`.
    pub fn del(&mut self, key: &str) -> std::io::Result<()> {
        self.request(&format!("DEL {key}"))?.expect_status("DEL")
    }

    /// `INCR key delta`, returning the new value.
    pub fn incr(&mut self, key: &str, delta: i64) -> std::io::Result<i64> {
        self.request(&format!("INCR {key} {delta}"))?
            .expect_int("INCR")
    }

    // -------------------------------------------------- social verbs

    /// `ADDUSER user`.
    pub fn add_user(&mut self, user: u64) -> std::io::Result<()> {
        self.request(&format!("ADDUSER {user}"))?
            .expect_status("ADDUSER")
    }

    /// `POST user msg`.
    pub fn post(&mut self, user: u64, msg: u64) -> std::io::Result<()> {
        self.request(&format!("POST {user} {msg}"))?
            .expect_status("POST")
    }

    /// `FOLLOW follower followee`.
    pub fn follow(&mut self, follower: u64, followee: u64) -> std::io::Result<()> {
        self.request(&format!("FOLLOW {follower} {followee}"))?
            .expect_status("FOLLOW")
    }

    /// `UNFOLLOW follower followee`.
    pub fn unfollow(&mut self, follower: u64, followee: u64) -> std::io::Result<()> {
        self.request(&format!("UNFOLLOW {follower} {followee}"))?
            .expect_status("UNFOLLOW")
    }

    /// `TIMELINE user`, newest first.
    pub fn timeline(&mut self, user: u64) -> std::io::Result<Vec<u64>> {
        match self.request(&format!("TIMELINE {user}"))? {
            ClientReply::Array(items) => items
                .iter()
                .map(|item| {
                    item.strip_prefix(':')
                        .and_then(|m| m.parse().ok())
                        .ok_or_else(|| {
                            std::io::Error::other(format!("bad timeline element {item:?}"))
                        })
                })
                .collect(),
            other => Err(bad_reply("TIMELINE", &other)),
        }
    }

    /// `ISFOLLOWING follower followee`.
    pub fn is_following(&mut self, follower: u64, followee: u64) -> std::io::Result<bool> {
        Ok(self
            .request(&format!("ISFOLLOWING {follower} {followee}"))?
            .expect_int("ISFOLLOWING")?
            != 0)
    }

    /// `FOLLOWERS user` (count).
    pub fn follower_count(&mut self, user: u64) -> std::io::Result<usize> {
        Ok(self
            .request(&format!("FOLLOWERS {user}"))?
            .expect_int("FOLLOWERS")? as usize)
    }

    /// `JOIN user`.
    pub fn join_group(&mut self, user: u64) -> std::io::Result<()> {
        self.request(&format!("JOIN {user}"))?.expect_status("JOIN")
    }

    /// `LEAVE user`.
    pub fn leave_group(&mut self, user: u64) -> std::io::Result<()> {
        self.request(&format!("LEAVE {user}"))?
            .expect_status("LEAVE")
    }

    /// `INGROUP user`.
    pub fn in_group(&mut self, user: u64) -> std::io::Result<bool> {
        Ok(self
            .request(&format!("INGROUP {user}"))?
            .expect_int("INGROUP")?
            != 0)
    }

    /// `PROFILE user` (bump), returning the new version.
    pub fn profile_bump(&mut self, user: u64) -> std::io::Result<i64> {
        self.request(&format!("PROFILE {user}"))?
            .expect_int("PROFILE")
    }

    /// `PROFILEVER user`.
    pub fn profile_version(&mut self, user: u64) -> std::io::Result<u64> {
        Ok(self
            .request(&format!("PROFILEVER {user}"))?
            .expect_int("PROFILEVER")? as u64)
    }

    // --------------------------------------------- middleware verbs

    /// `AUTH token` — authenticate this session (auth layer).
    pub fn auth(&mut self, token: &str) -> std::io::Result<()> {
        self.request(&format!("AUTH {token}"))?
            .expect_status("AUTH")
    }

    /// `EXPIRE key millis` — arm a TTL timer (ttl layer). Returns
    /// whether a timer was armed (`false`: no such key).
    pub fn expire(&mut self, key: &str, millis: u64) -> std::io::Result<bool> {
        Ok(self
            .request(&format!("EXPIRE {key} {millis}"))?
            .expect_int("EXPIRE")?
            != 0)
    }

    // --------------------------------------------------------- misc

    /// `PING`.
    pub fn ping(&mut self) -> std::io::Result<()> {
        self.request("PING")?.expect_status("PING")
    }

    /// `HEALTH` — liveness. `+OK` as long as the process serves at
    /// all, even mid-drain.
    pub fn health(&mut self) -> std::io::Result<()> {
        self.request("HEALTH")?.expect_status("HEALTH")
    }

    /// `READY` — readiness. `Ok(true)` while the server accepts new
    /// traffic, `Ok(false)` once a drain began (`-ERR NOTREADY …`).
    pub fn ready(&mut self) -> std::io::Result<bool> {
        match self.request("READY")? {
            ClientReply::Status(_) => Ok(true),
            ClientReply::Error(e) if e.starts_with("NOTREADY") => Ok(false),
            other => Err(bad_reply("READY", &other)),
        }
    }

    /// `STATS` as `name=value` pairs.
    pub fn stats(&mut self) -> std::io::Result<Vec<(String, String)>> {
        self.name_value_array("STATS")
    }

    /// `STATS` parsed into a map — the ergonomic way to assert on
    /// individual stats (names are unique per reply by construction).
    pub fn stats_map(&mut self) -> std::io::Result<BTreeMap<String, String>> {
        Ok(self.stats()?.into_iter().collect())
    }

    /// `STATS SHARDS` — per-shard queue depth, drained-batch shape and
    /// enqueue→apply latency — parsed into a map.
    pub fn stats_shards(&mut self) -> std::io::Result<BTreeMap<String, String>> {
        Ok(self.name_value_array("STATS SHARDS")?.into_iter().collect())
    }

    /// Issue `verb` and parse its array reply's `name=value` lines.
    fn name_value_array(&mut self, verb: &str) -> std::io::Result<Vec<(String, String)>> {
        match self.request(verb)? {
            ClientReply::Array(items) => Ok(items
                .into_iter()
                .filter_map(|item| {
                    item.split_once('=')
                        .map(|(k, v)| (k.to_string(), v.to_string()))
                })
                .collect()),
            other => Err(bad_reply(verb, &other)),
        }
    }

    /// `SLOWLOG GET` — the slowest captured commands, slowest first,
    /// one rendered line per entry.
    pub fn slowlog_get(&mut self) -> std::io::Result<Vec<String>> {
        match self.request("SLOWLOG GET")? {
            ClientReply::Array(items) => Ok(items),
            other => Err(bad_reply("SLOWLOG GET", &other)),
        }
    }

    /// `SLOWLOG LEN` — entries currently held by the ring.
    pub fn slowlog_len(&mut self) -> std::io::Result<u64> {
        Ok(self.request("SLOWLOG LEN")?.expect_int("SLOWLOG LEN")? as u64)
    }

    /// `SLOWLOG RESET` — clear the ring (entry ids keep counting).
    pub fn slowlog_reset(&mut self) -> std::io::Result<()> {
        self.request("SLOWLOG RESET")?
            .expect_status("SLOWLOG RESET")
    }

    /// `TRACE GET` — the flight recorder's captured trace trees,
    /// slowest first, one rendered line per tree.
    pub fn trace_get(&mut self) -> std::io::Result<Vec<String>> {
        match self.request("TRACE GET")? {
            ClientReply::Array(items) => Ok(items),
            other => Err(bad_reply("TRACE GET", &other)),
        }
    }

    /// `TRACE LEN` — trees currently held by the flight recorder.
    pub fn trace_len(&mut self) -> std::io::Result<u64> {
        Ok(self.request("TRACE LEN")?.expect_int("TRACE LEN")? as u64)
    }

    /// `TRACE RESET` — clear the flight recorder (ids keep counting).
    pub fn trace_reset(&mut self) -> std::io::Result<()> {
        self.request("TRACE RESET")?.expect_status("TRACE RESET")
    }

    /// `STATS RESET` — zero the middleware and server counter planes
    /// (lifetime `_total` percentiles restart; slowlog and flight
    /// recorder keep their own `RESET` verbs).
    pub fn stats_reset(&mut self) -> std::io::Result<()> {
        self.request("STATS RESET")?.expect_status("STATS RESET")
    }

    /// `QUIT` (the server closes the connection afterwards).
    pub fn quit(&mut self) -> std::io::Result<()> {
        self.request("QUIT")?.expect_status("QUIT")
    }
}
