//! A minimal Prometheus text-exposition responder.
//!
//! `--metrics-addr` spawns one thread running an HTTP/1.0 accept loop:
//! `GET /metrics` renders a point-in-time snapshot of every server and
//! middleware counter in the Prometheus text format (version 0.0.4);
//! `GET /trace` renders the flight recorder's captured trace trees as
//! JSON (slowest first); `GET /health` is liveness (200 as long as the
//! process serves); `GET /ready` is readiness (200 normally, 503 once
//! a drain has begun — the signal an orchestrator uses to stop routing
//! new traffic here). Each closes the connection after one reply;
//! anything else is a 404. One request per connection, served
//! sequentially — a scrape endpoint, not a web server. No HTTP library
//! is involved: the protocol surface is a request line in, a
//! `Content-Length`-framed body out.

use crate::stats::ServerStats;
use crate::store::Store;
use dego_middleware::{LatencyHistogram, LayerKind, PromText, Stack, WindowedHistogram};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A client gets this long to send its request line before the
/// responder hangs up (one stuck scraper must not wedge the loop).
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// And this long to drain the reply. Without a write timeout a scraper
/// that stops reading mid-body pins the responder in `write` — during a
/// drain that keeps `/ready` probes from being answered, so the
/// orchestrator never sees the 503.
const WRITE_TIMEOUT: Duration = Duration::from_secs(2);

/// Bind `addr` and spawn the responder thread. Returns the bound
/// address (port 0 resolves here) and the join handle; the thread
/// exits once `stop` is up and the accept loop is poked with a
/// throwaway connection. `stop` is deliberately NOT the server's
/// shutdown flag: during a drain the responder keeps serving probes
/// (`/ready` answering 503 is how an orchestrator sees the drain) and
/// only goes down after the connection plane has flushed.
pub(crate) fn spawn_metrics(
    addr: SocketAddr,
    store: Arc<Store>,
    stats: Arc<ServerStats>,
    stack: Arc<Stack>,
    stop: Arc<AtomicBool>,
    ready: Arc<AtomicBool>,
) -> std::io::Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let handle = std::thread::Builder::new()
        .name("dego-metrics".into())
        .spawn(move || loop {
            let socket = match listener.accept() {
                Ok((socket, _)) => socket,
                Err(_) => {
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    // Accept failures (fd pressure) must not busy-spin.
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            };
            if stop.load(Ordering::Acquire) {
                return;
            }
            let _ = serve_one(socket, &store, &stats, &stack, &ready);
        })?;
    Ok((bound, handle))
}

/// Answer one scrape: read the request line, write the exposition (or
/// a 404), close.
fn serve_one(
    socket: TcpStream,
    store: &Store,
    stats: &ServerStats,
    stack: &Stack,
    ready: &AtomicBool,
) -> std::io::Result<()> {
    socket.set_read_timeout(Some(READ_TIMEOUT))?;
    socket.set_write_timeout(Some(WRITE_TIMEOUT))?;
    let mut reader = BufReader::new(socket.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let is_get = parts.next() == Some("GET");
    let path = parts.next();
    let mut socket = socket;
    if is_get && matches!(path, Some("/health") | Some("/health/")) {
        // Liveness: the responder thread answering *is* the signal.
        let body = "ok\n";
        write!(
            socket,
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )?;
    } else if is_get && matches!(path, Some("/ready") | Some("/ready/")) {
        // Readiness: 503 once a drain has begun, so load balancers
        // stop routing new traffic while the queues flush.
        let (status, body) = if ready.load(Ordering::Acquire) {
            ("200 OK", "ready\n")
        } else {
            ("503 Service Unavailable", "draining\n")
        };
        write!(
            socket,
            "HTTP/1.0 {}\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            status,
            body.len(),
            body
        )?;
    } else if is_get && matches!(path, Some("/metrics") | Some("/metrics/")) {
        let body = render_exposition(store, stats, stack, ready.load(Ordering::Acquire));
        write!(
            socket,
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )?;
    } else if is_get && matches!(path, Some("/trace") | Some("/trace/")) {
        let body = render_trace_json(stack);
        write!(
            socket,
            "HTTP/1.0 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )?;
    } else {
        let body = "not found\n";
        write!(
            socket,
            "HTTP/1.0 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )?;
    }
    socket.flush()
}

/// Render the flight recorder's trace trees (slowest first) as one
/// JSON object: `{"entries":[{...},...]}`.
fn render_trace_json(stack: &Stack) -> String {
    let entries: Vec<String> = stack
        .metrics()
        .flight
        .entries()
        .iter()
        .map(|t| t.render_json())
        .collect();
    format!("{{\"entries\":[{}]}}\n", entries.join(","))
}

/// Render every counter, gauge and histogram the server knows about.
///
/// Families are grouped by plane: server counters (`dego_*_total`),
/// storage-plane gauges and per-shard series (`dego_shard_*`), then
/// the middleware pipeline (`dego_mw_*`) including the sampled
/// per-layer admission-cost histograms.
fn render_exposition(store: &Store, stats: &ServerStats, stack: &Stack, ready: bool) -> String {
    let snap = stats.snapshot();
    let mut prom = PromText::new();

    prom.gauge(
        "dego_ready",
        "1 while the server accepts new traffic, 0 once a drain began.",
        ready as u64,
    );
    prom.counter(
        "dego_connections_total",
        "Connections accepted since boot.",
        snap.connections,
    );
    prom.counter(
        "dego_commands_total",
        "Request lines handled.",
        snap.commands,
    );
    prom.counter("dego_gets_total", "GETs served (hit or miss).", snap.gets);
    prom.counter(
        "dego_get_hits_total",
        "GETs that found the key.",
        snap.get_hits,
    );
    prom.counter(
        "dego_mutations_total",
        "Mutations enqueued to shard owners.",
        snap.mutations,
    );
    prom.counter(
        "dego_applied_total",
        "Mutations applied by shard owners.",
        store.applied.get(),
    );
    prom.counter(
        "dego_timeline_reads_total",
        "TIMELINE reads served.",
        snap.timeline_reads,
    );
    prom.counter(
        "dego_errors_total",
        "Protocol errors returned.",
        snap.errors,
    );
    prom.counter(
        "dego_accept_errors_total",
        "accept() failures observed by the accept loop.",
        snap.accept_errors,
    );
    prom.counter(
        "dego_shard_batches_total",
        "Mutation batches drained by shard owners (group commits).",
        snap.shard_batches,
    );
    prom.counter(
        "dego_idle_closed_total",
        "Connections reaped by the event loops' idle-timeout sweep.",
        snap.idle_closed,
    );
    prom.counter(
        "dego_cas_failures_total",
        "Process-wide CAS retries (contention stall proxy).",
        snap.contention.cas_failures,
    );
    prom.counter(
        "dego_lock_spins_total",
        "Process-wide lock spin events.",
        snap.contention.lock_spins,
    );
    prom.counter(
        "dego_rmw_ops_total",
        "Process-wide read-modify-write operations.",
        snap.contention.rmw_ops,
    );
    prom.gauge("dego_shards", "Storage shards.", store.shards() as u64);
    prom.gauge(
        "dego_keys",
        "Keys in the string keyspace.",
        store.kv.len() as u64,
    );

    let shard_label = |i: usize| vec![("shard", i.to_string())];
    let depths: Vec<_> = store
        .telemetry()
        .iter()
        .enumerate()
        .map(|(i, t)| (shard_label(i), t.queue_depth()))
        .collect();
    prom.gauge_vec(
        "dego_shard_queue_depth",
        "Mutations enqueued to the shard but not yet applied.",
        &depths,
    );
    let enqueued: Vec<_> = store
        .telemetry()
        .iter()
        .enumerate()
        .map(|(i, t)| (shard_label(i), t.enqueued()))
        .collect();
    prom.counter_vec(
        "dego_shard_enqueued_total",
        "Mutations handed to the shard since boot.",
        &enqueued,
    );
    let batch_sizes: Vec<(Vec<(&str, String)>, &LatencyHistogram)> = store
        .telemetry()
        .iter()
        .enumerate()
        .map(|(i, t)| (shard_label(i), t.drained_batch().lifetime()))
        .collect();
    prom.histogram_vec(
        "dego_shard_drained_batch_size",
        "Group-commit width: mutations per drained batch.",
        &batch_sizes,
    );
    let ack_us: Vec<(Vec<(&str, String)>, &LatencyHistogram)> = store
        .telemetry()
        .iter()
        .enumerate()
        .map(|(i, t)| (shard_label(i), t.ack_us().lifetime()))
        .collect();
    prom.histogram_vec(
        "dego_shard_ack_us",
        "Enqueue-to-apply latency per mutation, microseconds.",
        &ack_us,
    );

    let m = stack.metrics();
    prom.gauge(
        "dego_mw_depth",
        "Configured middleware layers.",
        stack.depth() as u64,
    );
    prom.counter(
        "dego_mw_traced_total",
        "Commands observed by the trace layer.",
        m.traced.sum(),
    );
    prom.histogram(
        "dego_mw_read_us",
        "Read-class command latency below trace, microseconds.",
        m.read_latency.lifetime(),
    );
    prom.histogram(
        "dego_mw_write_us",
        "Write-class command latency below trace, microseconds.",
        m.write_latency.lifetime(),
    );
    prom.histogram(
        "dego_mw_control_us",
        "Control-class command latency below trace, microseconds.",
        m.control_latency.lifetime(),
    );
    prom.counter(
        "dego_mw_batches_total",
        "Pipelined bursts driven through call_batch.",
        m.batches.sum(),
    );
    prom.counter(
        "dego_mw_batch_commands_total",
        "Commands carried by those bursts.",
        m.batch_commands.sum(),
    );
    prom.histogram(
        "dego_mw_batch_us",
        "Whole-burst latency, microseconds.",
        m.batch_latency.lifetime(),
    );
    prom.counter(
        "dego_mw_rate_admitted_total",
        "Requests admitted by the rate limiter.",
        m.rate_admitted.sum().max(0) as u64,
    );
    prom.counter(
        "dego_mw_rate_rejected_total",
        "Requests rejected by the rate limiter.",
        m.rate_rejected.sum().max(0) as u64,
    );
    prom.counter(
        "dego_mw_rate_refilled_total",
        "Tokens refilled into buckets.",
        m.rate_refilled.sum().max(0) as u64,
    );
    prom.counter(
        "dego_mw_auth_admitted_total",
        "Commands admitted by the ACL check.",
        m.auth_admitted.sum(),
    );
    prom.counter(
        "dego_mw_auth_denied_total",
        "Commands or AUTH attempts denied.",
        m.auth_denied.sum(),
    );
    prom.counter(
        "dego_mw_auth_logins_total",
        "Successful AUTH logins.",
        m.auth_logins.sum(),
    );
    prom.counter(
        "dego_mw_auth_reloads_total",
        "Runtime policy/token reloads.",
        m.auth_reloads.sum(),
    );
    prom.counter(
        "dego_mw_deadline_checked_total",
        "Commands measured against a deadline budget.",
        m.deadline_checked.sum(),
    );
    prom.counter(
        "dego_mw_deadline_missed_total",
        "Commands that blew their budget.",
        m.deadline_missed.sum(),
    );
    prom.counter(
        "dego_mw_breaker_checked_total",
        "Commands measured by the circuit breaker.",
        m.breaker_checked.sum(),
    );
    prom.counter(
        "dego_mw_breaker_rejected_total",
        "Commands rejected while a breaker was open.",
        m.breaker_rejected.sum(),
    );
    prom.counter(
        "dego_mw_breaker_trips_total",
        "Closed- or half-open-to-open breaker transitions.",
        m.breaker_trips.sum(),
    );
    prom.counter(
        "dego_mw_breaker_recoveries_total",
        "Half-open-to-closed breaker transitions.",
        m.breaker_recoveries.sum(),
    );
    prom.counter(
        "dego_mw_breaker_probes_total",
        "Probe commands admitted through a half-open breaker.",
        m.breaker_probes.sum(),
    );
    let breaker_states: Vec<_> = ["read", "write"]
        .iter()
        .enumerate()
        .map(|(slot, class)| {
            (
                vec![("class", class.to_string())],
                m.breaker_state[slot].load(Ordering::Relaxed) as u64,
            )
        })
        .collect();
    prom.gauge_vec(
        "dego_mw_breaker_state",
        "Per-class breaker state: 0 closed, 1 open, 2 half-open.",
        &breaker_states,
    );
    prom.counter(
        "dego_mw_shed_checked_total",
        "Writes whose target shard's pressure was read.",
        m.shed_checked.sum(),
    );
    prom.counter(
        "dego_mw_shed_total",
        "Writes shed because their target shard was distressed.",
        m.shed_shed.sum(),
    );
    prom.counter(
        "dego_mw_ttl_checked_total",
        "Commands inspected by the TTL layer.",
        m.ttl_checked.sum(),
    );
    prom.counter(
        "dego_mw_ttl_armed_total",
        "TTL timers armed by EXPIRE.",
        m.ttl_armed.sum(),
    );
    prom.counter(
        "dego_mw_ttl_expired_total",
        "Keys lazily expired on GET.",
        m.ttl_expired.sum(),
    );
    prom.counter(
        "dego_mw_spans_sampled_total",
        "Requests whose per-layer costs were sampled.",
        m.spans_sampled.sum(),
    );
    let layers: Vec<(Vec<(&str, String)>, &LatencyHistogram)> = LayerKind::ALL
        .iter()
        .map(|k| {
            (
                vec![("layer", k.name().to_string())],
                m.layer_admission_us[k.index()].lifetime(),
            )
        })
        .collect();
    prom.histogram_vec(
        "dego_mw_layer_admission_us",
        "Sampled per-layer admission cost, microseconds.",
        &layers,
    );
    prom.gauge(
        "dego_mw_slowlog_len",
        "Entries currently held by the slowlog ring.",
        m.slowlog.len() as u64,
    );
    prom.counter(
        "dego_mw_slowlog_total",
        "Slow commands captured since boot (resets keep counting).",
        m.slowlog.total(),
    );
    prom.gauge(
        "dego_mw_flight_len",
        "Trace trees currently held by the flight recorder.",
        m.flight.len() as u64,
    );
    prom.counter(
        "dego_mw_flight_total",
        "Trace trees captured since boot (resets keep counting).",
        m.flight.total(),
    );

    // Rolling-window views: the histogram families above are cumulative
    // (Prometheus-idiomatic); these gauges report the last ~window
    // only, matching what `STATS` serves.
    prom.gauge(
        "dego_mw_window_seconds",
        "Rolling-percentile window width (0 = windowing disabled).",
        m.read_latency.window_secs(),
    );
    let classes: [(&str, &WindowedHistogram); 4] = [
        ("read", &m.read_latency),
        ("write", &m.write_latency),
        ("control", &m.control_latency),
        ("batch", &m.batch_latency),
    ];
    let class_label = |c: &str| vec![("class", c.to_string())];
    let p50: Vec<_> = classes
        .iter()
        .map(|(c, h)| (class_label(c), h.percentile_us(0.50)))
        .collect();
    prom.gauge_vec(
        "dego_mw_p50_us_window",
        "Windowed p50 latency per command class, microseconds.",
        &p50,
    );
    let p99: Vec<_> = classes
        .iter()
        .map(|(c, h)| (class_label(c), h.percentile_us(0.99)))
        .collect();
    prom.gauge_vec(
        "dego_mw_p99_us_window",
        "Windowed p99 latency per command class, microseconds.",
        &p99,
    );
    prom.finish()
}
