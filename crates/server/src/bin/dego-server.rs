//! Standalone server: `dego-server [addr] [flags]` (default
//! 127.0.0.1:7878). Runs until killed; state is in-memory only.
//! `SIGTERM` drains gracefully: readiness flips (`READY` answers
//! `-ERR NOTREADY`, `/ready` answers 503), the listener closes, every
//! in-flight burst finishes and the shard queues flush, then the
//! process exits 0 — no acknowledged write is lost.
//!
//! Flags:
//!
//! * `--shards N` — storage shards (also `DEGO_SHARDS`, default 4)
//! * `--middleware SPEC` — `none` (default), `full`, or a comma list
//!   of `trace,breaker,deadline,auth,ratelimit,shed,ttl`
//! * `--auth-token NAME:TOKEN:ROLE` — add a token (repeatable; roles:
//!   `none`, `readonly`, `readwrite`)
//! * `--anon-role ROLE` — role of unauthenticated sessions
//! * `--rate-burst N` / `--rate-per-sec N` — token-bucket tuning
//! * `--deadline-read-us N` / `--deadline-write-us N` — class budgets
//! * `--breaker-failures N` — consecutive deadline/ack-timeout
//!   failures that trip a class's circuit breaker (0 = disabled,
//!   the default)
//! * `--breaker-cooldown-ms N` / `--breaker-probes N` — open-state
//!   cooldown before half-open, and the half-open probe quota
//! * `--shed-queue-depth N` / `--shed-ack-p99-us N` — shed writes when
//!   their target shard's queue depth or windowed ack p99 crosses the
//!   threshold (0 = signal disabled; both 0 — the default — disables
//!   shedding)
//! * `--shard-delay-ms N` — chaos hook: every shard owner sleeps this
//!   long before applying each mutation (stuck-shard drills; 0 = off)
//! * `--trace-sample N` — sample per-layer span costs 1-in-N (0 = off,
//!   default 64)
//! * `--slowlog-threshold-us N` / `--slowlog-capacity N` — slowlog ring
//!   tuning (0 threshold captures everything, 0 capacity disables)
//! * `--trace-capacity N` / `--trace-threshold-us N` — flight-recorder
//!   ring tuning for sampled trace trees (`TRACE GET`; 0 capacity
//!   disables, 0 threshold keeps every sampled tree, default 64/0)
//! * `--stats-window-secs N` — rolling window for `STATS` percentiles
//!   (0 = lifetime only, default 60)
//! * `--metrics-addr ADDR` — serve Prometheus text exposition at
//!   `http://ADDR/metrics` and flight-recorder JSON at
//!   `http://ADDR/trace` (off by default)
//! * `--no-batch` — disable the batched pipeline path (A/B runs; the
//!   group-commit batching is on by default)
//! * `--dyn-stack` — force the boxed `dyn Service` onion instead of
//!   the fused (monomorphized) seven-layer chain (A/B runs and custom
//!   stacks; replies are identical either way)
//! * `--thread-per-conn` — serve each connection on a dedicated thread
//!   instead of the default epoll event-loop plane (A/B runs; replies
//!   are byte-identical either way)
//! * `--event-loops N` — event-loop thread count (0 = one per core,
//!   the default; ignored under `--thread-per-conn`)
//! * `--idle-timeout-ms N` — event loops close connections idle this
//!   long with nothing in flight (0 = never, the default)
//! * `--ack-timeout-ms N` — overall shard-ack deadline per burst/fan-out

use dego_server::{spawn, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};

fn usage_exit(err: &str) -> ! {
    eprintln!("dego-server: {err}");
    eprintln!(
        "usage: dego-server [addr] [--shards N] [--middleware none|full|LAYERS] \
         [--auth-token NAME:TOKEN:ROLE] [--anon-role ROLE] [--rate-burst N] \
         [--rate-per-sec N] [--deadline-read-us N] [--deadline-write-us N] \
         [--breaker-failures N] [--breaker-cooldown-ms N] [--breaker-probes N] \
         [--shed-queue-depth N] [--shed-ack-p99-us N] [--shard-delay-ms N] \
         [--trace-sample N] [--slowlog-threshold-us N] [--slowlog-capacity N] \
         [--trace-capacity N] [--trace-threshold-us N] [--stats-window-secs N] \
         [--metrics-addr ADDR] [--no-batch] [--dyn-stack] [--thread-per-conn] \
         [--event-loops N] [--idle-timeout-ms N] [--ack-timeout-ms N]"
    );
    std::process::exit(2);
}

/// Set once the process receives `SIGTERM`; the main thread polls it
/// and runs the drain. (A signal handler may only do async-signal-safe
/// work — flag-and-poll keeps the actual drain on a normal thread.)
static TERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term(_sig: i32) {
    TERM.store(true, Ordering::Release);
}

const SIGTERM: i32 = 15;

extern "C" {
    /// libc `signal(2)` — declared directly so the binary needs no
    /// libc crate; the handler installed is async-signal-safe (one
    /// relaxed store).
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7878".to_string();
    let mut config = ServerConfig {
        shards: std::env::var("DEGO_SHARDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(4),
        ..ServerConfig::default()
    };

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg.starts_with("--") {
            let flag = arg.as_str();
            if flag == "--no-batch" {
                config.batch = false;
                continue;
            }
            if flag == "--dyn-stack" {
                config.middleware.dyn_stack = true;
                continue;
            }
            if flag == "--thread-per-conn" {
                config.thread_per_conn = true;
                continue;
            }
            let value = it
                .next()
                .unwrap_or_else(|| usage_exit(&format!("flag {flag} needs a value")));
            match config.middleware.apply_flag(flag, value) {
                Ok(true) => {}
                Ok(false) if flag == "--shards" => match value.parse() {
                    Ok(n) if n > 0 => config.shards = n,
                    _ => usage_exit(&format!("bad shard count {value:?}")),
                },
                Ok(false) if flag == "--shard-delay-ms" => match value.parse() {
                    Ok(0u64) => config.shard_delay = None,
                    Ok(ms) => config.shard_delay = Some(std::time::Duration::from_millis(ms)),
                    _ => usage_exit(&format!("bad shard delay {value:?}")),
                },
                Ok(false) if flag == "--event-loops" => match value.parse() {
                    Ok(n) => config.event_loops = n,
                    _ => usage_exit(&format!("bad event-loop count {value:?}")),
                },
                Ok(false) if flag == "--idle-timeout-ms" => match value.parse() {
                    Ok(0u64) => config.idle_timeout = None,
                    Ok(ms) => config.idle_timeout = Some(std::time::Duration::from_millis(ms)),
                    _ => usage_exit(&format!("bad idle timeout {value:?}")),
                },
                Ok(false) if flag == "--ack-timeout-ms" => match value.parse() {
                    Ok(ms) if ms > 0u64 => {
                        config.ack_timeout = std::time::Duration::from_millis(ms)
                    }
                    _ => usage_exit(&format!("bad ack timeout {value:?}")),
                },
                Ok(false) if flag == "--metrics-addr" => match value.parse() {
                    Ok(addr) => config.metrics_addr = Some(addr),
                    Err(e) => usage_exit(&format!("bad metrics address {value:?}: {e}")),
                },
                Ok(false) => usage_exit(&format!("unknown flag {flag}")),
                Err(e) => usage_exit(&e),
            }
        } else {
            addr = arg.clone();
        }
    }

    config.addr = addr.parse().unwrap_or_else(|e| {
        usage_exit(&format!("bad listen address {addr:?}: {e}"));
    });
    let server = spawn(config).unwrap_or_else(|e| {
        eprintln!("failed to bind {addr}: {e}");
        std::process::exit(1);
    });
    println!(
        "dego-server listening on {} ({} shards, {} middleware layers)",
        server.local_addr(),
        server.shards(),
        server.stack().depth()
    );
    if let Some(addr) = server.metrics_addr() {
        println!("metrics exposition at http://{addr}/metrics");
    }

    // Graceful drain on SIGTERM: flip readiness, stop accepting, let
    // in-flight bursts finish and the shard queues flush, exit 0.
    unsafe {
        signal(SIGTERM, on_term);
    }
    while !TERM.load(Ordering::Acquire) {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    println!("dego-server: SIGTERM received, draining");
    server.shutdown();
    println!("dego-server: drain complete");
    std::process::exit(0);
}
