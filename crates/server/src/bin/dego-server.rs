//! Standalone server: `dego-server [addr]` (default 127.0.0.1:7878).
//!
//! Shard count comes from `DEGO_SHARDS` (default 4). Runs until
//! killed; state is in-memory only.

use dego_server::{spawn, ServerConfig};

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let shards = std::env::var("DEGO_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let server = spawn(ServerConfig {
        shards,
        addr: addr.parse().unwrap_or_else(|e| {
            eprintln!("bad listen address {addr:?}: {e}");
            std::process::exit(2);
        }),
        ..ServerConfig::default()
    })
    .unwrap_or_else(|e| {
        eprintln!("failed to bind {addr}: {e}");
        std::process::exit(1);
    });
    println!(
        "dego-server listening on {} ({} shards)",
        server.local_addr(),
        server.shards()
    );
    loop {
        std::thread::park();
    }
}
