//! The sharded storage plane: dego-core adjusted objects behind N
//! shard-owner threads, with **group acknowledgement**.
//!
//! Every structure is segmented with [`SegmentationKind::Hash`] into
//! one segment per shard, and each shard's segment writers are claimed
//! by exactly one **shard-owner thread** — the single-writer (M2,
//! CWMR) discipline the paper's map adjustment requires. Reads go
//! straight to the lock-free segment readers from any thread;
//! mutations travel through a [`dego_core::mpsc`] queue (the paper's
//! `QueueMasp`, MWSR) to the owning shard, which applies them in
//! arrival order and acks through a per-connection reply channel.
//!
//! **Group acknowledgement.** A mutation is shipped as a
//! [`MutationMsg`] envelope tagged with its connection id and a
//! per-connection sequence number. A shard owner drains its whole
//! inbox in one sweep, applies every mutation, and sends **one ack per
//! (connection run, drained batch)** — consecutive mutations from the
//! same connection collapse into a single [`ShardAck::Many`] message
//! instead of one channel send each. The connection side reassembles
//! replies by sequence number, so a pipelined burst of `k` writes
//! costs the reply channel `O(shards)` sends instead of `O(k)`.
//!
//! Routing is [`dego_core::home_segment`] of the key (or user id), the
//! same hash the maps use internally, so a shard writer never touches
//! a foreign segment (`debug_assert`ed inside dego-core).

use crate::protocol::Reply;
use crate::stats::ServerStats;
use dego_core::{
    home_segment, mpsc, CounterIncrementOnly, SegmentationKind, SegmentedHashMap, SegmentedSet,
};
use dego_middleware::{StatLines, StoreSegment, WindowedHistogram};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::thread::{Builder, JoinHandle, Thread};
use std::time::{Duration, Instant};

/// Messages never linger longer than this in a timeline row.
pub const TIMELINE_KEEP: usize = 64;

/// How many followers receive a post synchronously (mirrors
/// `dego_retwis::FANOUT_LIMIT`).
pub const FANOUT_LIMIT: usize = 16;

/// One mutation's acknowledgement payload: the reply keyed by its
/// per-connection sequence number, plus — when the issuing request is
/// being traced — the store-side span segment the shard owner stamped
/// (queue wait and apply time on the owner thread).
pub(crate) struct AckItem {
    /// Per-connection sequence number (reply reassembly key).
    pub seq: u64,
    /// The mutation's reply.
    pub reply: Reply,
    /// Store-side trace segment; `None` for untraced mutations.
    pub seg: Option<StoreSegment>,
}

/// An acknowledgement from a shard owner back to a connection.
///
/// `Many` carries every consecutive mutation of one drained batch that
/// belonged to the same connection.
pub(crate) enum ShardAck {
    /// A lone mutation's ack.
    One(AckItem),
    /// A group-commit ack: one send for a whole run of the batch.
    Many(Vec<AckItem>),
}

/// A mutation envelope on its way to a shard-owner thread.
pub(crate) struct MutationMsg {
    /// The issuing connection (group-ack run key).
    pub conn: u64,
    /// Per-connection sequence number (reply reassembly key).
    pub seq: u64,
    /// The issuing connection's ack inlet.
    pub reply: Sender<ShardAck>,
    /// The issuing connection's event-loop waker, rung after the ack
    /// send so the loop's `epoll_wait` observes it; `None` on the
    /// threaded plane (its blocking `recv` needs no doorbell).
    pub waker: Option<std::sync::Arc<crate::event_loop::LoopWaker>>,
    /// When the envelope was built — the shard owner turns this into
    /// the enqueue→apply latency sample.
    pub enqueued_at: Instant,
    /// Whether a trace span is open on the issuing connection: asks
    /// the shard owner to stamp a [`StoreSegment`] into the ack.
    /// Untraced envelopes pay nothing extra on the owner thread.
    pub traced: bool,
    /// The payload.
    pub op: Mutation,
}

/// Per-shard observability counters: the load-shedding inputs
/// (`STATS SHARDS`, `/metrics`) for one shard owner.
///
/// Counters are relaxed atomics and the histograms are the same
/// log₂-bucket windowed histograms the middleware uses — statistics,
/// not synchronization, on the storage plane's hottest path.
pub(crate) struct ShardTelemetry {
    /// Mutations handed to this shard's queue.
    enqueued: AtomicU64,
    /// Mutations the owner has drained and applied.
    drained: AtomicU64,
    /// Drained-batch sizes (the group-commit width, log₂ buckets).
    drained_batch: WindowedHistogram,
    /// Enqueue→apply latency per mutation, microseconds.
    ack_us: WindowedHistogram,
}

impl ShardTelemetry {
    fn new(window_secs: u64) -> Self {
        ShardTelemetry {
            enqueued: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            drained_batch: WindowedHistogram::new(window_secs),
            ack_us: WindowedHistogram::new(window_secs),
        }
    }

    /// `STATS RESET`: zero the counters and both histogram planes.
    /// The enqueued/drained pair is zeroed together; a mutation in
    /// flight across the reset can transiently read as depth, which
    /// the next drain clears.
    pub fn reset(&self) {
        self.enqueued.store(0, Ordering::Relaxed);
        self.drained.store(0, Ordering::Relaxed);
        self.drained_batch.reset();
        self.ack_us.reset();
    }

    /// Mutations enqueued but not yet applied. The two counters are
    /// read independently, so the gauge can transiently read high
    /// while a drain is in flight — never negative.
    pub fn queue_depth(&self) -> u64 {
        self.enqueued
            .load(Ordering::Relaxed)
            .saturating_sub(self.drained.load(Ordering::Relaxed))
    }

    /// Mutations handed to this shard since boot.
    pub fn enqueued(&self) -> u64 {
        self.enqueued.load(Ordering::Relaxed)
    }

    /// Drained-batch size histogram (group-commit width).
    pub fn drained_batch(&self) -> &WindowedHistogram {
        &self.drained_batch
    }

    /// Enqueue→apply latency histogram, microseconds.
    pub fn ack_us(&self) -> &WindowedHistogram {
        &self.ack_us
    }
}

/// A storage-plane mutation (the payload of a [`MutationMsg`]).
pub(crate) enum Mutation {
    Set { key: String, value: String },
    Del { key: String },
    Incr { key: String, delta: i64 },
    AddUser { user: u64 },
    TimelinePush { user: u64, msg: u64 },
    FollowerAdd { followee: u64, follower: u64 },
    FollowerDel { followee: u64, follower: u64 },
    GroupJoin { user: u64 },
    GroupLeave { user: u64 },
    ProfileBump { user: u64 },
}

/// The shared storage plane.
pub(crate) struct Store {
    shards: usize,
    /// The string keyspace (GET/SET/DEL/INCR).
    pub kv: Arc<SegmentedHashMap<String, String>>,
    /// user → recent messages, newest last.
    pub timelines: Arc<SegmentedHashMap<u64, Vec<u64>>>,
    /// user → who follows them.
    pub followers: Arc<SegmentedHashMap<u64, Vec<u64>>>,
    /// user → profile version.
    pub profiles: Arc<SegmentedHashMap<u64, u64>>,
    /// The interest group.
    pub group: Arc<SegmentedSet<u64>>,
    /// Mutations applied, one owner-exclusive cell per shard (C3).
    pub applied: Arc<CounterIncrementOnly>,
    /// Mutation inlets, indexed by shard.
    producers: Vec<mpsc::Producer<MutationMsg>>,
    /// Shard threads, for post-enqueue wakeups.
    wakers: Vec<Thread>,
    /// Per-shard observability counters, indexed by shard.
    telemetry: Vec<Arc<ShardTelemetry>>,
    /// `applied` reading at the last `STATS RESET`
    /// ([`CounterIncrementOnly`] cells are owner-exclusive and cannot
    /// be zeroed, so resets subtract an offset instead).
    applied_offset: AtomicU64,
    /// Chaos hook: nanoseconds every shard owner sleeps before applying
    /// each mutation (0 = off). Shared with every [`ShardCtx`] so the
    /// stall can be turned on and off at runtime
    /// ([`crate::ServerHandle::set_shard_delay`]).
    shard_delay_ns: Arc<AtomicU64>,
}

impl Store {
    /// The shard owning `key`.
    pub fn shard_of_key(&self, key: &String) -> usize {
        home_segment(key, self.shards)
    }

    /// The shard owning `user`'s rows.
    pub fn shard_of_user(&self, user: u64) -> usize {
        home_segment(&user, self.shards)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Hand `msg` to its owning shard and wake the owner.
    pub(crate) fn enqueue(&self, shard: usize, msg: MutationMsg) {
        self.telemetry[shard]
            .enqueued
            .fetch_add(1, Ordering::Relaxed);
        self.producers[shard].offer(msg);
        self.wakers[shard].unpark();
    }

    /// Wake a parked shard owner (e.g. to notice shutdown).
    pub(crate) fn wake(&self, shard: usize) {
        self.wakers[shard].unpark();
    }

    /// Per-shard observability counters, indexed by shard.
    pub(crate) fn telemetry(&self) -> &[Arc<ShardTelemetry>] {
        &self.telemetry
    }

    /// Mutations applied since boot or the last `STATS RESET` — the
    /// number `STATS` reports as `applied` (`/metrics` keeps the raw
    /// monotonic counter, as Prometheus counters must).
    pub(crate) fn applied_since_reset(&self) -> u64 {
        self.applied
            .get()
            .saturating_sub(self.applied_offset.load(Ordering::Relaxed))
    }

    /// Set (or clear) the per-mutation apply stall — the chaos hook the
    /// stuck-shard tests and the CI chaos-smoke job lean on. Takes
    /// effect on the next mutation each shard owner applies.
    pub(crate) fn set_shard_delay(&self, delay: Option<Duration>) {
        let ns = delay.map_or(0, |d| d.as_nanos().min(u64::MAX as u128) as u64);
        self.shard_delay_ns.store(ns, Ordering::Relaxed);
    }

    /// `STATS RESET` on the storage plane: zero every shard's
    /// telemetry and re-baseline the applied counter.
    pub(crate) fn reset_telemetry(&self) {
        for t in &self.telemetry {
            t.reset();
        }
        self.applied_offset
            .store(self.applied.get(), Ordering::Relaxed);
    }

    /// The `name=value` lines of the `STATS SHARDS` array reply:
    /// per-shard queue depth, group-commit batch shape, and
    /// enqueue→apply latency percentiles — the inputs a load shedder
    /// (or a human squinting at a hot shard) needs.
    /// Percentile lines report the rolling window, with
    /// `_total`-suffixed lifetime twins (same contract as the `mw_*`
    /// block).
    pub(crate) fn render_shard_lines(&self) -> Vec<String> {
        let mut out = StatLines::new();
        out.push("shards", self.shards);
        for (i, t) in self.telemetry.iter().enumerate() {
            out.push(&format!("shard{i}_queue_depth"), t.queue_depth());
            out.push(&format!("shard{i}_enqueued"), t.enqueued());
            out.push(
                &format!("shard{i}_drained_batches"),
                t.drained_batch.count(),
            );
            out.push(
                &format!("shard{i}_batch_p50"),
                t.drained_batch.percentile_us(0.50),
            );
            out.push(
                &format!("shard{i}_batch_p99"),
                t.drained_batch.percentile_us(0.99),
            );
            out.push(
                &format!("shard{i}_batch_p50_total"),
                t.drained_batch.lifetime().percentile_us(0.50),
            );
            out.push(
                &format!("shard{i}_batch_p99_total"),
                t.drained_batch.lifetime().percentile_us(0.99),
            );
            out.push(
                &format!("shard{i}_ack_p50_us"),
                t.ack_us.percentile_us(0.50),
            );
            out.push(
                &format!("shard{i}_ack_p99_us"),
                t.ack_us.percentile_us(0.99),
            );
            out.push(
                &format!("shard{i}_ack_p50_us_total"),
                t.ack_us.lifetime().percentile_us(0.50),
            );
            out.push(
                &format!("shard{i}_ack_p99_us_total"),
                t.ack_us.lifetime().percentile_us(0.99),
            );
        }
        out.into_lines()
    }
}

/// The storage plane plus its shard-owner threads.
pub(crate) struct ShardRuntime {
    pub store: Arc<Store>,
    pub threads: Vec<JoinHandle<()>>,
}

/// Build the storage plane and spawn one owner thread per shard.
///
/// Shard threads are spawned **serially**: each claims its segment
/// writers before the next thread starts, so shard `i` always holds
/// slot `i` of every segmented structure and key routing stays aligned
/// with writer ownership.
///
/// `apply_delay` seeds the chaos hook: when set, every owner sleeps
/// that long before applying each mutation (a "stuck shard" for
/// timeout and load-shedding tests). The stall lives in a shared
/// atomic, so [`Store::set_shard_delay`] can change it at runtime.
/// `window_secs` sizes the telemetry histograms' rolling window.
pub(crate) fn spawn_shards(
    shards: usize,
    capacity: usize,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    apply_delay: Option<Duration>,
    window_secs: u64,
) -> ShardRuntime {
    assert!(shards > 0, "need at least one shard");
    let kv = SegmentedHashMap::new(shards, capacity, SegmentationKind::Hash);
    let timelines = SegmentedHashMap::new(shards, capacity, SegmentationKind::Hash);
    let followers = SegmentedHashMap::new(shards, capacity, SegmentationKind::Hash);
    let profiles = SegmentedHashMap::new(shards, capacity, SegmentationKind::Hash);
    let group = SegmentedSet::new(shards, capacity, SegmentationKind::Hash);
    let applied = CounterIncrementOnly::new(shards);
    let telemetry: Vec<Arc<ShardTelemetry>> = (0..shards)
        .map(|_| Arc::new(ShardTelemetry::new(window_secs)))
        .collect();
    let shard_delay_ns = Arc::new(AtomicU64::new(
        apply_delay.map_or(0, |d| d.as_nanos().min(u64::MAX as u128) as u64),
    ));

    let mut producers = Vec::with_capacity(shards);
    let mut wakers = Vec::with_capacity(shards);
    let mut threads = Vec::with_capacity(shards);

    for (shard, shard_telemetry) in telemetry.iter().enumerate() {
        let (producer, consumer) = mpsc::queue::<MutationMsg>();
        let (ready_tx, ready_rx) = std::sync::mpsc::channel::<usize>();
        let ctx = ShardCtx {
            shard,
            kv: Arc::clone(&kv),
            timelines: Arc::clone(&timelines),
            followers: Arc::clone(&followers),
            profiles: Arc::clone(&profiles),
            group: Arc::clone(&group),
            applied: Arc::clone(&applied),
            stats: Arc::clone(&stats),
            telemetry: Arc::clone(shard_telemetry),
            shutdown: Arc::clone(&shutdown),
            apply_delay: Arc::clone(&shard_delay_ns),
        };
        let handle = Builder::new()
            .name(format!("dego-shard-{shard}"))
            .spawn(move || shard_loop(ctx, consumer, ready_tx))
            .expect("spawn shard thread");
        wakers.push(handle.thread().clone());
        threads.push(handle);
        producers.push(producer);
        let claimed = ready_rx
            .recv()
            .expect("shard thread died before claiming its writers");
        assert_eq!(claimed, shard, "serialized startup must assign slot=shard");
    }

    let store = Arc::new(Store {
        shards,
        kv,
        timelines,
        followers,
        profiles,
        group,
        applied,
        producers,
        wakers,
        telemetry,
        applied_offset: AtomicU64::new(0),
        shard_delay_ns,
    });
    ShardRuntime { store, threads }
}

struct ShardCtx {
    shard: usize,
    kv: Arc<SegmentedHashMap<String, String>>,
    timelines: Arc<SegmentedHashMap<u64, Vec<u64>>>,
    followers: Arc<SegmentedHashMap<u64, Vec<u64>>>,
    profiles: Arc<SegmentedHashMap<u64, u64>>,
    group: Arc<SegmentedSet<u64>>,
    applied: Arc<CounterIncrementOnly>,
    stats: Arc<ServerStats>,
    telemetry: Arc<ShardTelemetry>,
    shutdown: Arc<AtomicBool>,
    /// Nanoseconds slept before each apply (0 = off); shared with the
    /// store so the stall can change at runtime.
    apply_delay: Arc<AtomicU64>,
}

/// One connection's run of acks within a drained batch, flushed as a
/// single channel send when the run ends.
struct AckRun {
    conn: u64,
    reply: Sender<ShardAck>,
    waker: Option<std::sync::Arc<crate::event_loop::LoopWaker>>,
    acks: Vec<AckItem>,
}

impl AckRun {
    /// Send the run to its connection (a closed channel means the
    /// connection died mid-flight; the mutations were still applied),
    /// then ring the connection's event-loop doorbell — the send must
    /// land first so the woken loop's sweep observes it.
    fn flush(mut self) {
        let ack = if self.acks.len() == 1 {
            ShardAck::One(self.acks.pop().expect("one ack"))
        } else {
            ShardAck::Many(self.acks)
        };
        let _ = self.reply.send(ack);
        if let Some(waker) = self.waker {
            waker.wake();
        }
    }
}

/// The owner loop: claim this shard's writers, then drain and apply
/// mutation batches in arrival order until shutdown, group-acking each
/// connection's run of a batch with one send.
fn shard_loop(ctx: ShardCtx, mut inbox: mpsc::Consumer<MutationMsg>, ready: Sender<usize>) {
    let mut kv_w = ctx.kv.writer();
    let mut tl_w = ctx.timelines.writer();
    let mut fo_w = ctx.followers.writer();
    let mut pr_w = ctx.profiles.writer();
    let mut gr_w = ctx.group.writer();
    let cell = ctx.applied.cell();
    debug_assert_eq!(kv_w.slot(), ctx.shard);
    ready.send(kv_w.slot()).expect("startup handshake");

    loop {
        let batch = inbox.drain();
        if batch.is_empty() {
            if ctx.shutdown.load(Ordering::Acquire) {
                // Flag is up and the queue is drained: done.
                return;
            }
            // Sleep until a producer wakes us (or a timeout, to
            // re-check the shutdown flag).
            std::thread::park_timeout(Duration::from_millis(10));
            continue;
        }
        ctx.stats.note_shard_batch();
        ctx.telemetry.drained_batch.record(batch.len() as u64);
        let mut run: Option<AckRun> = None;
        for msg in batch {
            // Stamp the apply start before the delay hook: a stuck
            // shard's stall is apply time, and the trace tree must
            // account for it.
            let apply_started = msg.traced.then(Instant::now);
            let stall_ns = ctx.apply_delay.load(Ordering::Relaxed);
            if stall_ns > 0 {
                std::thread::sleep(Duration::from_nanos(stall_ns));
            }
            let reply = apply(
                &msg.op, &mut kv_w, &mut tl_w, &mut fo_w, &mut pr_w, &mut gr_w,
            );
            let seg = apply_started.map(|started| StoreSegment {
                shard: ctx.shard,
                // Saturates to zero if clocks read out of order.
                queue_us: started.duration_since(msg.enqueued_at).as_micros() as u64,
                apply_us: started.elapsed().as_micros() as u64,
            });
            ctx.telemetry
                .ack_us
                .record(msg.enqueued_at.elapsed().as_micros() as u64);
            ctx.telemetry.drained.fetch_add(1, Ordering::Relaxed);
            // Rejected mutations (e.g. INCR on a non-integer) must
            // not inflate the applied count.
            if !matches!(reply, Reply::Error(_)) {
                cell.inc();
                ctx.stats.note_applied();
            }
            let item = AckItem {
                seq: msg.seq,
                reply,
                seg,
            };
            match &mut run {
                Some(current) if current.conn == msg.conn => {
                    current.acks.push(item);
                }
                _ => {
                    if let Some(done) = run.take() {
                        done.flush();
                    }
                    run = Some(AckRun {
                        conn: msg.conn,
                        reply: msg.reply,
                        waker: msg.waker,
                        acks: vec![item],
                    });
                }
            }
        }
        if let Some(done) = run.take() {
            done.flush();
        }
    }
}

/// Apply one mutation through this shard's writers. Single-writer per
/// segment, so read-modify-write sequences on owned rows are races
/// with nobody.
fn apply(
    mutation: &Mutation,
    kv_w: &mut dego_core::SegmentedHashMapWriter<String, String>,
    tl_w: &mut dego_core::SegmentedHashMapWriter<u64, Vec<u64>>,
    fo_w: &mut dego_core::SegmentedHashMapWriter<u64, Vec<u64>>,
    pr_w: &mut dego_core::SegmentedHashMapWriter<u64, u64>,
    gr_w: &mut dego_core::SegmentedSetWriter<u64>,
) -> Reply {
    match mutation {
        Mutation::Set { key, value } => {
            kv_w.put(key.clone(), value.clone());
            Reply::Status("OK")
        }
        Mutation::Del { key } => {
            kv_w.remove(key);
            Reply::Status("OK")
        }
        Mutation::Incr { key, delta } => {
            let current = match kv_w.get(key) {
                None => 0,
                Some(raw) => match raw.parse::<i64>() {
                    Ok(n) => n,
                    Err(_) => return Reply::Error(format!("value at {key:?} is not an integer")),
                },
            };
            let next = current.wrapping_add(*delta);
            kv_w.put(key.clone(), next.to_string());
            Reply::Int(next)
        }
        Mutation::AddUser { user } => {
            if tl_w.get(user).is_none() {
                tl_w.put(*user, Vec::new());
            }
            if fo_w.get(user).is_none() {
                fo_w.put(*user, Vec::new());
            }
            if pr_w.get(user).is_none() {
                pr_w.put(*user, 0);
            }
            Reply::Status("OK")
        }
        Mutation::TimelinePush { user, msg } => {
            let mut row = tl_w.get(user).unwrap_or_default();
            row.push(*msg);
            if row.len() > TIMELINE_KEEP {
                let excess = row.len() - TIMELINE_KEEP;
                row.drain(..excess);
            }
            tl_w.put(*user, row);
            Reply::Status("OK")
        }
        Mutation::FollowerAdd { followee, follower } => {
            let mut row = fo_w.get(followee).unwrap_or_default();
            if !row.contains(follower) {
                row.push(*follower);
            }
            fo_w.put(*followee, row);
            Reply::Status("OK")
        }
        Mutation::FollowerDel { followee, follower } => {
            let mut row = fo_w.get(followee).unwrap_or_default();
            row.retain(|f| f != follower);
            fo_w.put(*followee, row);
            Reply::Status("OK")
        }
        Mutation::GroupJoin { user } => {
            gr_w.add(*user);
            Reply::Status("OK")
        }
        Mutation::GroupLeave { user } => {
            gr_w.remove(user);
            Reply::Status("OK")
        }
        Mutation::ProfileBump { user } => {
            let version = pr_w.get(user).unwrap_or(0) + 1;
            pr_w.put(*user, version);
            Reply::Int(version as i64)
        }
    }
}
