//! Server-side operation counters and the `STATS` snapshot.
//!
//! Per-connection counters are plain relaxed atomics (statistics, not
//! synchronization — the same doctrine as [`dego_metrics`]); the
//! mutation-application counter lives in the storage plane as a
//! [`dego_core::CounterIncrementOnly`] with one owner-exclusive cell
//! per shard. The snapshot also folds in the process-wide contention
//! stall proxy from [`dego_metrics::GLOBAL`].

use dego_metrics::ContentionSnapshot;
use dego_middleware::StatLines;
use std::sync::atomic::{AtomicU64, Ordering};

/// Relaxed event counters bumped by the connection threads.
#[derive(Debug, Default)]
pub struct ServerStats {
    connections: AtomicU64,
    commands: AtomicU64,
    gets: AtomicU64,
    get_hits: AtomicU64,
    mutations: AtomicU64,
    applied: AtomicU64,
    timeline_reads: AtomicU64,
    errors: AtomicU64,
    accept_errors: AtomicU64,
    shard_batches: AtomicU64,
    idle_closed: AtomicU64,
}

macro_rules! bump {
    ($($method:ident => $field:ident),* $(,)?) => {$(
        #[doc = concat!("Count one `", stringify!($field), "` event.")]
        #[inline]
        pub fn $method(&self) {
            self.$field.fetch_add(1, Ordering::Relaxed);
        }
    )*};
}

impl ServerStats {
    /// A zeroed sink.
    pub fn new() -> Self {
        Self::default()
    }

    bump! {
        note_connection => connections,
        note_command => commands,
        note_get_miss => gets,
        note_mutation => mutations,
        note_applied => applied,
        note_timeline_read => timeline_reads,
        note_error => errors,
        note_accept_error => accept_errors,
        note_shard_batch => shard_batches,
        note_idle_closed => idle_closed,
    }

    /// Count a `GET` that found its key.
    #[inline]
    pub fn note_get_hit(&self) {
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.get_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Zero every counter (`STATS RESET`). The process-wide contention
    /// proxy is **not** touched — it is shared telemetry owned by
    /// `dego_metrics::GLOBAL`, not this server instance.
    pub fn reset(&self) {
        self.connections.store(0, Ordering::Relaxed);
        self.commands.store(0, Ordering::Relaxed);
        self.gets.store(0, Ordering::Relaxed);
        self.get_hits.store(0, Ordering::Relaxed);
        self.mutations.store(0, Ordering::Relaxed);
        self.applied.store(0, Ordering::Relaxed);
        self.timeline_reads.store(0, Ordering::Relaxed);
        self.errors.store(0, Ordering::Relaxed);
        self.accept_errors.store(0, Ordering::Relaxed);
        self.shard_batches.store(0, Ordering::Relaxed);
        self.idle_closed.store(0, Ordering::Relaxed);
    }

    /// Snapshot every counter plus the global contention proxy.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            commands: self.commands.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            get_hits: self.get_hits.load(Ordering::Relaxed),
            mutations: self.mutations.load(Ordering::Relaxed),
            applied: self.applied.load(Ordering::Relaxed),
            timeline_reads: self.timeline_reads.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            accept_errors: self.accept_errors.load(Ordering::Relaxed),
            shard_batches: self.shard_batches.load(Ordering::Relaxed),
            idle_closed: self.idle_closed.load(Ordering::Relaxed),
            contention: dego_metrics::GLOBAL.snapshot(),
        }
    }
}

/// A point-in-time view served by the `STATS` verb.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted since boot.
    pub connections: u64,
    /// Request lines handled.
    pub commands: u64,
    /// `GET`s served (hit or miss).
    pub gets: u64,
    /// `GET`s that found the key.
    pub get_hits: u64,
    /// Mutations enqueued to shard owners.
    pub mutations: u64,
    /// Mutations applied by shard owners.
    pub applied: u64,
    /// `TIMELINE` reads served.
    pub timeline_reads: u64,
    /// Protocol errors returned.
    pub errors: u64,
    /// `accept()` failures observed by the accept loop (fd pressure —
    /// EMFILE/ENFILE — network stack hiccups); each one also pays a
    /// bounded backoff sleep so the loop cannot busy-spin.
    pub accept_errors: u64,
    /// Mutation batches drained by shard owners (group commits); the
    /// amortization ratio is `applied / shard_batches`.
    pub shard_batches: u64,
    /// Connections reaped by the event loops' `--idle-timeout-ms`
    /// sweep (idle past the deadline with nothing in flight).
    pub idle_closed: u64,
    /// The process-wide stall proxy at snapshot time.
    pub contention: ContentionSnapshot,
}

impl StatsSnapshot {
    /// The `name=value` lines of the `STATS` array reply.
    ///
    /// Emitted through [`StatLines`], which `debug_assert`s that no
    /// stat name repeats — the invariant clients rely on when they
    /// parse the reply into a map.
    pub fn render_lines(&self, shards: usize, keys: usize) -> Vec<String> {
        let mut out = StatLines::new();
        out.push("shards", shards);
        out.push("keys", keys);
        out.push("connections", self.connections);
        out.push("commands", self.commands);
        out.push("gets", self.gets);
        out.push("get_hits", self.get_hits);
        out.push("mutations", self.mutations);
        out.push("applied", self.applied);
        out.push("timeline_reads", self.timeline_reads);
        out.push("errors", self.errors);
        out.push("accept_errors", self.accept_errors);
        out.push("shard_batches", self.shard_batches);
        out.push("idle_closed", self.idle_closed);
        out.push("cas_failures", self.contention.cas_failures);
        out.push("lock_spins", self.contention.lock_spins);
        out.push("rmw_ops", self.contention.rmw_ops);
        out.into_lines()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_roll_up_into_the_snapshot() {
        let s = ServerStats::new();
        s.note_connection();
        s.note_command();
        s.note_command();
        s.note_get_hit();
        s.note_get_miss();
        s.note_mutation();
        s.note_applied();
        s.note_timeline_read();
        s.note_error();
        let snap = s.snapshot();
        assert_eq!(snap.connections, 1);
        assert_eq!(snap.commands, 2);
        assert_eq!(snap.gets, 2);
        assert_eq!(snap.get_hits, 1);
        assert_eq!(snap.mutations, 1);
        assert_eq!(snap.applied, 1);
        assert_eq!(snap.timeline_reads, 1);
        assert_eq!(snap.errors, 1);
        let lines = snap.render_lines(4, 10);
        assert!(lines.contains(&"shards=4".to_string()));
        assert!(lines.contains(&"get_hits=1".to_string()));
    }

    #[test]
    fn reset_returns_every_counter_to_zero() {
        let s = ServerStats::new();
        s.note_connection();
        s.note_command();
        s.note_get_hit();
        s.note_mutation();
        s.note_error();
        s.note_accept_error();
        s.note_shard_batch();
        s.reset();
        let snap = s.snapshot();
        assert_eq!(snap.connections, 0);
        assert_eq!(snap.commands, 0);
        assert_eq!(snap.gets, 0);
        assert_eq!(snap.get_hits, 0);
        assert_eq!(snap.mutations, 0);
        assert_eq!(snap.errors, 0);
        assert_eq!(snap.accept_errors, 0);
        assert_eq!(snap.shard_batches, 0);
    }
}
