//! The event-loop connection plane: N loop threads (default = core
//! count) multiplex every connection over raw `epoll`, replacing the
//! thread-per-connection model on the road to 100k+ connections.
//!
//! Each loop owns a set of nonblocking sockets. A readable connection
//! has its buffered burst drained, parsed, and driven through the same
//! per-session middleware chain the threaded plane uses — but the
//! innermost service *defers* the final ack barrier (see `DeferCell`
//! in `server.rs`): the burst's mutations are enqueued to the shard
//! queues and the loop moves straight on to the next readable
//! connection instead of blocking. Bursts from *different* connections
//! therefore pile into the same shard sweep and are acknowledged as
//! one group — **cross-connection group commit** — which the
//! `MutationMsg` envelope and `ShardAck::Many` reassembly already
//! support. Shard owners wake the loop through an `eventfd` carried on
//! the envelope; the loop patches the late replies into their
//! positional slots and flushes.
//!
//! Replies are rendered as **per-reply chunks** and written with
//! `write_vectored`, so a burst's responses go out in one syscall
//! without first concatenating into a burst-sized `String`.
//!
//! The kernel interface is four raw syscalls (`epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `eventfd`) declared `extern "C"` against
//! glibc — the workspace is offline and already declares `signal(2)`
//! the same way in the server binary.
//!
//! **Client-visible semantics are identical to the threaded plane**
//! (the equivalence suite in `tests/integration_event_loop.rs` pins
//! byte-identical reply streams): blank keepalive lines, positional
//! parse errors, `QUIT` discarding the rest of its burst, the UTF-8
//! error sequence, ack-timeout poisoning, and drain behaviour
//! (in-flight bursts flush, buffered input is never acknowledged) all
//! match `serve_connection`.

use crate::protocol::{Command, Reply};
use crate::server::{
    build_chain, Chain, ConnTuning, DeferCell, ExecService, PendingSlot, ACK_TIMEOUT_MSG,
};
use crate::stats::ServerStats;
use crate::store::{ShardAck, Store};
use dego_middleware::{Request, Session, Stack};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::TcpStream;
use std::os::unix::io::AsRawFd;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Raw epoll/eventfd bindings. The workspace builds offline with no
/// libc crate; glibc's symbols are declared directly, following the
/// `signal(2)` precedent in `bin/dego-server.rs`.
mod sys {
    /// Kernel `struct epoll_event`. Packed on x86_64 (the kernel ABI
    /// packs it there so 32- and 64-bit layouts agree); natural
    /// alignment everywhere else.
    #[derive(Clone, Copy)]
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
    }
}

pub(crate) const EPOLLIN: u32 = 0x001;
pub(crate) const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0x80000;
const EFD_CLOEXEC: i32 = 0x80000;
const EFD_NONBLOCK: i32 = 0x800;

/// Events fetched per `epoll_wait` call.
const MAX_EVENTS: usize = 256;
/// The waker eventfd's token in the loop's epoll set (connection
/// tokens are the global connection counter, which starts at 0 — so
/// the waker lives at the top of the space).
const WAKER_TOKEN: u64 = u64::MAX;
/// Per-read-sweep scratch buffer.
const READ_CHUNK: usize = 16 * 1024;
/// Most lines dispatched as one burst; the remainder stays buffered
/// for the next pass. Bounds the per-burst allocation and keeps one
/// flooding client from parking the loop in a single giant
/// `call_batch` (burst boundaries are not client-visible — the
/// equivalence suite pins that).
const MAX_BURST_LINES: usize = 512;
/// `IoSlice`s handed to one `write_vectored` call (the kernel caps a
/// vectored write at `UIO_MAXIOV` = 1024 anyway).
const MAX_IOV: usize = 64;
/// Idle epoll timeout when nothing is pending: a defensive upper
/// bound so a lost wakeup degrades to latency, never to a hang.
const IDLE_WAIT: Duration = Duration::from_millis(500);
/// Epoll timeout while draining (the loop is polling its own
/// connections dry).
const DRAIN_WAIT: Duration = Duration::from_millis(10);

/// A level-triggered epoll instance owning its fd.
pub(crate) struct Epoll {
    fd: i32,
}

impl Epoll {
    pub(crate) fn new() -> std::io::Result<Epoll> {
        // SAFETY: plain syscall, no pointers.
        let fd = unsafe { sys::epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: i32, token: u64, events: u32) -> std::io::Result<()> {
        let mut ev = sys::EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        let rc = unsafe { sys::epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    fn add(&self, fd: i32, token: u64, events: u32) -> std::io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, events)
    }

    fn modify(&self, fd: i32, token: u64, events: u32) -> std::io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, events)
    }

    fn del(&self, fd: i32) {
        // Best-effort: closing the fd deregisters it anyway when no
        // other description references it.
        let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Wait for readiness, returning the number of events filled in.
    /// `EINTR` (and any other wait failure) reports as zero events.
    fn wait(&self, events: &mut [sys::EpollEvent], timeout: Duration) -> usize {
        let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        // SAFETY: `events` is a valid, writable buffer of its length.
        let n = unsafe { sys::epoll_wait(self.fd, events.as_mut_ptr(), events.len() as i32, ms) };
        if n < 0 {
            0
        } else {
            n as usize
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `fd` is owned by this instance and closed once.
        unsafe { sys::close(self.fd) };
    }
}

/// An `eventfd` that unblocks a loop's `epoll_wait` from another
/// thread. Shard owners wake the loop after flushing a group ack;
/// the accept thread wakes it after handing off a new connection;
/// shutdown wakes it so it observes the flag.
pub(crate) struct LoopWaker {
    fd: i32,
}

impl LoopWaker {
    pub(crate) fn new() -> std::io::Result<LoopWaker> {
        // SAFETY: plain syscall, no pointers.
        let fd = unsafe { sys::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(LoopWaker { fd })
    }

    /// Make the owning loop's next (or current) `epoll_wait` return.
    /// Nonblocking: a saturated counter is already a pending wakeup.
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: writes 8 bytes from a live stack value.
        unsafe { sys::write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Reset the counter so level-triggered epoll stops reporting it.
    fn drain(&self) {
        let mut buf: u64 = 0;
        // SAFETY: reads 8 bytes into a live stack value.
        unsafe { sys::read(self.fd, (&mut buf as *mut u64).cast(), 8) };
    }

    fn fd(&self) -> i32 {
        self.fd
    }
}

impl Drop for LoopWaker {
    fn drop(&mut self) {
        // SAFETY: `fd` is owned by this instance and closed once.
        unsafe { sys::close(self.fd) };
    }
}

/// Everything a loop thread needs, built in `spawn()` so fd-creation
/// errors surface as bind-time `io::Error`s instead of thread panics.
pub(crate) struct LoopCtx {
    pub(crate) epoll: Epoll,
    pub(crate) waker: Arc<LoopWaker>,
    /// New connections from the accept thread (socket, global conn id).
    pub(crate) inbox: Receiver<(TcpStream, u64)>,
    pub(crate) store: Arc<Store>,
    pub(crate) stats: Arc<ServerStats>,
    pub(crate) stack: Arc<Stack>,
    pub(crate) shutdown: Arc<AtomicBool>,
    pub(crate) ready: Arc<AtomicBool>,
    pub(crate) tuning: ConnTuning,
    /// Close connections idle past this deadline (`--idle-timeout-ms`;
    /// `None` = never).
    pub(crate) idle_timeout: Option<Duration>,
}

/// What one reply slot of a dispatched burst is: already rendered, or
/// waiting on shard acknowledgements the loop collects asynchronously.
enum Emit {
    Ready(String),
    Pending(PendingSlot),
}

/// A burst whose final ack barrier was deferred: the loop completes it
/// when the acks arrive (or poisons the session at the deadline,
/// exactly like the threaded plane's overall burst deadline).
struct Awaiting {
    emits: Vec<Emit>,
    received: HashMap<u64, Reply>,
    deadline: Instant,
    /// The dispatch already decided to close after these replies
    /// (QUIT in the burst).
    closing: bool,
}

/// One multiplexed connection's state.
struct Conn {
    socket: TcpStream,
    chain: Chain,
    defer: Rc<DeferCell>,
    ack_rx: Rc<Receiver<ShardAck>>,
    /// Bytes read but not yet parsed (at most one partial line after
    /// a drive pass, unless a burst is in flight).
    rbuf: Vec<u8>,
    /// Rendered replies waiting to flush, one chunk per reply —
    /// `write_vectored` sends them without concatenating.
    out: VecDeque<Vec<u8>>,
    /// Bytes of `out.front()` already written (partial-write resume).
    out_off: usize,
    awaiting: Option<Awaiting>,
    /// Events currently registered with epoll.
    interest: u32,
    last_read: Instant,
    eof: bool,
    /// Close once `out` drains and nothing is awaited.
    closing: bool,
    /// Hard I/O failure: tear down immediately.
    dead: bool,
}

/// One event-loop thread: multiplexes its share of the connections
/// until shutdown drains them all.
pub(crate) fn run_loop(ctx: LoopCtx) {
    let LoopCtx {
        epoll,
        waker,
        inbox,
        store,
        stats,
        stack,
        shutdown,
        ready,
        tuning,
        idle_timeout,
    } = ctx;
    epoll
        .add(waker.fd(), WAKER_TOKEN, EPOLLIN)
        .expect("register loop waker");
    let mut el = EventLoop {
        epoll,
        waker,
        inbox,
        store,
        stats,
        stack,
        shutdown,
        ready,
        tuning,
        idle_timeout,
        conns: HashMap::new(),
        awaiting: HashSet::new(),
        draining: false,
        drain_deadline: None,
        last_idle_sweep: Instant::now(),
    };
    let mut events = [sys::EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
    loop {
        el.accept_new();
        if !el.draining && el.shutdown.load(Ordering::Acquire) {
            el.begin_drain();
        }
        if el.draining {
            if el.conns.is_empty() {
                return;
            }
            // A peer that stops reading must not wedge the drain
            // forever (the threaded plane would block in write_all;
            // here we bound it by the ack deadline and cut).
            if el
                .drain_deadline
                .is_some_and(|deadline| Instant::now() >= deadline)
            {
                el.conns.clear();
                el.awaiting.clear();
                return;
            }
        }
        let n = el.epoll.wait(&mut events, el.wait_timeout());
        let mut woke = false;
        let mut fired: Vec<(u64, u32)> = Vec::with_capacity(n);
        for ev in &events[..n] {
            // Copy out of the (possibly packed) kernel struct.
            let token = ev.data;
            let bits = ev.events;
            if token == WAKER_TOKEN {
                woke = true;
            } else {
                fired.push((token, bits));
            }
        }
        if woke {
            el.waker.drain();
            el.accept_new();
        }
        for (token, bits) in fired {
            el.handle_event(token, bits);
        }
        // Deferred bursts: collect acks (the waker fired, or the
        // deadline may have lapsed) for every awaiting connection.
        el.sweep_awaiting();
        el.sweep_idle();
    }
}

struct EventLoop {
    epoll: Epoll,
    waker: Arc<LoopWaker>,
    inbox: Receiver<(TcpStream, u64)>,
    store: Arc<Store>,
    stats: Arc<ServerStats>,
    stack: Arc<Stack>,
    shutdown: Arc<AtomicBool>,
    ready: Arc<AtomicBool>,
    tuning: ConnTuning,
    idle_timeout: Option<Duration>,
    conns: HashMap<u64, Conn>,
    /// Tokens with a deferred burst outstanding (kept separately so an
    /// ack wakeup sweeps only the waiters, not every connection).
    awaiting: HashSet<u64>,
    draining: bool,
    drain_deadline: Option<Instant>,
    last_idle_sweep: Instant,
}

impl EventLoop {
    /// Register connections handed off by the accept thread.
    fn accept_new(&mut self) {
        while let Ok((socket, token)) = self.inbox.try_recv() {
            if self.draining || self.shutdown.load(Ordering::Acquire) {
                continue; // Dropped: the listener is already closed to new work.
            }
            self.register(socket, token);
        }
    }

    /// Wire one socket into the loop: nonblocking, its own middleware
    /// chain (built here, on the owning thread — chains are
    /// thread-local), and an epoll registration under its token.
    fn register(&mut self, socket: TcpStream, token: u64) {
        if socket.set_nonblocking(true).is_err() || socket.set_nodelay(true).is_err() {
            return;
        }
        let session = Session {
            client: socket
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "unknown".to_string()),
        };
        let (ack_tx, ack_rx) = channel::<ShardAck>();
        let ack_rx = Rc::new(ack_rx);
        let defer = Rc::new(DeferCell::new());
        let exec = ExecService::new(
            Arc::clone(&self.store),
            Arc::clone(&self.stats),
            Arc::clone(&self.ready),
            token,
            self.tuning.ack_timeout,
            ack_tx,
            Rc::clone(&ack_rx),
            Some(Rc::clone(&defer)),
            Some(Arc::clone(&self.waker)),
        );
        let chain = build_chain(&self.stack, &session, exec, self.tuning.dyn_stack);
        let fd = socket.as_raw_fd();
        if self.epoll.add(fd, token, EPOLLIN | EPOLLRDHUP).is_err() {
            return;
        }
        self.conns.insert(
            token,
            Conn {
                socket,
                chain,
                defer,
                ack_rx,
                rbuf: Vec::new(),
                out: VecDeque::new(),
                out_off: 0,
                awaiting: None,
                interest: EPOLLIN | EPOLLRDHUP,
                last_read: Instant::now(),
                eof: false,
                closing: false,
                dead: false,
            },
        );
    }

    /// Shutdown observed: stop reading everywhere, flush what is owed,
    /// and let in-flight deferred bursts complete. Buffered input is
    /// never acknowledged — exactly the threaded plane's drain.
    fn begin_drain(&mut self) {
        self.draining = true;
        self.drain_deadline = Some(Instant::now() + self.tuning.ack_timeout);
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            let Some(mut conn) = self.conns.remove(&token) else {
                continue;
            };
            conn.rbuf.clear();
            if conn.awaiting.is_none() {
                conn.closing = true;
            }
            self.flush(&mut conn);
            self.settle(token, conn);
        }
    }

    /// The epoll timeout: tight while draining, bounded by the nearest
    /// ack deadline while bursts are deferred, bounded by the idle
    /// sweep cadence when an idle timeout is armed.
    fn wait_timeout(&self) -> Duration {
        let mut wait = if self.draining { DRAIN_WAIT } else { IDLE_WAIT };
        let now = Instant::now();
        for token in &self.awaiting {
            if let Some(aw) = self.conns.get(token).and_then(|c| c.awaiting.as_ref()) {
                wait = wait.min(aw.deadline.saturating_duration_since(now));
            }
        }
        if self.idle_timeout.is_some() && !self.draining {
            wait = wait.min(Duration::from_millis(50));
        }
        wait
    }

    fn handle_event(&mut self, token: u64, bits: u32) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return; // Already torn down this iteration.
        };
        if bits & (EPOLLERR | EPOLLHUP) != 0 {
            conn.dead = true;
        } else {
            if bits & EPOLLOUT != 0 {
                self.flush(&mut conn);
                if !conn.dead && conn.out.is_empty() && conn.awaiting.is_none() {
                    self.drive(&mut conn);
                }
            }
            if bits & (EPOLLIN | EPOLLRDHUP) != 0 && conn.interest & EPOLLIN != 0 && !conn.dead {
                self.read_socket(&mut conn);
                if !conn.dead {
                    self.drive(&mut conn);
                }
            }
        }
        self.settle(token, conn);
    }

    /// Drain the socket until it would block (or EOF). Level-triggered
    /// epoll re-reports anything a short read left behind, but reading
    /// the whole burst now is what feeds cross-connection group
    /// commit: every readable connection's mutations hit the shard
    /// queues before any of them waits for an ack.
    fn read_socket(&mut self, conn: &mut Conn) {
        let mut buf = [0u8; READ_CHUNK];
        loop {
            match conn.socket.read(&mut buf) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&buf[..n]);
                    conn.last_read = Instant::now();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
    }

    /// Parse and dispatch bursts until the connection blocks on
    /// something: acks (deferred burst), backpressure (unflushed
    /// replies), or input (no complete line left).
    fn drive(&mut self, conn: &mut Conn) {
        loop {
            if conn.closing || conn.dead || conn.awaiting.is_some() || !conn.out.is_empty() {
                break;
            }
            let (lines, bad_utf8) = split_burst(&mut conn.rbuf, conn.eof);
            if lines.is_empty() && !bad_utf8 {
                if conn.eof {
                    conn.closing = true;
                }
                break;
            }
            self.dispatch(conn, lines, bad_utf8);
            self.flush(conn);
        }
        self.flush(conn);
    }

    /// Drive one burst through the middleware chain. Mirrors the
    /// threaded plane's parse/dispatch/emit walk line for line — the
    /// only difference is that slots whose acks were deferred become
    /// `Emit::Pending` placeholders instead of blocking here.
    fn dispatch(&mut self, conn: &mut Conn, lines: Vec<String>, bad_utf8: bool) {
        /// What one request line turned into (parse errors keep their
        /// positional slot).
        enum LineSlot {
            Cmd,
            Err(String),
        }
        let mut requests: Vec<Request> = Vec::new();
        let mut line_slots: Vec<LineSlot> = Vec::new();
        for raw in &lines {
            let text = raw.trim_end_matches('\n');
            // Blank lines are keepalives: no command, no error, no
            // token — skip before any accounting.
            if text.trim().is_empty() {
                continue;
            }
            self.stats.note_command();
            match Command::parse(text) {
                Ok(cmd) => {
                    let quit = matches!(cmd, Command::Quit);
                    requests.push(Request::new(cmd));
                    line_slots.push(LineSlot::Cmd);
                    if quit {
                        // Input after QUIT is discarded; the session is
                        // closing anyway.
                        conn.rbuf.clear();
                        break;
                    }
                }
                Err(e) => line_slots.push(LineSlot::Err(e.0)),
            }
        }
        let responses = match requests.len() {
            0 => Vec::new(),
            // Singletons keep the unamortized path (and its per-command
            // metrics); nothing to group-commit in a burst of one.
            1 => vec![conn.chain.call_one(requests.pop().expect("one request"))],
            _ if self.tuning.batch => {
                // Arm the deferral for exactly this call: the innermost
                // service skips its final barrier and parks unresolved
                // slots in the cell instead.
                conn.defer.arm();
                let responses = conn.chain.call_batch(requests);
                conn.defer.disarm();
                responses
            }
            // --no-batch: the per-command A/B path, one call per line.
            _ => requests
                .into_iter()
                .map(|req| conn.chain.call_one(req))
                .collect(),
        };
        let (pending, received) = conn.defer.take_output();
        let mut pending = pending.into_iter();
        let mut responses = responses.into_iter();
        let mut emits: Vec<Emit> = Vec::with_capacity(line_slots.len());
        let mut closing = false;
        for slot in line_slots {
            let (reply, close) = match slot {
                LineSlot::Cmd => {
                    let resp = responses.next().expect("one response per command");
                    (resp.reply, resp.close)
                }
                LineSlot::Err(e) => (Reply::Error(e), false),
            };
            if crate::server::is_pending_marker(&reply) {
                emits.push(Emit::Pending(
                    pending.next().expect("a deferred slot per marker"),
                ));
            } else {
                if matches!(reply, Reply::Error(_)) {
                    self.stats.note_error();
                }
                let mut rendered = String::new();
                reply.render(&mut rendered);
                emits.push(Emit::Ready(rendered));
            }
            if close {
                closing = true;
                break;
            }
        }
        if bad_utf8 && !closing {
            // Mirror the threaded plane's error arms, positioned after
            // the burst's replies: non-UTF-8 input gets its structured
            // error, and the byte stream is unrecoverable — hang up.
            self.stats.note_error();
            let mut rendered = String::new();
            Reply::Error("protocol requires UTF-8 input".into()).render(&mut rendered);
            emits.push(Emit::Ready(rendered));
            closing = true;
        }
        if emits.iter().any(|e| matches!(e, Emit::Pending(_))) {
            conn.awaiting = Some(Awaiting {
                emits,
                received,
                deadline: Instant::now() + self.tuning.ack_timeout,
                closing,
            });
        } else {
            for emit in emits {
                if let Emit::Ready(rendered) = emit {
                    push_out(conn, rendered);
                }
            }
            conn.closing |= closing;
        }
    }

    /// Collect any acks that arrived for `conn`'s deferred burst; when
    /// the burst is complete (or its deadline lapsed), render the late
    /// replies into their slots. Returns whether the wait is over.
    fn try_complete(&mut self, conn: &mut Conn) -> bool {
        let Some(aw) = conn.awaiting.as_mut() else {
            return true;
        };
        while let Ok(ack) = conn.ack_rx.try_recv() {
            match ack {
                ShardAck::One(item) => {
                    aw.received.insert(item.seq, item.reply);
                }
                ShardAck::Many(items) => {
                    for item in items {
                        aw.received.insert(item.seq, item.reply);
                    }
                }
            }
        }
        let satisfied = aw.emits.iter().all(|emit| match emit {
            Emit::Ready(_) => true,
            Emit::Pending(PendingSlot::Single(seq)) => aw.received.contains_key(seq),
            Emit::Pending(PendingSlot::Fanout(seqs)) => {
                seqs.iter().all(|seq| aw.received.contains_key(seq))
            }
        });
        let timed_out = !satisfied && Instant::now() >= aw.deadline;
        if !satisfied && !timed_out {
            return false;
        }
        let aw = conn.awaiting.take().expect("awaiting checked above");
        self.resolve(conn, aw, timed_out);
        true
    }

    /// Render a completed (or deadline-poisoned) deferred burst into
    /// the out queue. On timeout the missing slots answer the same
    /// `ACK_TIMEOUT_MSG` the threaded plane's final barrier produces,
    /// and the session closes — a late ack could otherwise desync
    /// every later request/reply pairing.
    fn resolve(&mut self, conn: &mut Conn, aw: Awaiting, timed_out: bool) {
        let Awaiting {
            emits,
            mut received,
            closing,
            ..
        } = aw;
        for emit in emits {
            let rendered = match emit {
                Emit::Ready(rendered) => rendered,
                Emit::Pending(slot) => {
                    let reply = match slot {
                        PendingSlot::Single(seq) => received
                            .remove(&seq)
                            .unwrap_or_else(|| Reply::Error(ACK_TIMEOUT_MSG.into())),
                        PendingSlot::Fanout(seqs) => {
                            ExecService::fanout_reply(&mut received, &seqs, ACK_TIMEOUT_MSG)
                        }
                    };
                    if matches!(reply, Reply::Error(_)) {
                        self.stats.note_error();
                    }
                    let mut rendered = String::new();
                    reply.render(&mut rendered);
                    rendered
                }
            };
            push_out(conn, rendered);
        }
        conn.closing |= closing || timed_out || self.draining;
    }

    /// Check every connection with a deferred burst outstanding.
    fn sweep_awaiting(&mut self) {
        if self.awaiting.is_empty() {
            return;
        }
        let tokens: Vec<u64> = self.awaiting.iter().copied().collect();
        for token in tokens {
            let Some(mut conn) = self.conns.remove(&token) else {
                self.awaiting.remove(&token);
                continue;
            };
            if self.try_complete(&mut conn) {
                self.awaiting.remove(&token);
                self.drive(&mut conn);
            }
            self.settle(token, conn);
        }
    }

    /// Close connections idle past `--idle-timeout-ms` (nothing read,
    /// nothing owed): the classic slow fd leak of event-loop servers.
    fn sweep_idle(&mut self) {
        let Some(limit) = self.idle_timeout else {
            return;
        };
        if self.draining || self.last_idle_sweep.elapsed() < Duration::from_millis(50) {
            return;
        }
        self.last_idle_sweep = Instant::now();
        let stale: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                c.awaiting.is_none()
                    && c.out.is_empty()
                    && !c.closing
                    && c.last_read.elapsed() >= limit
            })
            .map(|(token, _)| *token)
            .collect();
        for token in stale {
            if let Some(conn) = self.conns.remove(&token) {
                self.stats.note_idle_closed();
                self.teardown(conn);
            }
        }
    }

    /// Flush the out queue with vectored writes: one syscall covers up
    /// to [`MAX_IOV`] reply chunks, resuming mid-chunk after a partial
    /// write.
    fn flush(&mut self, conn: &mut Conn) {
        while !conn.out.is_empty() && !conn.dead {
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(conn.out.len().min(MAX_IOV));
            for (i, chunk) in conn.out.iter().take(MAX_IOV).enumerate() {
                let from = if i == 0 { conn.out_off } else { 0 };
                slices.push(IoSlice::new(&chunk[from..]));
            }
            match (&conn.socket).write_vectored(&slices) {
                Ok(0) => {
                    conn.dead = true;
                }
                Ok(mut n) => {
                    while n > 0 {
                        let front = conn.out.front().expect("bytes written from a chunk");
                        let left = front.len() - conn.out_off;
                        if n >= left {
                            conn.out.pop_front();
                            conn.out_off = 0;
                            n -= left;
                        } else {
                            conn.out_off += n;
                            n = 0;
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.dead = true;
                }
            }
        }
    }

    /// Post-work bookkeeping for a connection pulled out of the map:
    /// tear it down if finished, otherwise reconcile its epoll
    /// interest and put it back.
    fn settle(&mut self, token: u64, mut conn: Conn) {
        if conn.dead || (conn.closing && conn.out.is_empty() && conn.awaiting.is_none()) {
            self.awaiting.remove(&token);
            self.teardown(conn);
            return;
        }
        let mut want = 0u32;
        if !conn.out.is_empty() {
            want |= EPOLLOUT;
        }
        // Reading stops while a burst awaits acks or backpressure is
        // owed (level-triggered epoll would spin otherwise, and new
        // bursts must not start ahead of this one's replies).
        if conn.awaiting.is_none()
            && conn.out.is_empty()
            && !conn.eof
            && !conn.closing
            && !self.draining
        {
            want |= EPOLLIN | EPOLLRDHUP;
        }
        if want != conn.interest {
            if self
                .epoll
                .modify(conn.socket.as_raw_fd(), token, want)
                .is_err()
            {
                self.awaiting.remove(&token);
                self.teardown(conn);
                return;
            }
            conn.interest = want;
        }
        if conn.awaiting.is_some() {
            self.awaiting.insert(token);
        }
        self.conns.insert(token, conn);
    }

    /// Deregister and drop: closing the socket returns the fd.
    fn teardown(&mut self, conn: Conn) {
        self.epoll.del(conn.socket.as_raw_fd());
        drop(conn);
    }
}

fn push_out(conn: &mut Conn, rendered: String) {
    if !rendered.is_empty() {
        conn.out.push_back(rendered.into_bytes());
    }
}

/// Extract the next burst from `rbuf`: up to [`MAX_BURST_LINES`]
/// complete lines (plus, at EOF, the final unterminated line — the
/// threaded plane's `read_line` serves that too). A line that is not
/// valid UTF-8 ends the burst with `bad_utf8` set; everything consumed
/// is removed from the buffer, and the caller discards the rest by
/// closing. Mirrors `BufReader::read_line` semantics byte for byte.
fn split_burst(rbuf: &mut Vec<u8>, eof: bool) -> (Vec<String>, bool) {
    let mut consumed = 0usize;
    let mut lines = Vec::new();
    let mut bad_utf8 = false;
    while lines.len() < MAX_BURST_LINES {
        let rest = &rbuf[consumed..];
        if rest.is_empty() {
            break;
        }
        let take = match rest.iter().position(|b| *b == b'\n') {
            Some(nl) => nl + 1,
            None if eof => rest.len(),
            None => break,
        };
        match std::str::from_utf8(&rest[..take]) {
            Ok(line) => lines.push(line.to_string()),
            Err(_) => {
                consumed += take;
                bad_utf8 = true;
                break;
            }
        }
        consumed += take;
    }
    rbuf.drain(..consumed);
    (lines, bad_utf8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waker_unblocks_epoll_and_drains() {
        let epoll = Epoll::new().expect("epoll");
        let waker = LoopWaker::new().expect("eventfd");
        epoll
            .add(waker.fd(), WAKER_TOKEN, EPOLLIN)
            .expect("register");
        let mut events = [sys::EpollEvent { events: 0, data: 0 }; 4];
        // Nothing pending: a short wait returns empty.
        assert_eq!(epoll.wait(&mut events, Duration::from_millis(0)), 0);
        waker.wake();
        let n = epoll.wait(&mut events, Duration::from_millis(1000));
        assert_eq!(n, 1);
        let token = events[0].data;
        assert_eq!(token, WAKER_TOKEN);
        waker.drain();
        // Drained: level-triggered epoll stops reporting it.
        assert_eq!(epoll.wait(&mut events, Duration::from_millis(0)), 0);
    }

    #[test]
    fn split_burst_takes_complete_lines_only() {
        let mut buf = b"GET a\nSET b 1\npartial".to_vec();
        let (lines, bad) = split_burst(&mut buf, false);
        assert_eq!(lines, vec!["GET a\n".to_string(), "SET b 1\n".to_string()]);
        assert!(!bad);
        assert_eq!(buf, b"partial");
    }

    #[test]
    fn split_burst_serves_unterminated_line_at_eof() {
        let mut buf = b"PING".to_vec();
        let (lines, bad) = split_burst(&mut buf, true);
        assert_eq!(lines, vec!["PING".to_string()]);
        assert!(!bad);
        assert!(buf.is_empty());
    }

    #[test]
    fn split_burst_flags_non_utf8_and_keeps_prior_lines() {
        let mut buf = b"PING\n\xff\xfe garbage\nPING\n".to_vec();
        let (lines, bad) = split_burst(&mut buf, false);
        assert_eq!(lines, vec!["PING\n".to_string()]);
        assert!(bad);
        // The poisoned line is consumed; the tail stays (discarded by
        // the caller when it hangs up).
        assert_eq!(buf, b"PING\n");
    }

    #[test]
    fn split_burst_respects_burst_cap() {
        let mut buf = Vec::new();
        for _ in 0..(MAX_BURST_LINES + 10) {
            buf.extend_from_slice(b"PING\n");
        }
        let (lines, bad) = split_burst(&mut buf, false);
        assert_eq!(lines.len(), MAX_BURST_LINES);
        assert!(!bad);
        assert_eq!(buf.len(), 10 * 5);
    }
}
