//! Property-based tests of the Java call-site scanner: for any generated
//! snippet shape, the scanner recovers exactly the planted facts.

use dego_corpus::model::{TrackedClass, TRACKED_CLASSES};
use dego_corpus::scanner::scan_source;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-zA-Z0-9_]{0,8}".prop_map(|s| s)
}

fn tracked_class() -> impl Strategy<Value = TrackedClass> {
    (0usize..TRACKED_CLASSES.len()).prop_map(|i| TRACKED_CLASSES[i])
}

fn declaration_line(class: TrackedClass, var: &str) -> String {
    if class.is_generic() {
        format!(
            "    private final {t}<String, Long> {var} = new {t}<>();\n",
            t = class.type_name()
        )
    } else {
        format!(
            "    private final {t} {var} = new {t}();\n",
            t = class.type_name()
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A planted declaration + N calls (alternating used/unused) is
    /// recovered exactly: right class, right method, right return-use.
    #[test]
    fn scanner_recovers_planted_call_sites(
        class in tracked_class(),
        var in ident(),
        methods in proptest::collection::vec("[a-z][a-zA-Z]{2,12}", 1..10),
    ) {
        let mut src = String::from("public class Planted {\n");
        src.push_str(&declaration_line(class, &var));
        src.push_str("    void m() {\n");
        for (i, m) in methods.iter().enumerate() {
            if i % 2 == 0 {
                src.push_str(&format!("        {var}.{m}(key);\n"));
            } else {
                src.push_str(&format!("        long r{i} = {var}.{m}(key);\n"));
            }
        }
        src.push_str("    }\n}\n");

        let result = scan_source(&src);
        prop_assert_eq!(result.declarations.len(), 1);
        prop_assert_eq!(result.declarations[0].class, class);
        prop_assert_eq!(&result.declarations[0].var, &var);
        prop_assert_eq!(result.calls.len(), methods.len());
        for (i, call) in result.calls.iter().enumerate() {
            prop_assert_eq!(&call.method, &methods[i]);
            prop_assert_eq!(call.return_used, i % 2 == 1, "call {}", i);
            prop_assert_eq!(call.class, class);
            prop_assert_eq!(call.enclosing_class.as_deref(), Some("Planted"));
        }
    }

    /// Calls on untracked receivers never leak into the result, whatever
    /// the identifiers look like.
    #[test]
    fn untracked_receivers_are_ignored(
        var in ident(),
        method in "[a-z][a-zA-Z]{2,8}",
    ) {
        let src = format!(
            "public class X {{\n    List<Long> {var} = new ArrayList<>();\n    void m() {{ {var}.{method}(1); }}\n}}\n"
        );
        let result = scan_source(&src);
        prop_assert!(result.declarations.is_empty());
        prop_assert!(result.calls.is_empty());
    }

    /// Commented-out lines contribute nothing.
    #[test]
    fn comments_are_skipped(class in tracked_class(), var in ident()) {
        let src = format!(
            "public class X {{\n{decl}    void m() {{\n        // {var}.get();\n    }}\n}}\n",
            decl = declaration_line(class, &var)
        );
        let result = scan_source(&src);
        prop_assert_eq!(result.declarations.len(), 1);
        prop_assert!(result.calls.is_empty());
    }

    /// Two declarations of different classes are attributed correctly
    /// even with interleaved calls.
    #[test]
    fn multiple_receivers_attributed_correctly(
        a in ident(),
        b in ident(),
    ) {
        prop_assume!(a != b);
        let src = format!(
            "public class X {{\n\
             {d1}{d2}    void m() {{\n\
             \x20       {a}.incrementAndGet();\n\
             \x20       {b}.put(k, v);\n\
             \x20       long x = {a}.get();\n\
             }}\n}}\n",
            d1 = declaration_line(TrackedClass::AtomicLong, &a),
            d2 = declaration_line(TrackedClass::ConcurrentHashMap, &b),
        );
        let result = scan_source(&src);
        prop_assert_eq!(result.declarations.len(), 2);
        prop_assert_eq!(result.calls.len(), 3);
        prop_assert_eq!(result.calls[0].class, TrackedClass::AtomicLong);
        prop_assert_eq!(result.calls[1].class, TrackedClass::ConcurrentHashMap);
        prop_assert!(result.calls[2].return_used);
    }
}
