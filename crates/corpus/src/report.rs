//! Aggregation of scanner output into the paper's Figures 1 and 5.

use crate::generator::Corpus;
use crate::model::{TrackedClass, TRACKED_CLASSES};
use crate::scanner::scan_source;
use std::collections::BTreeMap;

/// One method's share of a class's calls (a Figure 5 pie slice).
#[derive(Clone, Debug, PartialEq)]
pub struct MethodShare {
    /// Method name.
    pub method: String,
    /// Number of call sites.
    pub calls: usize,
    /// Share of the class's calls, in percent.
    pub percent: f64,
    /// Fraction of the calls that use the return value.
    pub return_used_rate: f64,
}

/// Aggregated usage of one tracked class.
#[derive(Clone, Debug, Default)]
pub struct ClassUsage {
    /// Total call sites.
    pub total_calls: usize,
    /// Per-method counts: `(calls, return-used calls)`.
    pub methods: BTreeMap<String, (usize, usize)>,
    /// Per enclosing Java class: method → return used at least once /
    /// never (the Fig. 1-right matrix).
    pub per_class: BTreeMap<String, BTreeMap<String, bool>>,
}

impl ClassUsage {
    /// Method shares sorted by popularity.
    pub fn shares(&self) -> Vec<MethodShare> {
        let mut out: Vec<MethodShare> = self
            .methods
            .iter()
            .map(|(m, (calls, used))| MethodShare {
                method: m.clone(),
                calls: *calls,
                percent: if self.total_calls == 0 {
                    0.0
                } else {
                    *calls as f64 * 100.0 / self.total_calls as f64
                },
                return_used_rate: if *calls == 0 {
                    0.0
                } else {
                    *used as f64 / *calls as f64
                },
            })
            .collect();
        out.sort_by(|a, b| b.calls.cmp(&a.calls).then(a.method.cmp(&b.method)));
        out
    }

    /// Share of calls covered by the `k` most popular methods.
    pub fn top_k_share(&self, k: usize) -> f64 {
        self.shares().iter().take(k).map(|s| s.percent).sum()
    }
}

/// The whole corpus report.
#[derive(Clone, Debug, Default)]
pub struct CorpusReport {
    /// Aggregate usage per tracked class.
    pub usage: BTreeMap<&'static str, ClassUsage>,
    /// Per-project AtomicLong method mix (Fig. 1 left):
    /// project → method → call count.
    pub atomic_long_by_project: BTreeMap<String, BTreeMap<String, usize>>,
    /// Total files scanned / files using at least one tracked object.
    pub files_total: usize,
    /// Files using at least one tracked object.
    pub files_with_juc: usize,
}

impl CorpusReport {
    /// Build the report by scanning every file of the corpus.
    pub fn build(corpus: &Corpus) -> Self {
        let mut report = CorpusReport::default();
        for class in TRACKED_CLASSES {
            report
                .usage
                .insert(class.type_name(), ClassUsage::default());
        }
        for project in &corpus.projects {
            let by_project = report
                .atomic_long_by_project
                .entry(project.name.clone())
                .or_default();
            for file in &project.files {
                report.files_total += 1;
                let scan = scan_source(&file.source);
                if !scan.declarations.is_empty() {
                    report.files_with_juc += 1;
                }
                for call in &scan.calls {
                    let usage = report
                        .usage
                        .get_mut(call.class.type_name())
                        .expect("all classes pre-registered");
                    usage.total_calls += 1;
                    let entry = usage.methods.entry(call.method.clone()).or_default();
                    entry.0 += 1;
                    if call.return_used {
                        entry.1 += 1;
                    }
                    if let Some(cls) = &call.enclosing_class {
                        let row = usage.per_class.entry(cls.clone()).or_default();
                        let used = row.entry(call.method.clone()).or_insert(false);
                        *used |= call.return_used;
                    }
                    if call.class == TrackedClass::AtomicLong {
                        *by_project.entry(call.method.clone()).or_default() += 1;
                    }
                }
            }
        }
        report
    }

    /// Usage of one class.
    pub fn class(&self, class: TrackedClass) -> &ClassUsage {
        &self.usage[class.type_name()]
    }

    /// Fraction of files touching a tracked object.
    pub fn juc_file_fraction(&self) -> f64 {
        if self.files_total == 0 {
            0.0
        } else {
            self.files_with_juc as f64 / self.files_total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_corpus, CorpusConfig};

    fn report() -> CorpusReport {
        let corpus = generate_corpus(&CorpusConfig {
            projects: 25,
            files_per_project: 16,
            sites_per_object: 20,
            seed: 99,
        });
        CorpusReport::build(&corpus)
    }

    #[test]
    fn every_tracked_class_sees_calls() {
        let r = report();
        for class in TRACKED_CLASSES {
            assert!(
                r.class(class).total_calls > 100,
                "{} undersampled",
                class.type_name()
            );
        }
    }

    #[test]
    fn popular_methods_lead_the_shares() {
        let r = report();
        for class in TRACKED_CLASSES {
            let shares = r.class(class).shares();
            let top: Vec<&str> = shares.iter().take(5).map(|s| s.method.as_str()).collect();
            let expected = class.figure5_top3();
            // The calibrated #1 method must appear among the recovered
            // top-5 (per-project noise can reorder the tail).
            assert!(
                top.contains(&expected[0].0),
                "{}: {:?} missing {}",
                class.type_name(),
                top,
                expected[0].0
            );
        }
    }

    #[test]
    fn top3_covers_a_majority_like_figure5() {
        let r = report();
        // Paper: top-3 cover 57.5–72.3 % depending on the class. The
        // synthetic corpus must land in the same ballpark.
        for class in TRACKED_CLASSES {
            let share = r.class(class).top_k_share(3);
            assert!(
                (45.0..90.0).contains(&share),
                "{}: top-3 share {share}",
                class.type_name()
            );
        }
    }

    #[test]
    fn reads_use_returns_blind_writes_do_not() {
        let r = report();
        let al = r.class(TrackedClass::AtomicLong);
        let shares = al.shares();
        let rate = |m: &str| {
            shares
                .iter()
                .find(|s| s.method == m)
                .map(|s| s.return_used_rate)
        };
        if let Some(get) = rate("get") {
            assert!(get > 0.95, "get return-use {get}");
        }
        if let Some(set) = rate("set") {
            assert!(set < 0.05, "set return-use {set}");
        }
    }

    #[test]
    fn per_project_mixes_differ() {
        let r = report();
        // Different projects use different method subsets (Fig. 1 left).
        let projects: Vec<&BTreeMap<String, usize>> = r.atomic_long_by_project.values().collect();
        let distinct: std::collections::BTreeSet<Vec<&String>> = projects
            .iter()
            .map(|m| m.keys().collect::<Vec<_>>())
            .collect();
        assert!(distinct.len() > 1, "all projects share one method set");
    }

    #[test]
    fn file_fraction_is_about_half() {
        let r = report();
        let f = r.juc_file_fraction();
        assert!((0.35..0.62).contains(&f), "fraction {f}");
    }

    #[test]
    fn per_class_matrix_has_rows() {
        let r = report();
        let chm = r.class(TrackedClass::ConcurrentHashMap);
        assert!(!chm.per_class.is_empty());
        // Every row mentions at least one method.
        assert!(chm.per_class.values().all(|row| !row.is_empty()));
    }
}
