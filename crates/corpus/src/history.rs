//! Figure 4: declaration history and most-modified-file analysis.

use crate::generator::Corpus;
use crate::scanner::scan_source;

/// One year of Fig. 4 (top): mean declarations and mean proportion.
#[derive(Clone, Copy, Debug)]
pub struct YearRow {
    /// Calendar year.
    pub year: u32,
    /// Mean `ConcurrentHashMap` declarations per project.
    pub mean_declarations: f64,
    /// Mean proportion of all declarations (percent).
    pub mean_proportion_pct: f64,
}

/// Compute the Fig. 4 (top) series.
pub fn declaration_history(corpus: &Corpus) -> Vec<YearRow> {
    let mut rows = Vec::new();
    for year in 2015..=2024u32 {
        let mut decls = Vec::new();
        let mut props = Vec::new();
        for p in &corpus.projects {
            for y in &p.history {
                if y.year == year {
                    decls.push(y.chm_declarations as f64);
                    props.push(y.chm_declarations as f64 / y.total_declarations as f64);
                }
            }
        }
        if decls.is_empty() {
            continue;
        }
        rows.push(YearRow {
            year,
            mean_declarations: decls.iter().sum::<f64>() / decls.len() as f64,
            mean_proportion_pct: 100.0 * props.iter().sum::<f64>() / props.len() as f64,
        });
    }
    rows
}

/// One file of the Fig. 4 (bottom) heat map.
#[derive(Clone, Debug)]
pub struct FileCell {
    /// Project name.
    pub project: String,
    /// File rank among the project's most-modified files (0 = most).
    pub rank: usize,
    /// Whether the file uses a `java.util.concurrent` object.
    pub uses_juc: bool,
    /// Modification (commit) count — the shading intensity.
    pub modifications: u32,
}

/// Compute the Fig. 4 (bottom) matrix: each project's files sorted by
/// modification count, flagged by actual scanning.
pub fn most_modified_matrix(corpus: &Corpus) -> Vec<FileCell> {
    let mut cells = Vec::new();
    for p in &corpus.projects {
        let mut files: Vec<_> = p.files.iter().collect();
        files.sort_by_key(|f| std::cmp::Reverse(f.modifications));
        for (rank, f) in files.iter().enumerate() {
            cells.push(FileCell {
                project: p.name.clone(),
                rank,
                uses_juc: !scan_source(&f.source).declarations.is_empty(),
                modifications: f.modifications,
            });
        }
    }
    cells
}

/// Fraction of most-modified files using JUC ("nearly half", §6.1).
pub fn juc_fraction(cells: &[FileCell]) -> f64 {
    if cells.is_empty() {
        return 0.0;
    }
    cells.iter().filter(|c| c.uses_juc).count() as f64 / cells.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_corpus, CorpusConfig};

    fn corpus() -> Corpus {
        generate_corpus(&CorpusConfig {
            projects: 30,
            files_per_project: 20,
            sites_per_object: 8,
            seed: 21,
        })
    }

    #[test]
    fn history_matches_published_anchors() {
        let rows = declaration_history(&corpus());
        assert_eq!(rows.len(), 10);
        let at = |year: u32| rows.iter().find(|r| r.year == year).unwrap();
        // ±25 % of the paper's means (we average 30 noisy projects).
        assert!((at(2015).mean_declarations - 46.6).abs() < 12.0);
        assert!((at(2024).mean_declarations - 116.7).abs() < 30.0);
        // Proportion stays under 1 %.
        assert!(rows.iter().all(|r| r.mean_proportion_pct < 1.0));
    }

    #[test]
    fn matrix_is_sorted_by_modifications() {
        let cells = most_modified_matrix(&corpus());
        for pair in cells.windows(2) {
            if pair[0].project == pair[1].project {
                assert!(pair[0].modifications >= pair[1].modifications);
                assert_eq!(pair[0].rank + 1, pair[1].rank);
            }
        }
    }

    #[test]
    fn about_half_of_hot_files_use_juc() {
        let cells = most_modified_matrix(&corpus());
        let f = juc_fraction(&cells);
        assert!((0.35..0.62).contains(&f), "fraction {f}");
    }
}
