//! Tracked classes and the calibrated usage distributions of §6.1.
//!
//! The popularity weights come straight from Figure 5 (top-method shares
//! plus an "others" bucket spread across representative JUC methods) and
//! the return-use rates from Figure 1 (right): `get`-style reads always
//! use their result, void mutators never do, and the RMW family is
//! frequently called for effect only ("in many cases, e.g. for
//! `incrementAndGet` and `addAndGet`, these calls do not use the return
//! values").

/// The four `java.util.concurrent` data types the study tracks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TrackedClass {
    /// `java.util.concurrent.atomic.AtomicLong`.
    AtomicLong,
    /// `java.util.concurrent.ConcurrentHashMap`.
    ConcurrentHashMap,
    /// `java.util.concurrent.ConcurrentSkipListSet`.
    ConcurrentSkipListSet,
    /// `java.util.concurrent.ConcurrentLinkedQueue`.
    ConcurrentLinkedQueue,
}

/// All tracked classes, in the paper's reporting order.
pub const TRACKED_CLASSES: [TrackedClass; 4] = [
    TrackedClass::ConcurrentHashMap,
    TrackedClass::ConcurrentSkipListSet,
    TrackedClass::ConcurrentLinkedQueue,
    TrackedClass::AtomicLong,
];

impl TrackedClass {
    /// The Java simple type name (what a declaration mentions).
    pub fn type_name(self) -> &'static str {
        match self {
            TrackedClass::AtomicLong => "AtomicLong",
            TrackedClass::ConcurrentHashMap => "ConcurrentHashMap",
            TrackedClass::ConcurrentSkipListSet => "ConcurrentSkipListSet",
            TrackedClass::ConcurrentLinkedQueue => "ConcurrentLinkedQueue",
        }
    }

    /// Parse a simple type name.
    pub fn from_type_name(name: &str) -> Option<Self> {
        match name {
            "AtomicLong" => Some(TrackedClass::AtomicLong),
            "ConcurrentHashMap" => Some(TrackedClass::ConcurrentHashMap),
            "ConcurrentSkipListSet" => Some(TrackedClass::ConcurrentSkipListSet),
            "ConcurrentLinkedQueue" => Some(TrackedClass::ConcurrentLinkedQueue),
            _ => None,
        }
    }

    /// Whether declarations of this type carry generic parameters.
    pub fn is_generic(self) -> bool {
        !matches!(self, TrackedClass::AtomicLong)
    }

    /// How many methods the paper counts on the full interface
    /// (`others (N)` in Figure 5 plus the three reported ones).
    pub fn interface_size(self) -> usize {
        match self {
            TrackedClass::AtomicLong => 134,
            TrackedClass::ConcurrentHashMap => 92,
            TrackedClass::ConcurrentSkipListSet => 18,
            TrackedClass::ConcurrentLinkedQueue => 27,
        }
    }

    /// The method catalogue with calibrated popularity weights (summing
    /// to ~100) and the probability that a call site *uses* the returned
    /// value.
    pub fn methods(self) -> &'static [MethodProfile] {
        match self {
            TrackedClass::AtomicLong => ATOMIC_LONG_METHODS,
            TrackedClass::ConcurrentHashMap => CHM_METHODS,
            TrackedClass::ConcurrentSkipListSet => CSLS_METHODS,
            TrackedClass::ConcurrentLinkedQueue => CLQ_METHODS,
        }
    }

    /// The top-3 shares Figure 5 reports, for validation.
    pub fn figure5_top3(self) -> [(&'static str, f64); 3] {
        match self {
            TrackedClass::ConcurrentHashMap => [("get", 26.6), ("put", 17.8), ("remove", 13.1)],
            TrackedClass::ConcurrentSkipListSet => {
                [("add", 31.9), ("remove", 20.8), ("contains", 19.6)]
            }
            TrackedClass::ConcurrentLinkedQueue => [("add", 28.8), ("size", 26.1), ("poll", 11.4)],
            TrackedClass::AtomicLong => [("get", 36.9), ("incrementAndGet", 15.5), ("set", 14.1)],
        }
    }
}

/// One method's calibrated profile.
#[derive(Clone, Copy, Debug)]
pub struct MethodProfile {
    /// Method name.
    pub name: &'static str,
    /// Popularity weight (Figure 5 share; "others" spread out).
    pub weight: f64,
    /// Probability that the call's return value is used (Figure 1 right).
    pub return_used: f64,
    /// Number of arguments the generator should emit.
    pub arity: usize,
    /// Whether the method returns `void` in Java (return never usable).
    pub is_void: bool,
}

const fn m(
    name: &'static str,
    weight: f64,
    return_used: f64,
    arity: usize,
    is_void: bool,
) -> MethodProfile {
    MethodProfile {
        name,
        weight,
        return_used,
        arity,
        is_void,
    }
}

/// `AtomicLong`: top-3 = get 36.9 %, incrementAndGet 15.5 %, set 14.1 %;
/// others (131 methods) share 33.5 %.
static ATOMIC_LONG_METHODS: &[MethodProfile] = &[
    m("get", 36.9, 1.0, 0, false),
    m("incrementAndGet", 15.5, 0.35, 0, false),
    m("set", 14.1, 0.0, 1, true),
    m("getAndIncrement", 6.0, 0.85, 0, false),
    m("addAndGet", 5.5, 0.30, 1, false),
    m("compareAndSet", 5.0, 0.75, 2, false),
    m("getAndAdd", 4.0, 0.80, 1, false),
    m("getAndSet", 3.5, 0.70, 1, false),
    m("decrementAndGet", 3.0, 0.40, 0, false),
    m("updateAndGet", 2.5, 0.45, 1, false),
    m("getAndUpdate", 1.5, 0.60, 1, false),
    m("accumulateAndGet", 1.0, 0.50, 2, false),
    m("longValue", 0.8, 1.0, 0, false),
    m("intValue", 0.4, 1.0, 0, false),
    m("doubleValue", 0.3, 1.0, 0, false),
];

/// `ConcurrentHashMap`: top-3 = get 26.6 %, put 17.8 %, remove 13.1 %;
/// others (89 methods) share 42.5 %.
static CHM_METHODS: &[MethodProfile] = &[
    m("get", 26.6, 1.0, 1, false),
    m("put", 17.8, 0.15, 2, false),
    m("remove", 13.1, 0.25, 1, false),
    m("containsKey", 8.0, 1.0, 1, false),
    m("putIfAbsent", 6.5, 0.55, 2, false),
    m("computeIfAbsent", 6.0, 0.80, 2, false),
    m("size", 5.5, 1.0, 0, false),
    m("isEmpty", 3.5, 1.0, 0, false),
    m("keySet", 3.0, 0.95, 0, false),
    m("entrySet", 2.5, 0.95, 0, false),
    m("values", 2.2, 0.95, 0, false),
    m("clear", 1.8, 0.0, 0, true),
    m("forEach", 1.5, 0.0, 1, true),
    m("getOrDefault", 1.0, 1.0, 2, false),
    m("merge", 0.6, 0.40, 2, false),
    m("compute", 0.4, 0.45, 2, false),
];

/// `ConcurrentSkipListSet`: top-3 = add 31.9 %, remove 20.8 %,
/// contains 19.6 %; others (15 methods) share 27.7 %.
static CSLS_METHODS: &[MethodProfile] = &[
    m("add", 31.9, 0.20, 1, false),
    m("remove", 20.8, 0.30, 1, false),
    m("contains", 19.6, 1.0, 1, false),
    m("size", 7.0, 1.0, 0, false),
    m("isEmpty", 5.5, 1.0, 0, false),
    m("first", 4.0, 0.95, 0, false),
    m("last", 3.0, 0.95, 0, false),
    m("iterator", 2.7, 0.95, 0, false),
    m("clear", 2.0, 0.0, 0, true),
    m("floor", 1.5, 0.90, 1, false),
    m("ceiling", 1.2, 0.90, 1, false),
    m("pollFirst", 0.8, 0.70, 0, false),
];

/// `ConcurrentLinkedQueue`: top-3 = add 28.8 %, size 26.1 %, poll 11.4 %;
/// others (24 methods) share 33.7 %.
static CLQ_METHODS: &[MethodProfile] = &[
    m("add", 28.8, 0.10, 1, false),
    m("size", 26.1, 1.0, 0, false),
    m("poll", 11.4, 0.90, 0, false),
    m("offer", 8.0, 0.15, 1, false),
    m("peek", 6.5, 0.95, 0, false),
    m("isEmpty", 6.0, 1.0, 0, false),
    m("contains", 4.0, 1.0, 1, false),
    m("iterator", 3.2, 0.95, 0, false),
    m("clear", 2.5, 0.0, 0, true),
    m("remove", 2.0, 0.45, 1, false),
    m("element", 1.5, 0.90, 0, false),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_about_100() {
        for class in TRACKED_CLASSES {
            let total: f64 = class.methods().iter().map(|m| m.weight).sum();
            assert!(
                (total - 100.0).abs() < 0.5,
                "{}: weights sum to {total}",
                class.type_name()
            );
        }
    }

    #[test]
    fn top3_matches_catalogue_heads() {
        for class in TRACKED_CLASSES {
            let methods = class.methods();
            for (i, (name, share)) in class.figure5_top3().iter().enumerate() {
                assert_eq!(methods[i].name, *name);
                assert!((methods[i].weight - share).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn void_methods_never_use_returns() {
        for class in TRACKED_CLASSES {
            for m in class.methods() {
                if m.is_void {
                    assert_eq!(m.return_used, 0.0, "{}.{}", class.type_name(), m.name);
                }
            }
        }
    }

    #[test]
    fn type_name_roundtrip() {
        for class in TRACKED_CLASSES {
            assert_eq!(TrackedClass::from_type_name(class.type_name()), Some(class));
        }
        assert_eq!(TrackedClass::from_type_name("HashMap"), None);
    }

    #[test]
    fn interface_sizes_match_paper() {
        // 3 + |others| from Figure 5: 92 = 3+89, 18 = 3+15, 27 = 3+24,
        // 134 = 3+131.
        assert_eq!(TrackedClass::ConcurrentHashMap.interface_size(), 92);
        assert_eq!(TrackedClass::ConcurrentSkipListSet.interface_size(), 18);
        assert_eq!(TrackedClass::ConcurrentLinkedQueue.interface_size(), 27);
        assert_eq!(TrackedClass::AtomicLong.interface_size(), 134);
    }
}
