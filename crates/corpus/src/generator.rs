//! Synthetic corpus generation, calibrated to §6.1's published numbers.
//!
//! Each project gets its own *slice* of an object's interface: a handful
//! of methods drawn by perturbed popularity ("projects only use a handful
//! of the available methods, some much more frequently than others"),
//! then Java source files are emitted whose call sites follow that
//! per-project distribution and whose return-value usage follows the
//! per-method rates. The scanner recovers every reported statistic from
//! the emitted text — the calibration tables are never consulted by the
//! reporting path.

use crate::model::{MethodProfile, TrackedClass, TRACKED_CLASSES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Configuration for corpus generation.
#[derive(Clone, Debug)]
pub struct CorpusConfig {
    /// Number of projects (the paper mines 50).
    pub projects: usize,
    /// Java files per project (the paper inspects the 20 most modified).
    pub files_per_project: usize,
    /// Mean call sites per tracked object per file.
    pub sites_per_object: usize,
    /// RNG seed — the corpus is fully deterministic given the seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            projects: 50,
            files_per_project: 20,
            sites_per_object: 18,
            seed: 0xDE60,
        }
    }
}

/// A generated Java file.
#[derive(Clone, Debug)]
pub struct JavaFile {
    /// Repository-relative path.
    pub path: String,
    /// Java source text.
    pub source: String,
    /// Commit count over the modelled decade (Fig. 4 bottom's shading).
    pub modifications: u32,
}

/// Yearly declaration statistics (Fig. 4 top).
#[derive(Clone, Copy, Debug)]
pub struct YearStats {
    /// Calendar year.
    pub year: u32,
    /// `ConcurrentHashMap` declarations in the project that year.
    pub chm_declarations: usize,
    /// All declarations in the project that year.
    pub total_declarations: usize,
}

/// A generated project.
#[derive(Clone, Debug)]
pub struct Project {
    /// Project name (the first three echo Fig. 1's Ignite / Cassandra /
    /// Hadoop).
    pub name: String,
    /// The project's files (its "20 most modified").
    pub files: Vec<JavaFile>,
    /// Ten-year declaration history.
    pub history: Vec<YearStats>,
}

/// A generated corpus.
#[derive(Clone, Debug)]
pub struct Corpus {
    /// All projects.
    pub projects: Vec<Project>,
}

/// A project's private view of one class's interface: the methods it
/// uses and their (renormalized) weights.
fn project_slice(
    rng: &mut StdRng,
    methods: &'static [MethodProfile],
) -> Vec<(&'static MethodProfile, f64)> {
    // Keep between 4 and 11 methods, biased toward the popular ones.
    let keep = rng.gen_range(4..=11.min(methods.len()));
    let mut perturbed: Vec<(&MethodProfile, f64)> = methods
        .iter()
        .map(|m| (m, m.weight * rng.gen_range(0.4..1.6)))
        .collect();
    perturbed.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));
    perturbed.truncate(keep);
    let total: f64 = perturbed.iter().map(|(_, w)| w).sum();
    perturbed.into_iter().map(|(m, w)| (m, w / total)).collect()
}

fn pick<'a>(rng: &mut StdRng, slice: &[(&'a MethodProfile, f64)]) -> &'a MethodProfile {
    let mut x: f64 = rng.gen_range(0.0..1.0);
    for (m, w) in slice {
        if x < *w {
            return m;
        }
        x -= w;
    }
    slice.last().expect("non-empty slice").0
}

fn args_for(rng: &mut StdRng, m: &MethodProfile, class: TrackedClass) -> String {
    let arg = |rng: &mut StdRng| -> String {
        match class {
            TrackedClass::AtomicLong => format!("{}L", rng.gen_range(0..100)),
            _ => format!("key{}", rng.gen_range(0..50)),
        }
    };
    (0..m.arity)
        .map(|_| arg(rng))
        .collect::<Vec<_>>()
        .join(", ")
}

fn emit_file(
    rng: &mut StdRng,
    project_idx: usize,
    file_idx: usize,
    slices: &HashMap<TrackedClass, Vec<(&'static MethodProfile, f64)>>,
    sites_per_object: usize,
    uses_juc: bool,
) -> JavaFile {
    let class_name = format!("Service{project_idx}_{file_idx}");
    let mut src = String::new();
    src.push_str(&format!("package org.apache.p{project_idx};\n\n"));
    src.push_str(&format!("public class {class_name} {{\n"));

    let mut vars: Vec<(String, TrackedClass)> = Vec::new();
    if uses_juc {
        // Declare one to three tracked objects.
        let mut classes: Vec<TrackedClass> = TRACKED_CLASSES.to_vec();
        for i in (1..classes.len()).rev() {
            classes.swap(i, rng.gen_range(0..=i));
        }
        let n_objects = rng.gen_range(1..=3);
        for (oi, class) in classes.into_iter().take(n_objects).enumerate() {
            let var = format!("shared{oi}");
            let decl = match class {
                TrackedClass::AtomicLong => {
                    format!("    private final AtomicLong {var} = new AtomicLong();\n")
                }
                TrackedClass::ConcurrentHashMap => format!(
                    "    private final ConcurrentHashMap<String, Long> {var} = new ConcurrentHashMap<>();\n"
                ),
                TrackedClass::ConcurrentSkipListSet => format!(
                    "    private final ConcurrentSkipListSet<String> {var} = new ConcurrentSkipListSet<>();\n"
                ),
                TrackedClass::ConcurrentLinkedQueue => format!(
                    "    private final ConcurrentLinkedQueue<String> {var} = new ConcurrentLinkedQueue<>();\n"
                ),
            };
            src.push_str(&decl);
            vars.push((var, class));
        }
    }
    // A couple of untracked declarations (the scanner must skip them).
    src.push_str("    private final HashMap<String, String> local = new HashMap<>();\n");
    src.push_str("    private int plainCounter = 0;\n\n");

    for (method_no, (var, class)) in vars.iter().enumerate() {
        let slice = &slices[class];
        src.push_str(&format!(
            "    public void handle{method_no}(String key0) {{\n"
        ));
        let sites = rng.gen_range(sites_per_object / 2..=sites_per_object * 3 / 2);
        for s in 0..sites.max(1) {
            let m = pick(rng, slice);
            let args = args_for(rng, m, *class);
            let used = !m.is_void && rng.gen_bool(m.return_used.clamp(0.0, 1.0));
            let call = format!("{var}.{}({args})", m.name);
            let line = if used {
                match rng.gen_range(0..3) {
                    0 => format!("        var r{s} = {call};\n"),
                    1 => format!("        if ({call} != null) {{ plainCounter++; }}\n"),
                    _ => format!("        log({call});\n"),
                }
            } else {
                format!("        {call};\n")
            };
            src.push_str(&line);
        }
        src.push_str("    }\n\n");
    }
    src.push_str("    private void log(Object o) { }\n");
    src.push_str("}\n");

    JavaFile {
        path: format!("src/main/java/org/apache/p{project_idx}/{class_name}.java"),
        source: src,
        // Power-law-ish modification counts (most files change rarely,
        // a few change constantly).
        modifications: (20.0 / rng.gen_range(0.02..1.0f64)) as u32,
    }
}

fn project_history(rng: &mut StdRng) -> Vec<YearStats> {
    // Fig. 4 top: mean CHM declarations 46.6 (2015) → 116.7 (2024),
    // staying below 1 % of all declarations.
    let anchors = [
        (2015u32, 46.6f64),
        (2018, 77.7),
        (2021, 96.8),
        (2024, 116.7),
    ];
    let mut out = Vec::new();
    for year in 2015..=2024u32 {
        // Piecewise-linear interpolation between the published anchors.
        let mean = {
            let mut v = anchors[0].1;
            for w in anchors.windows(2) {
                let (y0, m0) = w[0];
                let (y1, m1) = w[1];
                if year >= y0 && year <= y1 {
                    let t = (year - y0) as f64 / (y1 - y0) as f64;
                    v = m0 + t * (m1 - m0);
                }
            }
            v
        };
        let chm = (mean * rng.gen_range(0.6f64..1.4)).round().max(1.0) as usize;
        // Total declarations keep the proportion in the 0.5–1 % band.
        let proportion = rng.gen_range(0.005..0.0095);
        let total = (chm as f64 / proportion) as usize;
        out.push(YearStats {
            year,
            chm_declarations: chm,
            total_declarations: total,
        });
    }
    out
}

/// Generate a corpus.
pub fn generate_corpus(config: &CorpusConfig) -> Corpus {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut projects = Vec::with_capacity(config.projects);
    for p in 0..config.projects {
        let name = match p {
            0 => "Ignite".to_string(),
            1 => "Cassandra".to_string(),
            2 => "Hadoop".to_string(),
            _ => format!("Project{p:02}"),
        };
        // The project's interface slices.
        let slices: HashMap<TrackedClass, Vec<(&'static MethodProfile, f64)>> = TRACKED_CLASSES
            .iter()
            .map(|&c| (c, project_slice(&mut rng, c.methods())))
            .collect();
        // "Nearly half of the most modified files involve JUC objects."
        let files = (0..config.files_per_project)
            .map(|f| {
                let uses_juc = rng.gen_bool(0.48);
                emit_file(&mut rng, p, f, &slices, config.sites_per_object, uses_juc)
            })
            .collect();
        projects.push(Project {
            name,
            files,
            history: project_history(&mut rng),
        });
    }
    Corpus { projects }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan_source;

    fn small() -> Corpus {
        generate_corpus(&CorpusConfig {
            projects: 6,
            files_per_project: 10,
            sites_per_object: 16,
            seed: 7,
        })
    }

    #[test]
    fn corpus_shape() {
        let c = small();
        assert_eq!(c.projects.len(), 6);
        assert_eq!(c.projects[0].name, "Ignite");
        assert_eq!(c.projects[1].name, "Cassandra");
        assert!(c.projects.iter().all(|p| p.files.len() == 10));
        assert!(c.projects.iter().all(|p| p.history.len() == 10));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.projects[3].files[2].source, b.projects[3].files[2].source);
    }

    #[test]
    fn generated_sources_scan_cleanly() {
        let c = small();
        let mut total_calls = 0;
        for p in &c.projects {
            for f in &p.files {
                let r = scan_source(&f.source);
                // Every call's receiver must have been declared.
                for call in &r.calls {
                    assert!(r.declarations.iter().any(|d| d.var == call.receiver));
                }
                total_calls += r.calls.len();
            }
        }
        assert!(total_calls > 500, "corpus too sparse: {total_calls}");
    }

    #[test]
    fn about_half_the_files_use_juc() {
        let c = generate_corpus(&CorpusConfig {
            projects: 20,
            files_per_project: 20,
            sites_per_object: 10,
            seed: 11,
        });
        let mut with = 0;
        let mut total = 0;
        for p in &c.projects {
            for f in &p.files {
                total += 1;
                if !scan_source(&f.source).declarations.is_empty() {
                    with += 1;
                }
            }
        }
        let frac = with as f64 / total as f64;
        assert!((0.38..0.58).contains(&frac), "JUC fraction {frac}");
    }

    #[test]
    fn history_proportion_stays_below_one_percent() {
        let c = small();
        for p in &c.projects {
            for y in &p.history {
                let prop = y.chm_declarations as f64 / y.total_declarations as f64;
                assert!(prop < 0.01, "{}: {} {prop}", p.name, y.year);
            }
        }
    }

    #[test]
    fn history_grows_over_the_decade() {
        let c = generate_corpus(&CorpusConfig {
            projects: 30,
            files_per_project: 2,
            sites_per_object: 4,
            seed: 3,
        });
        let mean = |year: u32| -> f64 {
            let xs: Vec<f64> = c
                .projects
                .iter()
                .flat_map(|p| p.history.iter())
                .filter(|y| y.year == year)
                .map(|y| y.chm_declarations as f64)
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(
            mean(2024) > mean(2015) * 1.8,
            "{} vs {}",
            mean(2024),
            mean(2015)
        );
    }
}
