//! A Java call-site scanner: the executable equivalent of the paper's
//! mining scripts (§6.1).
//!
//! The scanner works line by line over Java source text:
//!
//! * a **declaration** is recognized from `new <TrackedType>(…)` /
//!   `new <TrackedType><…>(…)`, binding the variable named before the
//!   `=` to the tracked class;
//! * a **call site** is `receiver.method(…)` where `receiver` was
//!   declared with a tracked class in the same file;
//! * the call's **return value is used** when the call expression is not
//!   a bare statement — i.e. something precedes it on the line
//!   (assignment, `return`, a surrounding condition or argument
//!   position).
//!
//! The same heuristics the paper's scripts apply; precise enough for
//! generated and for idiomatic hand-written Java.

use crate::model::TrackedClass;
use std::collections::HashMap;

/// A recognized declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Declaration {
    /// Variable name.
    pub var: String,
    /// The tracked class.
    pub class: TrackedClass,
    /// 1-based source line.
    pub line: usize,
    /// Enclosing Java class name, when known.
    pub enclosing_class: Option<String>,
}

/// A recognized call site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// Receiver variable name.
    pub receiver: String,
    /// The receiver's tracked class.
    pub class: TrackedClass,
    /// Method name.
    pub method: String,
    /// Whether the return value is used.
    pub return_used: bool,
    /// 1-based source line.
    pub line: usize,
    /// Enclosing Java class name, when known.
    pub enclosing_class: Option<String>,
}

/// Scanner output for one compilation unit.
#[derive(Clone, Debug, Default)]
pub struct ScanResult {
    /// Declarations found.
    pub declarations: Vec<Declaration>,
    /// Call sites found.
    pub calls: Vec<CallSite>,
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '$'
}

/// Extract the identifier ending right before byte offset `end`.
fn ident_before(line: &str, end: usize) -> Option<&str> {
    let bytes = line.as_bytes();
    let mut start = end;
    while start > 0 && is_ident_char(bytes[start - 1] as char) {
        start -= 1;
    }
    if start == end {
        None
    } else {
        Some(&line[start..end])
    }
}

/// Extract the identifier starting at byte offset `start`.
fn ident_at(line: &str, start: usize) -> Option<&str> {
    let end = line[start..]
        .find(|c: char| !is_ident_char(c))
        .map(|i| start + i)
        .unwrap_or(line.len());
    if end == start {
        None
    } else {
        Some(&line[start..end])
    }
}

/// Scan one Java source file.
pub fn scan_source(source: &str) -> ScanResult {
    let mut result = ScanResult::default();
    let mut vars: HashMap<String, TrackedClass> = HashMap::new();
    let mut enclosing: Option<String> = None;

    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_line_comment(raw_line);
        if line.trim().is_empty() {
            continue;
        }

        // Track the enclosing class: `class Name` / `public class Name`.
        if let Some(pos) = find_word(line, "class") {
            let after = pos + "class".len();
            if let Some(rest) = line.get(after..) {
                let trimmed = rest.trim_start();
                let off = after + (rest.len() - trimmed.len());
                if let Some(name) = ident_at(line, off) {
                    enclosing = Some(name.to_string());
                }
            }
        }

        // Declarations: `… <var> = new <Type>…(…)`.
        let mut search = 0;
        while let Some(rel) = line[search..].find("new ") {
            let at = search + rel + 4;
            search = at;
            let Some(type_name) = ident_at(line, skip_spaces(line, at)) else {
                continue;
            };
            let Some(class) = TrackedClass::from_type_name(type_name) else {
                continue;
            };
            // The variable name sits just before the `=` sign, left of
            // the `new` keyword.
            let Some(eq) = line[..at].rfind('=') else {
                continue;
            };
            let before_eq = line[..eq].trim_end();
            let Some(var) = ident_before(before_eq, before_eq.len()) else {
                continue;
            };
            vars.insert(var.to_string(), class);
            result.declarations.push(Declaration {
                var: var.to_string(),
                class,
                line: line_no,
                enclosing_class: enclosing.clone(),
            });
        }

        // Call sites: `receiver.method(`.
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b'.' {
                let Some(receiver) = ident_before(line, i) else {
                    i += 1;
                    continue;
                };
                let Some(&class) = vars.get(receiver) else {
                    i += 1;
                    continue;
                };
                let mstart = i + 1;
                let Some(method) = ident_at(line, mstart) else {
                    i += 1;
                    continue;
                };
                let after_method = mstart + method.len();
                if bytes.get(after_method) != Some(&b'(') {
                    i += 1;
                    continue;
                }
                // Return-use: anything significant before the receiver?
                let recv_start = i - receiver.len();
                let prefix = line[..recv_start].trim();
                let return_used = !prefix.is_empty();
                result.calls.push(CallSite {
                    receiver: receiver.to_string(),
                    class,
                    method: method.to_string(),
                    return_used,
                    line: line_no,
                    enclosing_class: enclosing.clone(),
                });
                i = after_method;
            } else {
                i += 1;
            }
        }
    }
    result
}

fn skip_spaces(line: &str, mut at: usize) -> usize {
    let bytes = line.as_bytes();
    while at < bytes.len() && (bytes[at] as char).is_whitespace() {
        at += 1;
    }
    at
}

fn strip_line_comment(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Find `word` in `line` at a word boundary.
fn find_word(line: &str, word: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = line[from..].find(word) {
        let pos = from + rel;
        let before_ok = pos == 0 || !is_ident_char(line.as_bytes()[pos - 1] as char);
        let after = pos + word.len();
        let after_ok = after >= line.len() || !is_ident_char(line.as_bytes()[after] as char);
        if before_ok && after_ok {
            return Some(pos);
        }
        from = pos + word.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const SNIPPET: &str = r#"
package org.example;

public class RequestTracker {
    private final AtomicLong hits = new AtomicLong();
    private final ConcurrentHashMap<String, Long> table = new ConcurrentHashMap<>();

    public long onRequest(String key) {
        hits.incrementAndGet();
        long total = hits.get();
        table.put(key, total); // return ignored
        if (table.containsKey(key)) {
            return table.get(key);
        }
        table.remove(key);
        return total;
    }
}
"#;

    #[test]
    fn finds_declarations() {
        let r = scan_source(SNIPPET);
        assert_eq!(r.declarations.len(), 2);
        assert_eq!(r.declarations[0].var, "hits");
        assert_eq!(r.declarations[0].class, TrackedClass::AtomicLong);
        assert_eq!(r.declarations[1].var, "table");
        assert_eq!(r.declarations[1].class, TrackedClass::ConcurrentHashMap);
        assert_eq!(
            r.declarations[0].enclosing_class.as_deref(),
            Some("RequestTracker")
        );
    }

    #[test]
    fn finds_calls_and_classifies_returns() {
        let r = scan_source(SNIPPET);
        let call = |m: &str| {
            r.calls
                .iter()
                .find(|c| c.method == m)
                .unwrap_or_else(|| panic!("missing call {m}"))
        };
        assert!(!call("incrementAndGet").return_used); // bare statement
        assert!(call("get").return_used); // assignment
        assert!(!call("put").return_used); // bare statement
        assert!(call("containsKey").return_used); // if condition
        assert!(!call("remove").return_used);
        // `return table.get(key)`: used.
        let gets: Vec<_> = r.calls.iter().filter(|c| c.method == "get").collect();
        assert!(gets.iter().all(|c| c.return_used));
        assert_eq!(r.calls.len(), 6);
    }

    #[test]
    fn ignores_untracked_receivers() {
        let src = "List<String> xs = new ArrayList<>();\nxs.add(\"x\");\n";
        let r = scan_source(src);
        assert!(r.declarations.is_empty());
        assert!(r.calls.is_empty());
    }

    #[test]
    fn ignores_commented_calls() {
        let src = "AtomicLong c = new AtomicLong();\n// c.incrementAndGet();\nc.get();\n";
        let r = scan_source(src);
        assert_eq!(r.calls.len(), 1);
        assert_eq!(r.calls[0].method, "get");
    }

    #[test]
    fn generic_declarations_are_recognized() {
        let src = "ConcurrentSkipListSet<Long> s = new ConcurrentSkipListSet<>();\nboolean b = s.add(5L);\n";
        let r = scan_source(src);
        assert_eq!(r.declarations.len(), 1);
        assert_eq!(r.declarations[0].class, TrackedClass::ConcurrentSkipListSet);
        assert_eq!(r.calls.len(), 1);
        assert!(r.calls[0].return_used);
    }

    #[test]
    fn nested_call_argument_counts_as_used() {
        let src =
            "ConcurrentLinkedQueue<Long> q = new ConcurrentLinkedQueue<>();\nprocess(q.poll());\n";
        let r = scan_source(src);
        assert_eq!(r.calls.len(), 1);
        assert!(r.calls[0].return_used);
    }

    #[test]
    fn multiple_calls_on_one_line() {
        let src = "AtomicLong a = new AtomicLong();\nlong x = a.get() + a.get();\n";
        let r = scan_source(src);
        assert_eq!(r.calls.len(), 2);
    }
}
