//! # dego-corpus — the shared-object usage study (§6.1, Figs. 1, 4, 5)
//!
//! The paper mines 50 Apache Software Foundation projects with scripts
//! that report which `java.util.concurrent` methods are called, whether
//! their return values are used, and how declaration counts evolve. The
//! repositories are not available offline, so this crate reproduces the
//! **pipeline** end to end over a *synthetic corpus*:
//!
//! 1. [`model`] fixes the catalogue of tracked classes and the method
//!    popularity / return-use rates published in the paper;
//! 2. [`generator`] synthesizes Java source files whose call sites follow
//!    those distributions (with per-project noise), plus a ten-year
//!    history model for Fig. 4;
//! 3. [`scanner`] is a real call-site scanner: it parses the Java text,
//!    finds declarations of tracked classes, resolves receiver variables
//!    and classifies each call's return-value usage — the same job as the
//!    paper's scripts;
//! 4. [`report`] aggregates scanner output into the tables behind
//!    Figs. 1 and 5, and [`history`] produces Fig. 4.
//!
//! Nothing in the reporting path reads the calibration tables directly:
//! every number is recovered by actually scanning the generated sources,
//! so the scanner is exercised for real.

#![warn(missing_docs)]

pub mod generator;
pub mod history;
pub mod model;
pub mod report;
pub mod scanner;

pub use generator::{generate_corpus, CorpusConfig};
pub use model::{TrackedClass, TRACKED_CLASSES};
pub use report::{CorpusReport, MethodShare};
pub use scanner::{scan_source, CallSite, Declaration, ScanResult};
