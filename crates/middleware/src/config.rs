//! Pipeline configuration: which layers run, and their tuning.
//!
//! [`MiddlewareConfig`] is embedded in the server's `ServerConfig` and
//! drives [`Stack::build`](crate::pipeline::Stack::build). The
//! [`MiddlewareConfig::apply_flag`] helper gives every binary the same
//! `--middleware`/`--auth-token`/`--rate-*`/`--deadline-*` CLI surface.

use crate::auth::{AuthConfig, Role, TokenSpec};
use crate::breaker::BreakerConfig;
use crate::deadline::DeadlineConfig;
use crate::pipeline::LayerKind;
use crate::rate_limit::RateLimitConfig;
use crate::shed::ShedConfig;

/// Trace-layer tuning: span sampling and the slowlog ring.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Sample one span per this many commands/bursts per connection
    /// (`--trace-sample`): 1 traces everything, 0 disables span
    /// attribution entirely. The default 64 keeps measured overhead at
    /// full depth well under 2%.
    pub sample_every: u32,
    /// Commands/bursts at or above this wall-clock cost (µs) enter the
    /// slowlog (`--slowlog-threshold-us`).
    pub slowlog_threshold_us: u64,
    /// Slowlog ring capacity (`--slowlog-capacity`); 0 disables it.
    pub slowlog_capacity: usize,
    /// Flight-recorder ring capacity (`--trace-capacity`); sampled
    /// trace trees land here. 0 disables capture.
    pub trace_capacity: usize,
    /// Sampled trees at or above this wall-clock cost (µs) are
    /// retained (`--trace-threshold-us`); the default 0 keeps every
    /// sampled tree.
    pub trace_threshold_us: u64,
    /// Rolling-window width (s) for `STATS`/`STATS SHARDS` percentiles
    /// (`--stats-window-secs`); 0 reports lifetime percentiles only.
    pub window_secs: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            sample_every: 64,
            slowlog_threshold_us: 10_000,
            slowlog_capacity: 128,
            trace_capacity: 64,
            trace_threshold_us: 0,
            window_secs: 60,
        }
    }
}

/// The full pipeline configuration.
#[derive(Clone, Debug, Default)]
pub struct MiddlewareConfig {
    /// Which layers run (order-insensitive; composed canonically).
    pub layers: Vec<LayerKind>,
    /// Rate limiter tuning.
    pub rate: RateLimitConfig,
    /// Auth tokens and ambient policy.
    pub auth: AuthConfig,
    /// Deadline budgets.
    pub deadline: DeadlineConfig,
    /// Circuit-breaker thresholds (disabled by default).
    pub breaker: BreakerConfig,
    /// Load-shedding thresholds (disabled by default).
    pub shed: ShedConfig,
    /// Span sampling and slowlog tuning.
    pub trace: TraceConfig,
    /// Force the boxed `dyn Service` onion (`--dyn-stack`) even when
    /// the configured layers match the canonical seven-layer order the
    /// fused (monomorphized) chain covers. The escape hatch for
    /// third-party layers and A/B-testing the dispatch planes; replies
    /// and metrics are identical either way.
    pub dyn_stack: bool,
}

impl MiddlewareConfig {
    /// No layers: requests go straight to the store (the seed
    /// behaviour, and the `Default`).
    pub fn none() -> Self {
        MiddlewareConfig::default()
    }

    /// All seven production layers with default tuning (the breaker
    /// and shed layers are present but disarmed until their thresholds
    /// are set, so `full` stays a behavioural no-op for admitted
    /// traffic).
    pub fn full() -> Self {
        MiddlewareConfig {
            layers: LayerKind::ALL.to_vec(),
            ..MiddlewareConfig::default()
        }
    }

    /// Parse a `--middleware` spec: `none`, `full`, or a comma list of
    /// layer names (`trace,auth,ttl`).
    pub fn parse_layers(spec: &str) -> Result<Vec<LayerKind>, String> {
        match spec.trim().to_ascii_lowercase().as_str() {
            "none" | "" => Ok(Vec::new()),
            "full" | "all" => Ok(MiddlewareConfig::full().layers),
            list => list.split(',').map(LayerKind::parse).collect(),
        }
    }

    /// Parse a `--auth-token` spec: `NAME:TOKEN:ROLE`.
    pub fn parse_token(spec: &str) -> Result<TokenSpec, String> {
        let mut parts = spec.splitn(3, ':');
        let name = parts.next().filter(|s| !s.is_empty());
        let token = parts.next().filter(|s| !s.is_empty());
        let role = parts.next().filter(|s| !s.is_empty());
        match (name, token, role) {
            (Some(name), Some(token), Some(role)) => Ok(TokenSpec {
                name: name.to_string(),
                token: token.to_string(),
                role: Role::parse(role)?,
            }),
            _ => Err(format!(
                "auth token spec must be NAME:TOKEN:ROLE, got {spec:?}"
            )),
        }
    }

    /// Consume one `--flag value` pair. Returns `Ok(true)` when the
    /// flag belongs to the middleware config, `Ok(false)` when it is
    /// not ours (the caller handles it), `Err` on a bad value.
    pub fn apply_flag(&mut self, flag: &str, value: &str) -> Result<bool, String> {
        let parse_u64 =
            |v: &str| -> Result<u64, String> { v.parse().map_err(|_| format!("bad number {v:?}")) };
        match flag {
            "--middleware" => self.layers = Self::parse_layers(value)?,
            "--auth-token" => self.auth.tokens.push(Self::parse_token(value)?),
            "--anon-role" => self.auth.anon_role = Role::parse(value)?,
            "--rate-burst" => self.rate.burst = parse_u64(value)?,
            "--rate-per-sec" => self.rate.refill_per_sec = parse_u64(value)?.max(1),
            "--deadline-read-us" => self.deadline.read_us = parse_u64(value)?,
            "--deadline-write-us" => self.deadline.write_us = parse_u64(value)?,
            "--breaker-failures" => self.breaker.failures = parse_u64(value)? as u32,
            "--breaker-cooldown-ms" => self.breaker.cooldown_ms = parse_u64(value)?,
            "--breaker-probes" => self.breaker.probes = (parse_u64(value)? as u32).max(1),
            "--shed-queue-depth" => self.shed.queue_depth = parse_u64(value)?,
            "--shed-ack-p99-us" => self.shed.ack_p99_us = parse_u64(value)?,
            "--trace-sample" => self.trace.sample_every = parse_u64(value)? as u32,
            "--slowlog-threshold-us" => self.trace.slowlog_threshold_us = parse_u64(value)?,
            "--slowlog-capacity" => self.trace.slowlog_capacity = parse_u64(value)? as usize,
            "--trace-capacity" => self.trace.trace_capacity = parse_u64(value)? as usize,
            "--trace-threshold-us" => self.trace.trace_threshold_us = parse_u64(value)?,
            "--stats-window-secs" => self.trace.window_secs = parse_u64(value)?,
            _ => return Ok(false),
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_specs_parse() {
        assert_eq!(MiddlewareConfig::parse_layers("none").unwrap(), vec![]);
        assert_eq!(MiddlewareConfig::parse_layers("full").unwrap().len(), 7);
        assert_eq!(
            MiddlewareConfig::parse_layers("trace, ttl").unwrap(),
            vec![LayerKind::Trace, LayerKind::Ttl]
        );
        assert!(MiddlewareConfig::parse_layers("trace,blorp").is_err());
    }

    #[test]
    fn token_specs_parse() {
        let spec = MiddlewareConfig::parse_token("ops:sekrit:readwrite").unwrap();
        assert_eq!(spec.name, "ops");
        assert_eq!(spec.token, "sekrit");
        assert_eq!(spec.role, Role::ReadWrite);
        assert!(MiddlewareConfig::parse_token("opsonly").is_err());
        assert!(MiddlewareConfig::parse_token("a:b:god").is_err());
    }

    #[test]
    fn flags_apply_or_decline() {
        let mut config = MiddlewareConfig::none();
        assert!(config.apply_flag("--middleware", "full").unwrap());
        assert_eq!(config.layers.len(), 7);
        assert!(config.apply_flag("--rate-burst", "64").unwrap());
        assert_eq!(config.rate.burst, 64);
        assert!(config.apply_flag("--anon-role", "readonly").unwrap());
        assert_eq!(config.auth.anon_role, Role::ReadOnly);
        assert!(config.apply_flag("--deadline-read-us", "1000").unwrap());
        assert_eq!(config.deadline.read_us, 1000);
        assert!(!config.apply_flag("--shards", "4").unwrap(), "not ours");
        assert!(config.apply_flag("--rate-burst", "lots").is_err());
    }

    #[test]
    fn overload_flags_apply() {
        let mut config = MiddlewareConfig::none();
        assert_eq!(config.breaker.failures, 0, "breaker disarmed by default");
        assert!(!config.shed.enabled(), "shed disarmed by default");
        assert!(config.apply_flag("--breaker-failures", "5").unwrap());
        assert!(config.apply_flag("--breaker-cooldown-ms", "250").unwrap());
        assert!(config.apply_flag("--breaker-probes", "0").unwrap());
        assert_eq!(config.breaker.failures, 5);
        assert_eq!(config.breaker.cooldown_ms, 250);
        assert_eq!(config.breaker.probes, 1, "probe quota clamps to >= 1");
        assert!(config.apply_flag("--shed-queue-depth", "1024").unwrap());
        assert!(config.apply_flag("--shed-ack-p99-us", "50000").unwrap());
        assert_eq!(config.shed.queue_depth, 1024);
        assert_eq!(config.shed.ack_p99_us, 50_000);
        assert!(config.shed.enabled());
        assert!(config.apply_flag("--breaker-failures", "many").is_err());
    }

    #[test]
    fn trace_flags_apply() {
        let mut config = MiddlewareConfig::none();
        assert_eq!(config.trace.sample_every, 64, "default 1-in-64");
        assert!(config.apply_flag("--trace-sample", "0").unwrap());
        assert_eq!(config.trace.sample_every, 0);
        assert!(config.apply_flag("--slowlog-threshold-us", "500").unwrap());
        assert_eq!(config.trace.slowlog_threshold_us, 500);
        assert!(config.apply_flag("--slowlog-capacity", "16").unwrap());
        assert_eq!(config.trace.slowlog_capacity, 16);
        assert_eq!(config.trace.trace_capacity, 64, "default flight ring");
        assert!(config.apply_flag("--trace-capacity", "8").unwrap());
        assert_eq!(config.trace.trace_capacity, 8);
        assert!(config.apply_flag("--trace-threshold-us", "250").unwrap());
        assert_eq!(config.trace.trace_threshold_us, 250);
        assert_eq!(config.trace.window_secs, 60, "default ~60s window");
        assert!(config.apply_flag("--stats-window-secs", "0").unwrap());
        assert_eq!(config.trace.window_secs, 0);
        assert!(config.apply_flag("--trace-sample", "sometimes").is_err());
    }
}
