//! Load shedding: reject writes early when their target shard is
//! already distressed.
//!
//! The shed layer reads *live shard telemetry* — the queue-depth gauge
//! and the windowed ack p99 the store publishes — through an injected
//! [`PressureProbe`], and rejects a write with a structured
//! `-ERR SHED <detail>` before it ever queues when either signal
//! crosses its configured threshold (`--shed-queue-depth`,
//! `--shed-ack-p99-us`). Shedding at admission keeps the rejection
//! latency flat (microseconds) while the shard works down its backlog,
//! instead of letting every new mutation join the queue and blow its
//! ack deadline.
//!
//! Only `Write`-class verbs shed: reads are served from the lock-free
//! plane without queueing, control verbs must stay answerable under
//! load, and the TTL layer's synthesized reap deletes originate
//! *below* this layer, so expiry still makes progress while the shard
//! drains.
//!
//! The probe is injected after the stack is built (the store does not
//! exist yet when layers are constructed): [`Stack::shed_set_probe`]
//! seats it in a `OnceLock`. Unseated or unconfigured (both thresholds
//! zero — the default), the layer is a pure passthrough.
//!
//! [`Stack::shed_set_probe`]: crate::pipeline::Stack::shed_set_probe

use crate::metrics::PipelineMetrics;
use crate::pipeline::{
    partition_batch, BoxService, Layer, LayerKind, Request, Response, Service, Session,
};
use crate::protocol::{Command, CommandClass};
use crate::span;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Shed thresholds. Zero disables a signal; both zero (the default)
/// disables the layer.
#[derive(Clone, Debug, Default)]
pub struct ShedConfig {
    /// Reject a write when its target shard's queue depth is at or
    /// above this many entries (0 = ignore queue depth).
    pub queue_depth: u64,
    /// Reject a write when its target shard's windowed ack p99 is at
    /// or above this many microseconds (0 = ignore ack latency).
    pub ack_p99_us: u64,
}

impl ShedConfig {
    /// Whether any threshold is armed.
    pub fn enabled(&self) -> bool {
        self.queue_depth > 0 || self.ack_p99_us > 0
    }
}

/// A point-in-time pressure reading for one shard.
#[derive(Clone, Copy, Debug)]
pub struct ShardPressure {
    /// Entries currently queued on the shard.
    pub queue_depth: u64,
    /// Windowed ack p99 for the shard, µs.
    pub ack_p99_us: u64,
}

/// Live shard telemetry, implemented by the storage plane and injected
/// post-build. Both methods are called on the hot admission path and
/// must be cheap and lock-free.
pub trait PressureProbe: Send + Sync {
    /// The shard `cmd`'s key (or user) hashes to, or `None` when the
    /// command is untargeted.
    fn shard_of(&self, cmd: &Command) -> Option<usize>;
    /// The current pressure reading for `shard`.
    fn pressure_of(&self, shard: usize) -> ShardPressure;
}

/// Shared shed state: thresholds plus the seated probe.
pub(crate) struct ShedState {
    config: ShedConfig,
    probe: OnceLock<Arc<dyn PressureProbe>>,
    metrics: Arc<PipelineMetrics>,
}

impl std::fmt::Debug for ShedState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShedState")
            .field("config", &self.config)
            .field("probe_seated", &self.probe.get().is_some())
            .finish()
    }
}

impl ShedState {
    pub(crate) fn new(config: ShedConfig, metrics: Arc<PipelineMetrics>) -> Self {
        ShedState {
            config,
            probe: OnceLock::new(),
            metrics,
        }
    }

    /// Seat the probe. The first caller wins; later calls are ignored
    /// (the probe outlives every session, so reseating is never
    /// needed).
    pub(crate) fn set_probe(&self, probe: Arc<dyn PressureProbe>) {
        let _ = self.probe.set(probe);
    }

    /// Whether admissions can actually shed: thresholds armed *and* a
    /// probe seated.
    #[inline]
    pub(crate) fn active(&self) -> Option<&Arc<dyn PressureProbe>> {
        if self.config.enabled() {
            self.probe.get()
        } else {
            None
        }
    }

    /// Admit or shed one command — `None` means admitted.
    #[inline]
    pub(crate) fn admit(&self, cmd: &Command) -> Option<Response> {
        let probe = self.active()?;
        if cmd.class() != CommandClass::Write {
            return None;
        }
        let shard = probe.shard_of(cmd)?;
        self.metrics.shed_checked.increment();
        let verdict = self.verdict(shard, probe.pressure_of(shard));
        if verdict.is_some() {
            self.metrics.shed_shed.increment();
        }
        verdict
    }

    /// Compare one pressure reading against the thresholds. Metrics
    /// are counted per *response* at the call sites, not here — the
    /// batch path caches one verdict per shard but still counts every
    /// shed reply.
    fn verdict(&self, shard: usize, p: ShardPressure) -> Option<Response> {
        if self.config.queue_depth > 0 && p.queue_depth >= self.config.queue_depth {
            return Some(Response::rejection(
                "SHED",
                format_args!(
                    "shard={shard} queue_depth={} limit={}",
                    p.queue_depth, self.config.queue_depth
                ),
            ));
        }
        if self.config.ack_p99_us > 0 && p.ack_p99_us >= self.config.ack_p99_us {
            return Some(Response::rejection(
                "SHED",
                format_args!(
                    "shard={shard} ack_p99_us={} limit={}",
                    p.ack_p99_us, self.config.ack_p99_us
                ),
            ));
        }
        None
    }
}

/// The load-shedding [`Layer`].
pub struct ShedLayer {
    state: Arc<ShedState>,
}

impl ShedLayer {
    /// Build the layer.
    pub fn new(config: ShedConfig, metrics: Arc<PipelineMetrics>) -> Self {
        ShedLayer {
            state: Arc::new(ShedState::new(config, metrics)),
        }
    }

    /// The shared state, for post-build probe injection via the stack.
    pub(crate) fn state(&self) -> Arc<ShedState> {
        Arc::clone(&self.state)
    }

    /// Wrap a concrete inner service, preserving its type — the typed
    /// combinator the fused stack composes with.
    pub fn wrap_typed<S: Service>(&self, _session: &Session, inner: S) -> ShedService<S> {
        ShedService {
            state: Arc::clone(&self.state),
            inner,
        }
    }
}

impl Layer for ShedLayer {
    fn kind(&self) -> LayerKind {
        LayerKind::Shed
    }

    fn wrap(&self, session: &Session, inner: BoxService) -> BoxService {
        Box::new(self.wrap_typed(session, inner))
    }
}

/// The shed layer's per-session service, generic over the inner
/// service it wraps.
pub struct ShedService<S> {
    pub(crate) state: Arc<ShedState>,
    pub(crate) inner: S,
}

impl<S: Service> Service for ShedService<S> {
    fn call(&mut self, req: Request) -> Response {
        let admission_t = span::start();
        let verdict = self.state.admit(&req.command);
        span::record(LayerKind::Shed, admission_t);
        match verdict {
            Some(rejection) => rejection,
            None => self.inner.call(req),
        }
    }

    /// Batch path: pressure is read once per *shard* per burst and the
    /// verdict reused for every write targeting it — the amortized
    /// metering exemption the contract allows (pressure is a clock,
    /// not state the burst itself mutates). Ordering and reply bytes
    /// are unchanged.
    fn call_batch(&mut self, reqs: Vec<Request>) -> Vec<Response> {
        let admission_t = span::start();
        let state = &self.state;
        let Some(probe) = state.active() else {
            span::record(LayerKind::Shed, admission_t);
            return self.inner.call_batch(reqs);
        };
        let mut verdicts: HashMap<usize, Option<Response>> = HashMap::new();
        span::record(LayerKind::Shed, admission_t);
        partition_batch(&mut self.inner, reqs, |req| {
            if req.command.class() != CommandClass::Write {
                return None;
            }
            let shard = probe.shard_of(&req.command)?;
            state.metrics.shed_checked.increment();
            let verdict = verdicts
                .entry(shard)
                .or_insert_with(|| state.verdict(shard, probe.pressure_of(shard)))
                .clone();
            if verdict.is_some() {
                state.metrics.shed_shed.increment();
            }
            verdict
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Reply;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A fake storage plane: every key lands on shard `key.len() % 2`,
    /// both shards share one mutable pressure cell.
    struct FakeProbe {
        depth: [AtomicU64; 2],
        p99: [AtomicU64; 2],
    }

    impl FakeProbe {
        fn calm() -> Arc<Self> {
            Arc::new(FakeProbe {
                depth: [AtomicU64::new(0), AtomicU64::new(0)],
                p99: [AtomicU64::new(0), AtomicU64::new(0)],
            })
        }
    }

    impl PressureProbe for FakeProbe {
        fn shard_of(&self, cmd: &Command) -> Option<usize> {
            match cmd {
                Command::Set(k, _) | Command::Del(k) | Command::Incr(k, _) => Some(k.len() % 2),
                _ => None,
            }
        }
        fn pressure_of(&self, shard: usize) -> ShardPressure {
            ShardPressure {
                queue_depth: self.depth[shard].load(Ordering::Relaxed),
                ack_p99_us: self.p99[shard].load(Ordering::Relaxed),
            }
        }
    }

    struct Always;
    impl Service for Always {
        fn call(&mut self, _req: Request) -> Response {
            Response::ok(Reply::Status("OK"))
        }
    }

    fn wrap(config: ShedConfig) -> (ShedService<Always>, Arc<FakeProbe>, Arc<PipelineMetrics>) {
        let metrics = Arc::new(PipelineMetrics::new());
        let layer = ShedLayer::new(config, Arc::clone(&metrics));
        let probe = FakeProbe::calm();
        layer
            .state()
            .set_probe(probe.clone() as Arc<dyn PressureProbe>);
        let session = Session {
            client: "t:1".into(),
        };
        (layer.wrap_typed(&session, Always), probe, metrics)
    }

    fn set(key: &str) -> Request {
        Request::new(Command::Set(key.into(), "v".into()))
    }

    #[test]
    fn calm_shards_admit_everything() {
        let (mut svc, _, metrics) = wrap(ShedConfig {
            queue_depth: 8,
            ack_p99_us: 0,
        });
        assert!(matches!(svc.call(set("k")).reply, Reply::Status("OK")));
        assert_eq!(metrics.shed_checked.sum(), 1);
        assert_eq!(metrics.shed_shed.sum(), 0);
    }

    #[test]
    fn deep_queue_sheds_only_the_distressed_shard() {
        let (mut svc, probe, metrics) = wrap(ShedConfig {
            queue_depth: 8,
            ack_p99_us: 0,
        });
        probe.depth[1].store(8, Ordering::Relaxed);
        match svc.call(set("k")).reply {
            // "k" has length 1 → shard 1, at the limit → shed.
            Reply::Error(e) => {
                assert_eq!(e, "SHED shard=1 queue_depth=8 limit=8", "got {e:?}")
            }
            other => panic!("expected shed, got {other:?}"),
        }
        // Shard 0 is calm; same verb class, different key.
        assert!(matches!(svc.call(set("kk")).reply, Reply::Status("OK")));
        assert_eq!(metrics.shed_shed.sum(), 1);
    }

    #[test]
    fn slow_acks_shed_via_the_p99_threshold() {
        let (mut svc, probe, _) = wrap(ShedConfig {
            queue_depth: 0,
            ack_p99_us: 5_000,
        });
        probe.p99[1].store(7_500, Ordering::Relaxed);
        match svc.call(set("k")).reply {
            Reply::Error(e) => {
                assert_eq!(e, "SHED shard=1 ack_p99_us=7500 limit=5000", "got {e:?}")
            }
            other => panic!("expected shed, got {other:?}"),
        }
    }

    #[test]
    fn reads_and_control_verbs_never_shed() {
        let (mut svc, probe, metrics) = wrap(ShedConfig {
            queue_depth: 1,
            ack_p99_us: 1,
        });
        probe.depth[0].store(99, Ordering::Relaxed);
        probe.depth[1].store(99, Ordering::Relaxed);
        probe.p99[0].store(99, Ordering::Relaxed);
        probe.p99[1].store(99, Ordering::Relaxed);
        assert!(matches!(
            svc.call(Request::new(Command::Get("k".into()))).reply,
            Reply::Status("OK")
        ));
        assert!(matches!(
            svc.call(Request::new(Command::Ping)).reply,
            Reply::Status("OK")
        ));
        assert_eq!(metrics.shed_checked.sum(), 0, "non-writes never probed");
    }

    #[test]
    fn unseated_probe_is_a_passthrough() {
        let metrics = Arc::new(PipelineMetrics::new());
        let layer = ShedLayer::new(
            ShedConfig {
                queue_depth: 1,
                ack_p99_us: 1,
            },
            Arc::clone(&metrics),
        );
        let session = Session {
            client: "t:1".into(),
        };
        let mut svc = layer.wrap_typed(&session, Always);
        assert!(matches!(svc.call(set("k")).reply, Reply::Status("OK")));
        assert_eq!(metrics.shed_checked.sum(), 0);
    }

    #[test]
    fn batch_reads_pressure_once_per_shard() {
        let (mut svc, probe, metrics) = wrap(ShedConfig {
            queue_depth: 8,
            ack_p99_us: 0,
        });
        probe.depth[1].store(8, Ordering::Relaxed);
        let resps = svc.call_batch(vec![
            set("a"),  // shard 1: shed
            set("bb"), // shard 0: admitted
            set("c"),  // shard 1 again: cached verdict, same bytes
            Request::new(Command::Ping),
        ]);
        assert!(matches!(&resps[0].reply, Reply::Error(e) if e.starts_with("SHED shard=1 ")));
        assert!(matches!(resps[1].reply, Reply::Status("OK")));
        assert_eq!(resps[0].reply, resps[2].reply);
        assert!(matches!(resps[3].reply, Reply::Status("OK")));
        assert_eq!(metrics.shed_checked.sum(), 3);
        assert_eq!(
            metrics.shed_shed.sum(),
            2,
            "each shed response counted, pressure read once"
        );
    }
}
