//! Tracing/metrics: the outermost layer.
//!
//! Times every command (whatever layer ultimately answers it) into the
//! per-class latency histograms, counts it, and — when the command is
//! `STATS` and the store answered with the usual `name=value` array —
//! folds the whole pipeline's `mw_*` lines into the reply, so one
//! `STATS` round-trip observes both planes.

use crate::metrics::PipelineMetrics;
use crate::pipeline::{BoxService, Layer, LayerKind, Request, Response, Service, Session};
use crate::protocol::{Command, CommandClass, Reply};
use std::sync::Arc;
use std::time::Instant;

/// The trace [`Layer`].
pub struct TraceLayer {
    metrics: Arc<PipelineMetrics>,
    depth: usize,
}

impl TraceLayer {
    /// Build the layer; `depth` is the configured stack depth reported
    /// as `mw_depth`.
    pub fn new(metrics: Arc<PipelineMetrics>, depth: usize) -> Self {
        TraceLayer { metrics, depth }
    }
}

impl Layer for TraceLayer {
    fn kind(&self) -> LayerKind {
        LayerKind::Trace
    }

    fn wrap(&self, _session: &Session, inner: BoxService) -> BoxService {
        Box::new(TraceService {
            metrics: Arc::clone(&self.metrics),
            depth: self.depth,
            inner,
        })
    }
}

struct TraceService {
    metrics: Arc<PipelineMetrics>,
    depth: usize,
    inner: BoxService,
}

impl Service for TraceService {
    /// Batch path: one `Instant::now()` pair and one histogram sample
    /// for the whole burst (into `batch_latency`), instead of one per
    /// command — the per-class histograms only see singleton traffic,
    /// which is what they meter best anyway (a per-batch sample would
    /// conflate k commands into one latency). `STATS` replies inside
    /// the burst still grow the `mw_*` lines at their position.
    fn call_batch(&mut self, reqs: Vec<Request>) -> Vec<Response> {
        let n = reqs.len() as u64;
        let stats_at: Vec<bool> = reqs
            .iter()
            .map(|r| matches!(r.command, Command::Stats))
            .collect();
        let start = Instant::now();
        let mut resps = self.inner.call_batch(reqs);
        let elapsed_us = start.elapsed().as_micros() as u64;
        for (resp, is_stats) in resps.iter_mut().zip(stats_at) {
            if is_stats {
                if let Reply::Array(lines) = &mut resp.reply {
                    lines.extend(self.metrics.render_lines(self.depth));
                }
            }
        }
        self.metrics.traced.add(n);
        self.metrics.batch_commands.add(n);
        self.metrics.batches.increment();
        self.metrics.batch_latency.record(elapsed_us);
        resps
    }

    fn call(&mut self, req: Request) -> Response {
        let class = req.command.class();
        let is_stats = matches!(req.command, Command::Stats);
        let start = Instant::now();
        let mut resp = self.inner.call(req);
        let elapsed_us = start.elapsed().as_micros() as u64;
        // Render before recording, so a `STATS` reply reflects the
        // traffic *before* it, not itself.
        if is_stats {
            if let Reply::Array(lines) = &mut resp.reply {
                lines.extend(self.metrics.render_lines(self.depth));
            }
        }
        self.metrics.traced.increment();
        match class {
            CommandClass::Read => self.metrics.read_latency.record(elapsed_us),
            CommandClass::Write => self.metrics.write_latency.record(elapsed_us),
            CommandClass::Control => self.metrics.control_latency.record(elapsed_us),
        }
        resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Store;
    impl Service for Store {
        fn call(&mut self, req: Request) -> Response {
            match req.command {
                Command::Stats => Response::ok(Reply::Array(vec!["shards=2".into()])),
                _ => Response::ok(Reply::Status("OK")),
            }
        }
    }

    fn traced() -> (BoxService, Arc<PipelineMetrics>) {
        let metrics = Arc::new(PipelineMetrics::new());
        let layer = TraceLayer::new(Arc::clone(&metrics), 5);
        let session = Session {
            client: "t:1".into(),
        };
        (layer.wrap(&session, Box::new(Store)), metrics)
    }

    #[test]
    fn commands_are_counted_into_class_histograms() {
        let (mut svc, metrics) = traced();
        svc.call(Request::new(Command::Get("k".into())));
        svc.call(Request::new(Command::Set("k".into(), "v".into())));
        svc.call(Request::new(Command::Ping));
        assert_eq!(metrics.traced.sum(), 3);
        assert_eq!(metrics.read_latency.count(), 1);
        assert_eq!(metrics.write_latency.count(), 1);
        assert_eq!(metrics.control_latency.count(), 1);
    }

    #[test]
    fn batches_pay_one_histogram_sample() {
        let (mut svc, metrics) = traced();
        let resps = svc.call_batch(vec![
            Request::new(Command::Get("k".into())),
            Request::new(Command::Set("k".into(), "v".into())),
            Request::new(Command::Ping),
            Request::new(Command::Stats),
        ]);
        assert_eq!(resps.len(), 4);
        assert_eq!(metrics.traced.sum(), 4, "every command counted");
        assert_eq!(metrics.batches.sum(), 1, "one burst");
        assert_eq!(metrics.batch_commands.sum(), 4);
        assert_eq!(metrics.batch_latency.count(), 1, "one sample per burst");
        // Per-class histograms only meter singleton traffic.
        assert_eq!(metrics.read_latency.count(), 0);
        // STATS inside the burst still grows the mw_* lines in place.
        match &resps[3].reply {
            Reply::Array(lines) => {
                assert!(lines.contains(&"shards=2".to_string()));
                assert!(lines.iter().any(|l| l.starts_with("mw_batches=")));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn stats_replies_grow_the_mw_lines() {
        let (mut svc, _) = traced();
        svc.call(Request::new(Command::Ping));
        let resp = svc.call(Request::new(Command::Stats));
        match resp.reply {
            Reply::Array(lines) => {
                assert!(lines.contains(&"shards=2".to_string()), "store lines kept");
                assert!(lines.contains(&"mw_depth=5".to_string()));
                assert!(lines.contains(&"mw_traced=1".to_string()));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }
}
