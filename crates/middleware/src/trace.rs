//! Tracing/metrics: the outermost layer.
//!
//! Times every command (whatever layer ultimately answers it) into the
//! per-class latency histograms, counts it, and — when the command is
//! `STATS` and the store answered with the usual `name=value` array —
//! folds the whole pipeline's `mw_*` lines into the reply, so one
//! `STATS` round-trip observes both planes.
//!
//! Being outermost also makes it the observability anchor:
//!
//! * **Span sampling**: every `sample_every`-th command (or burst) per
//!   connection opens a [`crate::span`] scope; each layer below charges
//!   its admission cost to the scope, and the harvest lands in the
//!   per-layer histograms behind `mw_<layer>_us_p50/p99`.
//! * **Slowlog capture**: commands/bursts whose wall-clock time crosses
//!   the configured threshold are pushed into the lock-free
//!   [`crate::slowlog::SlowLog`] ring, together with the sampled
//!   breakdown when one was taken.
//! * **Flight recording**: every sampled command/burst assembles a
//!   [`crate::flight::TraceTree`] — the per-layer admission segments
//!   from this thread plus the store-side queue-wait/apply segments the
//!   shard owners stamped into the ack envelopes — and offers it to the
//!   lock-free [`crate::flight::FlightRecorder`] ring.
//! * **`SLOWLOG GET|RESET|LEN`** and **`TRACE GET|RESET|LEN`** are
//!   answered here — they never travel further down the stack, so they
//!   are immune to deadline/rate/ACL policy and usable for diagnosis
//!   even mid-overload.
//! * **`STATS RESET`** travels down (the server zeroes its own plane)
//!   and, on the way back up, zeroes the middleware counters and
//!   histograms too — after this command's own recording, so the next
//!   `STATS` starts from a clean slate.

use crate::metrics::{debug_assert_unique_stat_names, PipelineMetrics};
use crate::pipeline::{
    partition_batch, BoxService, Layer, LayerKind, Request, Response, Service, Session,
};
use crate::protocol::{Command, CommandClass, Reply};
use crate::span;
use std::sync::Arc;
use std::time::Instant;

pub(crate) fn class_name(class: CommandClass) -> &'static str {
    match class {
        CommandClass::Read => "read",
        CommandClass::Write => "write",
        CommandClass::Control => "control",
    }
}

/// Answer a slowlog or flight-recorder verb from its ring, or `None`
/// for anything else.
fn observability_reply(metrics: &PipelineMetrics, cmd: &Command) -> Option<Reply> {
    match cmd {
        Command::SlowlogGet => Some(Reply::Array(
            metrics
                .slowlog
                .entries()
                .iter()
                .map(|e| e.render_line())
                .collect(),
        )),
        Command::SlowlogReset => {
            metrics.slowlog.reset();
            Some(Reply::Status("OK"))
        }
        Command::SlowlogLen => Some(Reply::Int(metrics.slowlog.len() as i64)),
        Command::TraceGet => Some(Reply::Array(
            metrics
                .flight
                .entries()
                .iter()
                .map(|e| e.render_line())
                .collect(),
        )),
        Command::TraceReset => {
            metrics.flight.reset();
            Some(Reply::Status("OK"))
        }
        Command::TraceLen => Some(Reply::Int(metrics.flight.len() as i64)),
        _ => None,
    }
}

/// The trace [`Layer`].
pub struct TraceLayer {
    metrics: Arc<PipelineMetrics>,
    depth: usize,
    sample_every: u32,
}

impl TraceLayer {
    /// Build the layer; `depth` is the configured stack depth reported
    /// as `mw_depth`, `sample_every` the span-sampling period (0
    /// disables sampling, 1 samples everything).
    pub fn new(metrics: Arc<PipelineMetrics>, depth: usize, sample_every: u32) -> Self {
        TraceLayer {
            metrics,
            depth,
            sample_every,
        }
    }
}

impl TraceLayer {
    /// Wrap a concrete inner service, preserving its type — the typed
    /// combinator the fused stack composes with.
    pub fn wrap_typed<S: Service>(&self, session: &Session, inner: S) -> TraceService<S> {
        TraceService {
            metrics: Arc::clone(&self.metrics),
            depth: self.depth,
            client: Arc::from(session.client.as_str()),
            sample_every: self.sample_every,
            tick: 0,
            inner,
        }
    }
}

impl Layer for TraceLayer {
    fn kind(&self) -> LayerKind {
        LayerKind::Trace
    }

    fn wrap(&self, session: &Session, inner: BoxService) -> BoxService {
        Box::new(self.wrap_typed(session, inner))
    }
}

/// The trace layer's per-session service, generic over the inner
/// service it wraps (a concrete type in the fused stack, a
/// [`BoxService`] in the dyn onion).
pub struct TraceService<S> {
    pub(crate) metrics: Arc<PipelineMetrics>,
    depth: usize,
    pub(crate) client: Arc<str>,
    pub(crate) sample_every: u32,
    /// Per-connection sampling phase: 0 means "sample now", so the
    /// first command of every connection is always covered —
    /// contention-free and deterministic for tests.
    pub(crate) tick: u32,
    pub(crate) inner: S,
}

impl<S: Service> TraceService<S> {
    fn tick_sample(&mut self) -> bool {
        if self.sample_every == 0 {
            return false;
        }
        let hit = self.tick == 0;
        self.tick += 1;
        if self.tick >= self.sample_every {
            self.tick = 0;
        }
        hit
    }

    /// Close out one traced command/burst: harvest the span (if any)
    /// into the per-layer histograms, offer the completed trace tree
    /// to the flight recorder, and offer the observation to the
    /// slowlog ring.
    fn finish(
        &self,
        span: Option<span::SpanGuard>,
        verb: &'static str,
        class: &'static str,
        burst: usize,
        elapsed_us: u64,
    ) {
        let costs = span.map(|guard| {
            let harvest = guard.finish();
            self.metrics.note_span(&harvest.layer_us);
            self.metrics.flight.offer(
                &self.client,
                verb,
                class,
                burst,
                elapsed_us,
                harvest.layer_us,
                harvest.store,
            );
            harvest.layer_us
        });
        self.metrics
            .slowlog
            .offer(&self.client, verb, class, burst, elapsed_us, costs);
    }
}

impl<S: Service> Service for TraceService<S> {
    /// Batch path: one `Instant::now()` pair and one histogram sample
    /// for the whole burst (into `batch_latency`), instead of one per
    /// command — the per-class histograms only see singleton traffic,
    /// which is what they meter best anyway (a per-batch sample would
    /// conflate k commands into one latency). `STATS` replies inside
    /// the burst still grow the `mw_*` lines at their position, and
    /// slowlog verbs are answered in place without travelling further
    /// down; a slow burst enters the slowlog as one `BATCH` entry
    /// (covering the burst end to end, which no position inside it
    /// could observe anyway).
    fn call_batch(&mut self, reqs: Vec<Request>) -> Vec<Response> {
        let n = reqs.len() as u64;
        let stats_at: Vec<bool> = reqs
            .iter()
            .map(|r| matches!(r.command, Command::Stats))
            .collect();
        let has_reset = reqs
            .iter()
            .any(|r| matches!(r.command, Command::StatsReset));
        let has_ring_verbs = reqs.iter().any(|r| {
            matches!(
                r.command,
                Command::SlowlogGet
                    | Command::SlowlogReset
                    | Command::SlowlogLen
                    | Command::TraceGet
                    | Command::TraceReset
                    | Command::TraceLen
            )
        });
        let span = self.tick_sample().then(span::enter);
        let start = Instant::now();
        let mut resps = if has_ring_verbs {
            let metrics = Arc::clone(&self.metrics);
            partition_batch(&mut self.inner, reqs, |req| {
                observability_reply(&metrics, &req.command).map(Response::ok)
            })
        } else {
            self.inner.call_batch(reqs)
        };
        let elapsed_us = start.elapsed().as_micros() as u64;
        let trace_t = span::start();
        for (resp, is_stats) in resps.iter_mut().zip(stats_at) {
            if is_stats {
                if let Reply::Array(lines) = &mut resp.reply {
                    lines.extend(self.metrics.render_lines(self.depth));
                    debug_assert_unique_stat_names(lines);
                }
            }
        }
        self.metrics.traced.add(n);
        self.metrics.batch_commands.add(n);
        self.metrics.batches.increment();
        self.metrics.batch_latency.record(elapsed_us);
        span::record(LayerKind::Trace, trace_t);
        self.finish(span, "BATCH", "batch", n as usize, elapsed_us);
        if has_reset {
            // Last, so the burst's own recording nets to zero too.
            self.metrics.reset();
        }
        resps
    }

    fn call(&mut self, req: Request) -> Response {
        if let Some(reply) = observability_reply(&self.metrics, &req.command) {
            self.metrics.traced.increment();
            return Response::ok(reply);
        }
        let class = req.command.class();
        let verb = req.command.verb();
        let is_stats = matches!(req.command, Command::Stats);
        let is_reset = matches!(req.command, Command::StatsReset);
        let span = self.tick_sample().then(span::enter);
        let start = Instant::now();
        let mut resp = self.inner.call(req);
        let elapsed_us = start.elapsed().as_micros() as u64;
        let trace_t = span::start();
        // Render before recording, so a `STATS` reply reflects the
        // traffic *before* it, not itself.
        if is_stats {
            if let Reply::Array(lines) = &mut resp.reply {
                lines.extend(self.metrics.render_lines(self.depth));
                debug_assert_unique_stat_names(lines);
            }
        }
        self.metrics.traced.increment();
        match class {
            CommandClass::Read => self.metrics.read_latency.record(elapsed_us),
            CommandClass::Write => self.metrics.write_latency.record(elapsed_us),
            CommandClass::Control => self.metrics.control_latency.record(elapsed_us),
        }
        span::record(LayerKind::Trace, trace_t);
        self.finish(span, verb, class_name(class), 1, elapsed_us);
        if is_reset {
            // Zero the middleware plane last, after this command's own
            // recording, so the next STATS starts from a clean slate.
            self.metrics.reset();
        }
        resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TraceConfig;

    struct Store;
    impl Service for Store {
        fn call(&mut self, req: Request) -> Response {
            match req.command {
                Command::Stats => Response::ok(Reply::Array(vec!["shards=2".into()])),
                _ => Response::ok(Reply::Status("OK")),
            }
        }
    }

    fn traced_with(config: TraceConfig) -> (BoxService, Arc<PipelineMetrics>) {
        let sample_every = config.sample_every;
        let metrics = Arc::new(PipelineMetrics::with_trace(&config));
        let layer = TraceLayer::new(Arc::clone(&metrics), 5, sample_every);
        let session = Session {
            client: "t:1".into(),
        };
        (layer.wrap(&session, Box::new(Store)), metrics)
    }

    fn traced() -> (BoxService, Arc<PipelineMetrics>) {
        traced_with(TraceConfig::default())
    }

    #[test]
    fn commands_are_counted_into_class_histograms() {
        let (mut svc, metrics) = traced();
        svc.call(Request::new(Command::Get("k".into())));
        svc.call(Request::new(Command::Set("k".into(), "v".into())));
        svc.call(Request::new(Command::Ping));
        assert_eq!(metrics.traced.sum(), 3);
        assert_eq!(metrics.read_latency.count(), 1);
        assert_eq!(metrics.write_latency.count(), 1);
        assert_eq!(metrics.control_latency.count(), 1);
    }

    #[test]
    fn batches_pay_one_histogram_sample() {
        let (mut svc, metrics) = traced();
        let resps = svc.call_batch(vec![
            Request::new(Command::Get("k".into())),
            Request::new(Command::Set("k".into(), "v".into())),
            Request::new(Command::Ping),
            Request::new(Command::Stats),
        ]);
        assert_eq!(resps.len(), 4);
        assert_eq!(metrics.traced.sum(), 4, "every command counted");
        assert_eq!(metrics.batches.sum(), 1, "one burst");
        assert_eq!(metrics.batch_commands.sum(), 4);
        assert_eq!(metrics.batch_latency.count(), 1, "one sample per burst");
        // Per-class histograms only meter singleton traffic.
        assert_eq!(metrics.read_latency.count(), 0);
        // STATS inside the burst still grows the mw_* lines in place.
        match &resps[3].reply {
            Reply::Array(lines) => {
                assert!(lines.contains(&"shards=2".to_string()));
                assert!(lines.iter().any(|l| l.starts_with("mw_batches=")));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn stats_replies_grow_the_mw_lines() {
        let (mut svc, _) = traced();
        svc.call(Request::new(Command::Ping));
        let resp = svc.call(Request::new(Command::Stats));
        match resp.reply {
            Reply::Array(lines) => {
                assert!(lines.contains(&"shards=2".to_string()), "store lines kept");
                assert!(lines.contains(&"mw_depth=5".to_string()));
                assert!(lines.contains(&"mw_traced=1".to_string()));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn spans_sample_one_in_n_per_connection() {
        let (mut svc, metrics) = traced_with(TraceConfig {
            sample_every: 3,
            ..TraceConfig::default()
        });
        for _ in 0..7 {
            svc.call(Request::new(Command::Ping));
        }
        // Commands 1, 4 and 7 are sampled (phase starts at "now").
        assert_eq!(metrics.spans_sampled.sum(), 3);
        assert!(metrics.layer_admission_us[LayerKind::Trace.index()].count() >= 3);
    }

    #[test]
    fn sampling_zero_disables_spans() {
        let (mut svc, metrics) = traced_with(TraceConfig {
            sample_every: 0,
            ..TraceConfig::default()
        });
        for _ in 0..10 {
            svc.call(Request::new(Command::Ping));
        }
        assert_eq!(metrics.spans_sampled.sum(), 0);
    }

    #[test]
    fn slow_commands_enter_the_slowlog() {
        let (mut svc, metrics) = traced_with(TraceConfig {
            slowlog_threshold_us: 0, // everything is "slow"
            ..TraceConfig::default()
        });
        svc.call(Request::new(Command::Set("k".into(), "v".into())));
        assert_eq!(metrics.slowlog.len(), 1);
        let entry = &metrics.slowlog.entries()[0];
        assert_eq!(entry.verb, "SET");
        assert_eq!(entry.class, "write");
        assert_eq!(entry.burst, 1);
        assert_eq!(&*entry.client, "t:1");
        assert!(entry.layer_us.is_some(), "first command is sampled");
    }

    #[test]
    fn slowlog_verbs_are_answered_by_the_trace_layer() {
        let (mut svc, metrics) = traced_with(TraceConfig {
            slowlog_threshold_us: 0,
            ..TraceConfig::default()
        });
        svc.call(Request::new(Command::Set("k".into(), "v".into())));
        match svc.call(Request::new(Command::SlowlogLen)).reply {
            Reply::Int(1) => {}
            other => panic!("expected :1, got {other:?}"),
        }
        match svc.call(Request::new(Command::SlowlogGet)).reply {
            Reply::Array(lines) => {
                assert_eq!(lines.len(), 1);
                assert!(lines[0].contains("verb=SET"), "line: {}", lines[0]);
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(
            svc.call(Request::new(Command::SlowlogReset)).reply,
            Reply::Status("OK")
        );
        assert_eq!(metrics.slowlog.len(), 0);
        // The verbs themselves never entered the ring or the class
        // histograms, but were counted as traffic.
        assert_eq!(metrics.traced.sum(), 4);
        assert_eq!(metrics.control_latency.count(), 0);
    }

    #[test]
    fn slowlog_verbs_in_bursts_answer_in_place() {
        let (mut svc, _) = traced_with(TraceConfig {
            slowlog_threshold_us: 0,
            ..TraceConfig::default()
        });
        svc.call(Request::new(Command::Set("k".into(), "v".into())));
        let resps = svc.call_batch(vec![
            Request::new(Command::Get("k".into())),
            Request::new(Command::SlowlogLen),
            Request::new(Command::Ping),
        ]);
        assert_eq!(resps.len(), 3);
        assert_eq!(resps[0].reply, Reply::Status("OK"), "inner store reply");
        assert_eq!(resps[1].reply, Reply::Int(1), "answered by trace");
        assert_eq!(resps[2].reply, Reply::Status("OK"));
    }

    #[test]
    fn sampled_commands_enter_the_flight_recorder() {
        let (mut svc, metrics) = traced_with(TraceConfig {
            sample_every: 1,
            ..TraceConfig::default()
        });
        svc.call(Request::new(Command::Set("k".into(), "v".into())));
        assert_eq!(metrics.flight.len(), 1, "sampled tree captured");
        let tree = &metrics.flight.entries()[0];
        assert_eq!(tree.verb, "SET");
        assert_eq!(tree.class, "write");
        assert_eq!(&*tree.client, "t:1");
        assert!(
            tree.layers[LayerKind::Trace.index()].is_some(),
            "trace segment present"
        );
    }

    #[test]
    fn unsampled_commands_skip_the_flight_recorder() {
        let (mut svc, metrics) = traced_with(TraceConfig {
            sample_every: 2,
            ..TraceConfig::default()
        });
        svc.call(Request::new(Command::Ping)); // sampled (phase 0)
        svc.call(Request::new(Command::Ping)); // not sampled
        assert_eq!(metrics.flight.total(), 1, "only the sampled command");
    }

    #[test]
    fn trace_verbs_are_answered_by_the_trace_layer() {
        let (mut svc, metrics) = traced_with(TraceConfig {
            sample_every: 1,
            ..TraceConfig::default()
        });
        svc.call(Request::new(Command::Set("k".into(), "v".into())));
        match svc.call(Request::new(Command::TraceLen)).reply {
            Reply::Int(1) => {}
            other => panic!("expected :1, got {other:?}"),
        }
        match svc.call(Request::new(Command::TraceGet)).reply {
            Reply::Array(lines) => {
                assert_eq!(lines.len(), 1);
                assert!(lines[0].contains("verb=SET"), "line: {}", lines[0]);
                assert!(lines[0].contains("conn/trace:"), "line: {}", lines[0]);
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(
            svc.call(Request::new(Command::TraceReset)).reply,
            Reply::Status("OK")
        );
        assert_eq!(metrics.flight.len(), 0);
        // The verbs themselves never became trees (they return before
        // sampling) but were counted as traffic.
        assert_eq!(metrics.traced.sum(), 4);
    }

    #[test]
    fn trace_verbs_in_bursts_answer_in_place() {
        let (mut svc, _) = traced_with(TraceConfig {
            sample_every: 1,
            ..TraceConfig::default()
        });
        svc.call(Request::new(Command::Set("k".into(), "v".into())));
        let resps = svc.call_batch(vec![
            Request::new(Command::Get("k".into())),
            Request::new(Command::TraceLen),
            Request::new(Command::Ping),
        ]);
        assert_eq!(resps.len(), 3);
        assert_eq!(resps[0].reply, Reply::Status("OK"), "inner store reply");
        assert_eq!(resps[1].reply, Reply::Int(1), "answered by trace");
        assert_eq!(resps[2].reply, Reply::Status("OK"));
    }

    #[test]
    fn stats_reset_zeroes_the_middleware_plane() {
        let (mut svc, metrics) = traced_with(TraceConfig {
            slowlog_threshold_us: 0,
            ..TraceConfig::default()
        });
        svc.call(Request::new(Command::Set("k".into(), "v".into())));
        svc.call(Request::new(Command::Get("k".into())));
        assert!(metrics.traced.sum() > 0);
        let resp = svc.call(Request::new(Command::StatsReset));
        assert_eq!(resp.reply, Reply::Status("OK"), "inner store answered");
        assert_eq!(metrics.traced.sum(), 0, "counters zeroed after reply");
        assert_eq!(metrics.read_latency.count(), 0);
        assert_eq!(metrics.write_latency.count(), 0);
        assert_eq!(metrics.control_latency.count(), 0);
        assert_eq!(metrics.spans_sampled.sum(), 0);
        // The rings are not touched: they have their own RESET verbs.
        assert!(!metrics.slowlog.is_empty(), "slowlog survives STATS RESET");
    }

    #[test]
    fn slow_bursts_enter_as_one_batch_entry() {
        let (mut svc, metrics) = traced_with(TraceConfig {
            slowlog_threshold_us: 0,
            ..TraceConfig::default()
        });
        svc.call_batch(vec![
            Request::new(Command::Ping),
            Request::new(Command::Ping),
        ]);
        let entries = metrics.slowlog.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].verb, "BATCH");
        assert_eq!(entries[0].class, "batch");
        assert_eq!(entries[0].burst, 2);
    }
}
