//! Key-based authentication and role ACLs.
//!
//! The token table (`token → principal`) is an SWMR hash map from
//! dego-core: every connection thread resolves `AUTH` tokens through
//! the lock-free reader; the unique writer is mutex-serialized behind
//! the runtime admin API (add/revoke tokens). The ambient policy (what
//! an unauthenticated session may do) lives in an [`rcu_cell`]: a
//! reload copy-swaps the whole policy, and every session observes the
//! new version on its next request — no locks on the request path.
//!
//! ACL model: `Control` verbs are always allowed, `Read` verbs need
//! [`Role::ReadOnly`] or better, `Write` verbs need [`Role::ReadWrite`]
//! or better.

use crate::metrics::PipelineMetrics;
use crate::pipeline::{BoxService, Layer, LayerKind, Request, Response, Service, Session};
use crate::protocol::{Command, CommandClass, Reply};
use dego_core::rcu::{rcu_cell, RcuReader, RcuWriter};
use dego_core::swmr_hash::{swmr_hash_map, SwmrHashReader, SwmrHashWriter};
use std::sync::{Arc, Mutex};

/// What a session is allowed to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Role {
    /// No access at all (useful as an anon role to force `AUTH`).
    None,
    /// Read-class verbs only.
    ReadOnly,
    /// Read- and write-class verbs.
    ReadWrite,
}

impl Role {
    /// Whether this role may run a command of `class`.
    pub fn allows(self, class: CommandClass) -> bool {
        match class {
            CommandClass::Control => true,
            CommandClass::Read => self >= Role::ReadOnly,
            CommandClass::Write => self >= Role::ReadWrite,
        }
    }

    /// Parse a config name (`none`, `readonly`, `readwrite`).
    pub fn parse(name: &str) -> Result<Role, String> {
        match name.trim().to_ascii_lowercase().as_str() {
            "none" | "deny" => Ok(Role::None),
            "readonly" | "read" | "ro" => Ok(Role::ReadOnly),
            "readwrite" | "write" | "rw" => Ok(Role::ReadWrite),
            other => Err(format!("unknown role {other:?}")),
        }
    }

    /// The lowercase config/display name.
    pub fn name(self) -> &'static str {
        match self {
            Role::None => "none",
            Role::ReadOnly => "readonly",
            Role::ReadWrite => "readwrite",
        }
    }
}

/// An authenticated identity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Principal {
    /// Display name (never the token).
    pub name: Arc<str>,
    /// Granted role.
    pub role: Role,
}

/// One configured token.
#[derive(Clone, Debug)]
pub struct TokenSpec {
    /// Principal name the token authenticates as.
    pub name: String,
    /// The secret presented via `AUTH`.
    pub token: String,
    /// Role granted on login.
    pub role: Role,
}

/// Auth layer configuration.
#[derive(Clone, Debug)]
pub struct AuthConfig {
    /// Tokens loaded at boot.
    pub tokens: Vec<TokenSpec>,
    /// Role of sessions that never ran `AUTH`.
    pub anon_role: Role,
}

impl Default for AuthConfig {
    /// Open by default: anonymous sessions keep full access until a
    /// deployment narrows the policy (no token, no lock-out surprises).
    fn default() -> Self {
        AuthConfig {
            tokens: Vec::new(),
            anon_role: Role::ReadWrite,
        }
    }
}

/// RCU-published ambient policy.
#[derive(Clone, Debug)]
struct AclPolicy {
    anon_role: Role,
}

/// Shared auth state: lock-free readers + mutex-serialized admin
/// writers.
pub struct AuthState {
    tokens: SwmrHashReader<String, Principal>,
    policy: RcuReader<AclPolicy>,
    admin: Mutex<AuthAdmin>,
}

struct AuthAdmin {
    tokens: SwmrHashWriter<String, Principal>,
    policy: RcuWriter<AclPolicy>,
}

impl AuthState {
    /// Add or replace a token at runtime.
    pub(crate) fn set_token(&self, name: &str, token: &str, role: Role) {
        let mut admin = self.admin.lock().expect("auth admin");
        admin.tokens.insert(
            token.to_string(),
            Principal {
                name: Arc::from(name),
                role,
            },
        );
    }

    /// RCU-publish a new anonymous role.
    pub(crate) fn publish_anon_role(&self, role: Role) {
        let mut admin = self.admin.lock().expect("auth admin");
        admin.policy.update(|_| AclPolicy { anon_role: role });
    }

    pub(crate) fn anon_role(&self) -> Role {
        self.policy.read(|p| p.anon_role)
    }
}

/// The auth [`Layer`].
pub struct AuthLayer {
    state: Arc<AuthState>,
    metrics: Arc<PipelineMetrics>,
}

impl AuthLayer {
    /// Build the layer, loading `config.tokens` into the table.
    pub fn new(config: &AuthConfig, metrics: Arc<PipelineMetrics>) -> Self {
        let (mut writer, reader) = swmr_hash_map(64);
        for spec in &config.tokens {
            writer.insert(
                spec.token.clone(),
                Principal {
                    name: Arc::from(spec.name.as_str()),
                    role: spec.role,
                },
            );
        }
        let (policy_writer, policy_reader) = rcu_cell(AclPolicy {
            anon_role: config.anon_role,
        });
        AuthLayer {
            state: Arc::new(AuthState {
                tokens: reader,
                policy: policy_reader,
                admin: Mutex::new(AuthAdmin {
                    tokens: writer,
                    policy: policy_writer,
                }),
            }),
            metrics,
        }
    }

    /// The shared state (for the stack's runtime admin API).
    pub(crate) fn state(&self) -> Arc<AuthState> {
        Arc::clone(&self.state)
    }
}

impl AuthLayer {
    /// Wrap a concrete inner service, preserving its type — the typed
    /// combinator the fused stack composes with.
    pub fn wrap_typed<S: Service>(&self, _session: &Session, inner: S) -> AuthService<S> {
        AuthService {
            state: Arc::clone(&self.state),
            metrics: Arc::clone(&self.metrics),
            principal: None,
            inner,
        }
    }
}

impl Layer for AuthLayer {
    fn kind(&self) -> LayerKind {
        LayerKind::Auth
    }

    fn wrap(&self, session: &Session, inner: BoxService) -> BoxService {
        Box::new(self.wrap_typed(session, inner))
    }
}

/// The auth layer's per-session service, generic over the inner
/// service it wraps.
pub struct AuthService<S> {
    pub(crate) state: Arc<AuthState>,
    pub(crate) metrics: Arc<PipelineMetrics>,
    /// Session state: who this connection authenticated as.
    pub(crate) principal: Option<Principal>,
    pub(crate) inner: S,
}

impl<S: Service> Service for AuthService<S> {
    /// Batch path: **one** role lookup for the whole burst — the
    /// session principal (or the RCU-published anon policy) is resolved
    /// once, then every command is a cheap class check against that
    /// role. Admitted commands travel downstream as one inner batch;
    /// denied ones are rejected in place, order preserved. A burst
    /// containing `AUTH` changes the session's role mid-stream, so it
    /// falls back to the sequential path (logins are not hot).
    fn call_batch(&mut self, reqs: Vec<Request>) -> Vec<Response> {
        if reqs.iter().any(|r| matches!(r.command, Command::Auth(_))) {
            return reqs.into_iter().map(|req| self.call(req)).collect();
        }
        let admission_t = crate::span::start();
        let role = match &self.principal {
            Some(p) => p.role,
            None => self.state.anon_role(),
        };
        // Fast path: everything admitted (the common case for an
        // authenticated or read-write session) — no slot bookkeeping.
        if reqs.iter().all(|req| role.allows(req.command.class())) {
            self.metrics.auth_admitted.add(reqs.len() as u64);
            crate::span::record(LayerKind::Auth, admission_t);
            return self.inner.call_batch(reqs);
        }
        crate::span::record(LayerKind::Auth, admission_t);
        let metrics = Arc::clone(&self.metrics);
        crate::pipeline::partition_batch(&mut self.inner, reqs, |req| {
            if role.allows(req.command.class()) {
                metrics.auth_admitted.increment();
                None
            } else {
                metrics.auth_denied.increment();
                Some(Response::rejection(
                    "AUTH",
                    format_args!(
                        "{} requires {}, session role is {}",
                        req.command.verb(),
                        match req.command.class() {
                            CommandClass::Write => Role::ReadWrite.name(),
                            _ => Role::ReadOnly.name(),
                        },
                        role.name()
                    ),
                ))
            }
        })
    }

    fn call(&mut self, req: Request) -> Response {
        let admission_t = crate::span::start();
        if let Command::Auth(token) = &req.command {
            let out = match self.state.tokens.get(token) {
                Some(principal) => {
                    self.metrics.auth_logins.increment();
                    self.principal = Some(principal);
                    Response::ok(Reply::Status("OK"))
                }
                None => {
                    self.metrics.auth_denied.increment();
                    Response::rejection("AUTH", "bad token")
                }
            };
            crate::span::record(LayerKind::Auth, admission_t);
            return out;
        }
        let role = match &self.principal {
            Some(p) => p.role,
            None => self.state.anon_role(),
        };
        if role.allows(req.command.class()) {
            self.metrics.auth_admitted.increment();
            crate::span::record(LayerKind::Auth, admission_t);
            self.inner.call(req)
        } else {
            crate::span::record(LayerKind::Auth, admission_t);
            self.metrics.auth_denied.increment();
            Response::rejection(
                "AUTH",
                format_args!(
                    "{} requires {}, session role is {}",
                    req.command.verb(),
                    match req.command.class() {
                        CommandClass::Write => Role::ReadWrite.name(),
                        _ => Role::ReadOnly.name(),
                    },
                    role.name()
                ),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Ok200;
    impl Service for Ok200 {
        fn call(&mut self, _req: Request) -> Response {
            Response::ok(Reply::Status("OK"))
        }
    }

    fn layer(anon: Role) -> (AuthLayer, Arc<PipelineMetrics>) {
        let metrics = Arc::new(PipelineMetrics::new());
        let config = AuthConfig {
            tokens: vec![TokenSpec {
                name: "writer".into(),
                token: "sekrit".into(),
                role: Role::ReadWrite,
            }],
            anon_role: anon,
        };
        (AuthLayer::new(&config, Arc::clone(&metrics)), metrics)
    }

    fn session() -> Session {
        Session {
            client: "t:1".into(),
        }
    }

    fn set() -> Request {
        Request::new(Command::Set("k".into(), "v".into()))
    }

    #[test]
    fn anon_readonly_rejects_writes_until_auth() {
        let (layer, metrics) = layer(Role::ReadOnly);
        let mut svc = layer.wrap(&session(), Box::new(Ok200));
        // Reads pass, writes are rejected with the structured tag.
        assert!(matches!(
            svc.call(Request::new(Command::Get("k".into()))).reply,
            Reply::Status(_)
        ));
        match svc.call(set()).reply {
            Reply::Error(e) => assert!(e.starts_with("AUTH "), "got {e:?}"),
            other => panic!("expected AUTH rejection, got {other:?}"),
        }
        // Login upgrades the session.
        assert!(matches!(
            svc.call(Request::new(Command::Auth("sekrit".into()))).reply,
            Reply::Status(_)
        ));
        assert!(matches!(svc.call(set()).reply, Reply::Status(_)));
        assert_eq!(metrics.auth_logins.sum(), 1);
        assert!(metrics.auth_denied.sum() >= 1);
    }

    #[test]
    fn bad_tokens_are_denied_and_do_not_upgrade() {
        let (layer, _) = layer(Role::ReadOnly);
        let mut svc = layer.wrap(&session(), Box::new(Ok200));
        assert!(matches!(
            svc.call(Request::new(Command::Auth("wrong".into()))).reply,
            Reply::Error(_)
        ));
        assert!(matches!(svc.call(set()).reply, Reply::Error(_)));
    }

    #[test]
    fn control_verbs_pass_even_for_role_none() {
        let (layer, _) = layer(Role::None);
        let mut svc = layer.wrap(&session(), Box::new(Ok200));
        assert!(matches!(
            svc.call(Request::new(Command::Ping)).reply,
            Reply::Status(_)
        ));
        assert!(matches!(
            svc.call(Request::new(Command::Get("k".into()))).reply,
            Reply::Error(_)
        ));
    }

    #[test]
    fn batch_resolves_the_role_once_and_preserves_order() {
        let (layer, metrics) = layer(Role::ReadOnly);
        let mut svc = layer.wrap(&session(), Box::new(Ok200));
        let resps = svc.call_batch(vec![
            Request::new(Command::Get("a".into())),
            set(), // denied: readonly
            Request::new(Command::Ping),
            set(), // denied again
            Request::new(Command::Get("b".into())),
        ]);
        let ok = |r: &Response| matches!(r.reply, Reply::Status(_));
        assert!(ok(&resps[0]));
        assert!(matches!(&resps[1].reply, Reply::Error(e) if e.starts_with("AUTH ")));
        assert!(ok(&resps[2]));
        assert!(matches!(resps[3].reply, Reply::Error(_)));
        assert!(ok(&resps[4]));
        assert_eq!(metrics.auth_admitted.sum(), 3);
        assert_eq!(metrics.auth_denied.sum(), 2);
    }

    #[test]
    fn batch_with_auth_falls_back_to_sequential_login() {
        let (layer, metrics) = layer(Role::ReadOnly);
        let mut svc = layer.wrap(&session(), Box::new(Ok200));
        // The login in the middle must upgrade the commands after it —
        // exactly what the sequential path does.
        let resps = svc.call_batch(vec![
            set(), // still anon: denied
            Request::new(Command::Auth("sekrit".into())),
            set(), // now readwrite: admitted
        ]);
        assert!(matches!(resps[0].reply, Reply::Error(_)));
        assert!(matches!(resps[1].reply, Reply::Status(_)));
        assert!(matches!(resps[2].reply, Reply::Status(_)));
        assert_eq!(metrics.auth_logins.sum(), 1);
    }

    #[test]
    fn rcu_policy_reload_is_seen_by_live_sessions() {
        let (layer, _) = layer(Role::ReadOnly);
        let state = layer.state();
        let mut svc = layer.wrap(&session(), Box::new(Ok200));
        assert!(matches!(svc.call(set()).reply, Reply::Error(_)));
        state.publish_anon_role(Role::ReadWrite);
        assert!(matches!(svc.call(set()).reply, Reply::Status(_)));
    }

    #[test]
    fn runtime_token_insertion_takes_effect() {
        let (layer, _) = layer(Role::ReadOnly);
        let state = layer.state();
        let mut svc = layer.wrap(&session(), Box::new(Ok200));
        assert!(matches!(
            svc.call(Request::new(Command::Auth("newtok".into()))).reply,
            Reply::Error(_)
        ));
        state.set_token("ops", "newtok", Role::ReadWrite);
        assert!(matches!(
            svc.call(Request::new(Command::Auth("newtok".into()))).reply,
            Reply::Status(_)
        ));
        assert!(matches!(svc.call(set()).reply, Reply::Status(_)));
    }
}
