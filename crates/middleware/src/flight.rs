//! The request flight recorder: completed cross-thread trace trees.
//!
//! Where the slowlog captures *that* a command was slow, the flight
//! recorder captures *where the time went*: one [`TraceTree`] per
//! sampled (or over-threshold) command/burst, carrying the
//! connection-thread per-layer admission segments harvested from the
//! span scope **plus** the store-side segments stamped by the
//! shard-owner threads (queue wait and apply time per mutation). The
//! tree therefore spans both execution stages — the connection thread
//! and the shard thread — which no single-thread profile can see.
//!
//! The ring is the same lock-free shape as the slowlog: an
//! [`AtomicLong`] write cursor claimed with one `get_and_increment`,
//! and one epoch-reclaimed [`AtomicRef`] slot per position. Writers
//! never block each other or readers; a `TRACE GET` taken mid-write
//! sees the previous tree in that slot.
//!
//! Exposure: `TRACE GET|LEN|RESET` over the wire (answered by the
//! trace layer), and `/trace` as JSON on the metrics responder.

use crate::pipeline::{LayerKind, LAYER_COUNT};
use dego_juc::{AtomicLong, AtomicRef};
use std::fmt::Write as _;
use std::sync::Arc;

/// Milliseconds since the Unix epoch — the wall-clock arrival stamp
/// carried by slowlog entries and trace trees so they can be
/// correlated with external logs.
pub fn unix_ms_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// One store-side span: a mutation's life on its shard-owner thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreSegment {
    /// The shard whose owner applied the mutation.
    pub shard: usize,
    /// Enqueue → apply start: queue wait, including time spent behind
    /// earlier mutations of the same drained batch.
    pub queue_us: u64,
    /// Apply start → applied.
    pub apply_us: u64,
}

/// A completed request trace: connection-thread layer segments plus
/// the store-side segments collected across the queue boundary.
#[derive(Clone, Debug)]
pub struct TraceTree {
    /// Monotonic id (survives [`FlightRecorder::reset`]).
    pub id: u64,
    /// Wall-clock arrival, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Peer address of the connection that issued it.
    pub client: Arc<str>,
    /// Verb, or `"BATCH"` for a pipelined burst.
    pub verb: &'static str,
    /// Command class name (`read`/`write`/`control`, `batch` for bursts).
    pub class: &'static str,
    /// Commands in the burst (1 for a singleton).
    pub burst: usize,
    /// End-to-end wall-clock time through the whole stack.
    pub total_us: u64,
    /// Per-layer admission cost on the connection thread; `None` for
    /// layers the span never touched.
    pub layers: [Option<u64>; LAYER_COUNT],
    /// Store-side segments, one per mutation the request enqueued, in
    /// ack-arrival order.
    pub store: Vec<StoreSegment>,
}

impl TraceTree {
    /// The `TRACE GET` wire line:
    /// `id=0 unix_ms=1722470400000 client=127.0.0.1:4242 verb=SET class=write burst=1 total_us=31050 span=conn/trace:3,conn/ttl:1,shard0/queue:12,shard0/apply:30021`
    /// (`span=-` when no segment was recorded).
    pub fn render_line(&self) -> String {
        let mut line = format!(
            "id={} unix_ms={} client={} verb={} class={} burst={} total_us={} span=",
            self.id, self.unix_ms, self.client, self.verb, self.class, self.burst, self.total_us
        );
        let mut any = false;
        for kind in LayerKind::ALL {
            if let Some(us) = self.layers[kind.index()] {
                if any {
                    line.push(',');
                }
                let _ = write!(line, "conn/{}:{us}", kind.name());
                any = true;
            }
        }
        for seg in &self.store {
            if any {
                line.push(',');
            }
            let _ = write!(
                line,
                "shard{}/queue:{},shard{}/apply:{}",
                seg.shard, seg.queue_us, seg.shard, seg.apply_us
            );
            any = true;
        }
        if !any {
            line.push('-');
        }
        line
    }

    /// The `/trace` endpoint's JSON object: metadata plus a flat
    /// `spans` array, each span tagged with the thread it ran on.
    pub fn render_json(&self) -> String {
        let mut out = format!(
            "{{\"id\":{},\"unix_ms\":{},\"client\":\"{}\",\"verb\":\"{}\",\"class\":\"{}\",\"burst\":{},\"total_us\":{},\"spans\":[",
            self.id,
            self.unix_ms,
            escape_json(&self.client),
            self.verb,
            self.class,
            self.burst,
            self.total_us
        );
        let mut any = false;
        for kind in LayerKind::ALL {
            if let Some(us) = self.layers[kind.index()] {
                if any {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"thread\":\"conn\",\"name\":\"{}\",\"dur_us\":{us}}}",
                    kind.name()
                );
                any = true;
            }
        }
        for seg in &self.store {
            if any {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"thread\":\"shard{sh}\",\"name\":\"queue_wait\",\"dur_us\":{q}}},{{\"thread\":\"shard{sh}\",\"name\":\"apply\",\"dur_us\":{a}}}",
                sh = seg.shard,
                q = seg.queue_us,
                a = seg.apply_us
            );
            any = true;
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes) —
/// client strings are peer addresses, but never trust them raw.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The lock-free flight-recorder ring shared by every connection chain.
#[derive(Debug)]
pub struct FlightRecorder {
    threshold_us: u64,
    slots: Vec<AtomicRef<Arc<TraceTree>>>,
    /// Write cursor; also the source of monotonic tree ids.
    head: AtomicLong,
}

impl FlightRecorder {
    /// A ring holding the `capacity` most recent trees whose total
    /// time is at or above `threshold_us`. Capacity 0 disables capture
    /// entirely; the default threshold 0 retains every sampled tree.
    pub fn new(threshold_us: u64, capacity: usize) -> Self {
        FlightRecorder {
            threshold_us,
            slots: (0..capacity).map(|_| AtomicRef::empty()).collect(),
            head: AtomicLong::new(0),
        }
    }

    /// The retention threshold in microseconds.
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us
    }

    /// Offer a completed tree; it is stored only when it crosses the
    /// threshold and the ring has capacity. Returns whether it was
    /// captured.
    #[allow(clippy::too_many_arguments)]
    pub fn offer(
        &self,
        client: &Arc<str>,
        verb: &'static str,
        class: &'static str,
        burst: usize,
        total_us: u64,
        layers: [Option<u64>; LAYER_COUNT],
        store: Vec<StoreSegment>,
    ) -> bool {
        if self.slots.is_empty() || total_us < self.threshold_us {
            return false;
        }
        let id = self.head.get_and_increment() as u64;
        let slot = &self.slots[(id as usize) % self.slots.len()];
        slot.set(Arc::new(TraceTree {
            id,
            unix_ms: unix_ms_now(),
            client: Arc::clone(client),
            verb,
            class,
            burst,
            total_us,
            layers,
            store,
        }));
        true
    }

    /// Snapshot the ring, sorted slowest-first (ties: newest first).
    pub fn entries(&self) -> Vec<Arc<TraceTree>> {
        let mut out: Vec<Arc<TraceTree>> = self.slots.iter().filter_map(|s| s.get()).collect();
        out.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(b.id.cmp(&a.id)));
        out
    }

    /// Occupied slots (saturates at capacity).
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| !s.is_empty()).count()
    }

    /// Whether the ring currently holds no trees.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_empty())
    }

    /// Trees ever captured (not clamped by capacity or reset).
    pub fn total(&self) -> u64 {
        self.head.get() as u64
    }

    /// Drop every tree; ids keep counting from where they were.
    pub fn reset(&self) {
        for slot in &self.slots {
            slot.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client() -> Arc<str> {
        Arc::from("test:1")
    }

    fn layers_with(kind: LayerKind, us: u64) -> [Option<u64>; LAYER_COUNT] {
        let mut layers = [None; LAYER_COUNT];
        layers[kind.index()] = Some(us);
        layers
    }

    #[test]
    fn render_line_spans_both_threads() {
        let tree = TraceTree {
            id: 0,
            unix_ms: 1_722_470_400_000,
            client: client(),
            verb: "SET",
            class: "write",
            burst: 1,
            total_us: 31_050,
            layers: layers_with(LayerKind::Trace, 3),
            store: vec![StoreSegment {
                shard: 0,
                queue_us: 12,
                apply_us: 30_021,
            }],
        };
        assert_eq!(
            tree.render_line(),
            "id=0 unix_ms=1722470400000 client=test:1 verb=SET class=write burst=1 \
             total_us=31050 span=conn/trace:3,shard0/queue:12,shard0/apply:30021"
        );
    }

    #[test]
    fn render_line_with_no_segments_is_dash() {
        let tree = TraceTree {
            id: 4,
            unix_ms: 7,
            client: client(),
            verb: "PING",
            class: "control",
            burst: 1,
            total_us: 2,
            layers: [None; LAYER_COUNT],
            store: Vec::new(),
        };
        assert!(tree.render_line().ends_with("span=-"));
    }

    #[test]
    fn render_json_carries_store_segments() {
        let tree = TraceTree {
            id: 1,
            unix_ms: 99,
            client: client(),
            verb: "SET",
            class: "write",
            burst: 1,
            total_us: 50,
            layers: layers_with(LayerKind::Auth, 5),
            store: vec![StoreSegment {
                shard: 2,
                queue_us: 10,
                apply_us: 30,
            }],
        };
        let json = tree.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"spans\":["), "{json}");
        assert!(
            json.contains("{\"thread\":\"conn\",\"name\":\"auth\",\"dur_us\":5}"),
            "{json}"
        );
        assert!(
            json.contains("{\"thread\":\"shard2\",\"name\":\"queue_wait\",\"dur_us\":10}"),
            "{json}"
        );
        assert!(
            json.contains("{\"thread\":\"shard2\",\"name\":\"apply\",\"dur_us\":30}"),
            "{json}"
        );
    }

    #[test]
    fn json_escaping_neutralizes_hostile_clients() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }

    #[test]
    fn threshold_filters_and_capacity_rings() {
        let rec = FlightRecorder::new(100, 2);
        assert!(!rec.offer(&client(), "GET", "read", 1, 99, [None; LAYER_COUNT], vec![]));
        assert!(rec.offer(
            &client(),
            "SET",
            "write",
            1,
            500,
            [None; LAYER_COUNT],
            vec![]
        ));
        assert!(rec.offer(
            &client(),
            "DEL",
            "write",
            1,
            200,
            [None; LAYER_COUNT],
            vec![]
        ));
        assert!(rec.offer(
            &client(),
            "INCR",
            "write",
            1,
            300,
            [None; LAYER_COUNT],
            vec![]
        ));
        let entries = rec.entries();
        assert_eq!(entries.len(), 2, "ring keeps the most recent capacity");
        assert_eq!(entries[0].total_us, 300, "slowest-first among survivors");
        assert_eq!(rec.total(), 3);
    }

    #[test]
    fn reset_clears_but_ids_stay_monotonic() {
        let rec = FlightRecorder::new(0, 4);
        rec.offer(&client(), "GET", "read", 1, 1, [None; LAYER_COUNT], vec![]);
        rec.offer(&client(), "GET", "read", 1, 2, [None; LAYER_COUNT], vec![]);
        rec.reset();
        assert_eq!(rec.len(), 0);
        assert!(rec.is_empty());
        rec.offer(&client(), "GET", "read", 1, 3, [None; LAYER_COUNT], vec![]);
        assert_eq!(rec.entries()[0].id, 2, "ids continue across reset");
    }

    #[test]
    fn zero_capacity_disables_capture() {
        let rec = FlightRecorder::new(0, 0);
        assert!(!rec.offer(
            &client(),
            "GET",
            "read",
            1,
            u64::MAX,
            [None; LAYER_COUNT],
            vec![]
        ));
        assert!(rec.entries().is_empty());
    }
}
