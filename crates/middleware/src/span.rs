//! Sampled span scopes: per-layer admission-cost attribution.
//!
//! The trace layer (outermost) decides once per command or burst
//! whether to sample a span ([`enter`]); while a span is active, every
//! layer brackets its own admission work with [`start`]/[`record`],
//! which accumulates microseconds into a thread-local cost table keyed
//! by [`LayerKind`]. When the guard is finished the trace layer
//! harvests the table into the shared per-layer histograms.
//!
//! Thread-locals are sound here by construction: a connection's service
//! chain ([`crate::pipeline::BoxService`]) is built and driven entirely
//! on that connection's thread (no `Send` bound), so an active span can
//! never be observed from another chain.
//!
//! The unsampled fast path is one thread-local boolean load per layer
//! ([`start`] returns `None` and [`record`] is a no-op), which is what
//! keeps the default 1-in-N sampling overhead negligible.

use crate::pipeline::{LayerKind, LAYER_COUNT};
use std::cell::Cell;
use std::marker::PhantomData;
use std::time::Instant;

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static COSTS: Cell<[u64; LAYER_COUNT]> = const { Cell::new([0; LAYER_COUNT]) };
    static TOUCHED: Cell<[bool; LAYER_COUNT]> = const { Cell::new([false; LAYER_COUNT]) };
}

/// An active span scope. Dropping it (or calling
/// [`SpanGuard::finish`]) deactivates the thread's span.
pub struct SpanGuard {
    /// Chains are single-threaded; keep the guard that way too.
    _not_send: PhantomData<*const ()>,
}

/// Begin a sampled span on this thread, resetting the cost table.
pub fn enter() -> SpanGuard {
    ACTIVE.with(|a| a.set(true));
    COSTS.with(|c| c.set([0; LAYER_COUNT]));
    TOUCHED.with(|t| t.set([false; LAYER_COUNT]));
    SpanGuard {
        _not_send: PhantomData,
    }
}

impl SpanGuard {
    /// End the span and harvest the per-layer costs: `Some(micros)`
    /// for every layer that recorded at least one segment, `None` for
    /// layers the span never saw (not configured, or exempt paths).
    pub fn finish(self) -> [Option<u64>; LAYER_COUNT] {
        let costs = COSTS.with(|c| c.get());
        let touched = TOUCHED.with(|t| t.get());
        let mut out = [None; LAYER_COUNT];
        for i in 0..LAYER_COUNT {
            if touched[i] {
                out[i] = Some(costs[i]);
            }
        }
        out
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        ACTIVE.with(|a| a.set(false));
    }
}

/// The start of one layer segment: `Some(now)` when a span is active
/// on this thread, `None` (one thread-local load) otherwise.
#[inline]
pub fn start() -> Option<Instant> {
    if ACTIVE.with(|a| a.get()) {
        Some(Instant::now())
    } else {
        None
    }
}

/// Close a segment opened by [`start`], charging its elapsed
/// microseconds to `kind`. A `None` segment (no active span) is free.
#[inline]
pub fn record(kind: LayerKind, segment: Option<Instant>) {
    let Some(started) = segment else { return };
    let us = started.elapsed().as_micros() as u64;
    let i = kind.index();
    COSTS.with(|c| {
        let mut costs = c.get();
        costs[i] = costs[i].saturating_add(us);
        c.set(costs);
    });
    TOUCHED.with(|t| {
        let mut touched = t.get();
        touched[i] = true;
        t.set(touched);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_span_means_free_segments() {
        assert!(start().is_none());
        record(LayerKind::Auth, None); // must not panic or record
    }

    #[test]
    fn segments_accumulate_per_layer_and_harvest() {
        let guard = enter();
        let t = start();
        assert!(t.is_some(), "span active");
        record(LayerKind::Auth, t);
        record(LayerKind::Auth, start()); // second segment, same layer
        record(LayerKind::Ttl, start());
        let costs = guard.finish();
        assert!(costs[LayerKind::Auth.index()].is_some());
        assert!(costs[LayerKind::Ttl.index()].is_some());
        assert_eq!(costs[LayerKind::Deadline.index()], None, "never touched");
        assert!(start().is_none(), "span closed after finish");
    }

    #[test]
    fn dropping_the_guard_deactivates_the_span() {
        {
            let _guard = enter();
            assert!(start().is_some());
        }
        assert!(start().is_none());
    }

    #[test]
    fn reentering_resets_stale_costs() {
        let guard = enter();
        record(LayerKind::Trace, start());
        drop(guard);
        let guard = enter();
        let costs = guard.finish();
        assert_eq!(costs, [None; LAYER_COUNT], "fresh span starts clean");
    }
}
