//! Sampled span scopes: per-layer admission-cost attribution.
//!
//! The trace layer (outermost) decides once per command or burst
//! whether to sample a span ([`enter`]); while a span is active, every
//! layer brackets its own admission work with [`start`]/[`record`],
//! which accumulates microseconds into a thread-local cost table keyed
//! by [`LayerKind`]. When the guard is finished the trace layer
//! harvests the table into the shared per-layer histograms.
//!
//! Thread-locals are sound here by construction: a connection's service
//! chain ([`crate::pipeline::BoxService`]) is built and driven entirely
//! on that connection's thread (no `Send` bound), so an active span can
//! never be observed from another chain.
//!
//! The unsampled fast path is one thread-local boolean load per layer
//! ([`start`] returns `None` and [`record`] is a no-op), which is what
//! keeps the default 1-in-N sampling overhead negligible.

use crate::flight::StoreSegment;
use crate::pipeline::{LayerKind, LAYER_COUNT};
use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::time::Instant;

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static COSTS: Cell<[u64; LAYER_COUNT]> = const { Cell::new([0; LAYER_COUNT]) };
    static TOUCHED: Cell<[bool; LAYER_COUNT]> = const { Cell::new([false; LAYER_COUNT]) };
    /// Store-side segments delivered back across the queue boundary:
    /// the shard owner stamps them into the ack envelope, and the
    /// connection thread deposits them here while collecting replies.
    static STORE: RefCell<Vec<StoreSegment>> = const { RefCell::new(Vec::new()) };
}

/// An active span scope. Dropping it (or calling
/// [`SpanGuard::finish`]) deactivates the thread's span.
pub struct SpanGuard {
    /// Chains are single-threaded; keep the guard that way too.
    _not_send: PhantomData<*const ()>,
}

/// Everything a finished span saw: per-layer admission costs from this
/// thread plus the store-side segments the shard owners sent back.
#[derive(Debug)]
pub struct SpanHarvest {
    /// `Some(micros)` for every layer that recorded at least one
    /// segment, `None` for layers the span never saw.
    pub layer_us: [Option<u64>; LAYER_COUNT],
    /// Shard-thread segments in ack-arrival order.
    pub store: Vec<StoreSegment>,
}

/// Begin a sampled span on this thread, resetting the cost table.
pub fn enter() -> SpanGuard {
    ACTIVE.with(|a| a.set(true));
    COSTS.with(|c| c.set([0; LAYER_COUNT]));
    TOUCHED.with(|t| t.set([false; LAYER_COUNT]));
    STORE.with(|s| s.borrow_mut().clear());
    SpanGuard {
        _not_send: PhantomData,
    }
}

impl SpanGuard {
    /// End the span and harvest its segments.
    pub fn finish(self) -> SpanHarvest {
        let costs = COSTS.with(|c| c.get());
        let touched = TOUCHED.with(|t| t.get());
        let mut layer_us = [None; LAYER_COUNT];
        for i in 0..LAYER_COUNT {
            if touched[i] {
                layer_us[i] = Some(costs[i]);
            }
        }
        SpanHarvest {
            layer_us,
            store: STORE.with(|s| std::mem::take(&mut *s.borrow_mut())),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        ACTIVE.with(|a| a.set(false));
    }
}

/// Whether a span is active on this thread — the one-boolean probe the
/// server uses to decide if a mutation envelope should carry timing.
#[inline]
pub fn active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// The start of one layer segment: `Some(now)` when a span is active
/// on this thread, `None` (one thread-local load) otherwise.
#[inline]
pub fn start() -> Option<Instant> {
    if active() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Deposit a store-side segment received in an ack envelope. A no-op
/// when no span is active (late acks, unsampled requests).
#[inline]
pub fn record_store(seg: StoreSegment) {
    if active() {
        STORE.with(|s| s.borrow_mut().push(seg));
    }
}

/// Close a segment opened by [`start`], charging its elapsed
/// microseconds to `kind`. A `None` segment (no active span) is free.
#[inline]
pub fn record(kind: LayerKind, segment: Option<Instant>) {
    let Some(started) = segment else { return };
    let us = started.elapsed().as_micros() as u64;
    let i = kind.index();
    COSTS.with(|c| {
        let mut costs = c.get();
        costs[i] = costs[i].saturating_add(us);
        c.set(costs);
    });
    TOUCHED.with(|t| {
        let mut touched = t.get();
        touched[i] = true;
        t.set(touched);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_span_means_free_segments() {
        assert!(start().is_none());
        record(LayerKind::Auth, None); // must not panic or record
    }

    #[test]
    fn segments_accumulate_per_layer_and_harvest() {
        let guard = enter();
        let t = start();
        assert!(t.is_some(), "span active");
        record(LayerKind::Auth, t);
        record(LayerKind::Auth, start()); // second segment, same layer
        record(LayerKind::Ttl, start());
        let harvest = guard.finish();
        assert!(harvest.layer_us[LayerKind::Auth.index()].is_some());
        assert!(harvest.layer_us[LayerKind::Ttl.index()].is_some());
        assert_eq!(
            harvest.layer_us[LayerKind::Deadline.index()],
            None,
            "never touched"
        );
        assert!(start().is_none(), "span closed after finish");
    }

    #[test]
    fn store_segments_ride_the_harvest_only_while_active() {
        let seg = StoreSegment {
            shard: 1,
            queue_us: 10,
            apply_us: 20,
        };
        record_store(seg); // no span: dropped
        let guard = enter();
        assert!(active());
        record_store(seg);
        let harvest = guard.finish();
        assert_eq!(harvest.store, vec![seg], "only the in-span deposit kept");
        assert!(!active());
        // A fresh span starts with an empty store table.
        let guard = enter();
        assert!(guard.finish().store.is_empty());
    }

    #[test]
    fn dropping_the_guard_deactivates_the_span() {
        {
            let _guard = enter();
            assert!(start().is_some());
        }
        assert!(start().is_none());
    }

    #[test]
    fn reentering_resets_stale_costs() {
        let guard = enter();
        record(LayerKind::Trace, start());
        drop(guard);
        let guard = enter();
        let harvest = guard.finish();
        assert_eq!(
            harvest.layer_us, [None; LAYER_COUNT],
            "fresh span starts clean"
        );
    }
}
