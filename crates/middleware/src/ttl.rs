//! TTL/expiry: an expiry sidecar in front of the store.
//!
//! The store itself stays TTL-ignorant; this layer keeps a
//! [`SegmentedHashMap`] of `key → expires_at` sidecar entries.
//! `EXPIRE key millis` arms a timer on an existing key (probing
//! existence with a downstream `GET`); a `GET` whose sidecar timer has
//! lapsed is answered `_` (nil) and the stale row is reaped with a
//! synthesized downstream `DEL` — lazy expiry, Redis-style. A `SET` or
//! `DEL` passing through clears the key's timer; `INCR` (a
//! read-modify-write) respects a lapsed timer by reaping first, so it
//! restarts from zero instead of resurrecting an expired value.
//!
//! **Safety of the rewrite-vs-expiry race.** The destructive half of a
//! reap (the synthesized `DEL`) and every store mutation on a *timed*
//! key are serialized under the sidecar's writer mutex, and the reap
//! re-checks the entry after acquiring it. A mutation that won the
//! lock first removed the entry, so the reap aborts; a mutation that
//! lost waits until the reap's `DEL` was acknowledged, so its write
//! lands after. Either way an acknowledged write is never destroyed by
//! an expiry.
//!
//! Hot path: one lock-free sidecar lookup per `GET`/`SET`/`DEL`/
//! `INCR`; keys without timers never touch the mutex, and timed keys
//! pay it only on mutation or reap (live reads stay lock-free).

use crate::metrics::PipelineMetrics;
use crate::pipeline::{BoxService, Layer, LayerKind, Request, Response, Service, Session};
use crate::protocol::{Command, Reply};
use dego_core::{SegmentationKind, SegmentedHashMap, SegmentedHashMapWriter};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Sidecar entry: when the key's value expires (micros since the layer
/// epoch).
#[derive(Debug)]
pub(crate) struct TtlEntry {
    expires_at_us: AtomicU64,
}

pub(crate) struct TtlState {
    epoch: Instant,
    pub(crate) sidecar: Arc<SegmentedHashMap<String, Arc<TtlEntry>>>,
    /// Serializes entry insert/remove *and* every cross-plane sequence
    /// (reap `DEL`s, mutations on timed keys) — see the module doc.
    writer: Mutex<SegmentedHashMapWriter<String, Arc<TtlEntry>>>,
    pub(crate) metrics: Arc<PipelineMetrics>,
}

impl TtlState {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Whether `key` currently has a *lapsed* entry (unlocked probe).
    fn lapsed(&self, entry: &TtlEntry) -> bool {
        self.now_us() >= entry.expires_at_us.load(Ordering::Acquire)
    }
}

/// The TTL [`Layer`].
pub struct TtlLayer {
    state: Arc<TtlState>,
}

impl TtlLayer {
    /// Build the layer with its shared sidecar map.
    pub fn new(metrics: Arc<PipelineMetrics>) -> Self {
        let sidecar = SegmentedHashMap::new(1, 1024, SegmentationKind::Hash);
        let writer = Mutex::new(sidecar.writer());
        TtlLayer {
            state: Arc::new(TtlState {
                epoch: Instant::now(),
                sidecar,
                writer,
                metrics,
            }),
        }
    }
}

impl TtlLayer {
    /// Wrap a concrete inner service, preserving its type — the typed
    /// combinator the fused stack composes with.
    pub fn wrap_typed<S: Service>(&self, _session: &Session, inner: S) -> TtlService<S> {
        TtlService {
            state: Arc::clone(&self.state),
            inner,
        }
    }
}

impl Layer for TtlLayer {
    fn kind(&self) -> LayerKind {
        LayerKind::Ttl
    }

    fn wrap(&self, session: &Session, inner: BoxService) -> BoxService {
        Box::new(self.wrap_typed(session, inner))
    }
}

/// The TTL layer's per-session service, generic over the inner service
/// it wraps (the innermost layer: `S` is usually the store executor).
pub struct TtlService<S> {
    pub(crate) state: Arc<TtlState>,
    pub(crate) inner: S,
}

type SidecarWriter<'a> = MutexGuard<'a, SegmentedHashMapWriter<String, Arc<TtlEntry>>>;

impl<S: Service> TtlService<S> {
    /// With the lock held: if `key`'s entry is (still) lapsed, reap it
    /// — `DEL` the stale row downstream and drop the entry. Returns
    /// whether a reap happened. The lock stays held across the `DEL`,
    /// which is what makes expiry safe against concurrent rewrites.
    fn reap_if_lapsed(
        inner: &mut S,
        state: &TtlState,
        writer: &mut SidecarWriter<'_>,
        key: &String,
    ) -> bool {
        match state.sidecar.get(key) {
            Some(entry) if state.lapsed(&entry) => {
                let _ = inner.call(Request::new(Command::Del(key.clone())));
                writer.remove(key);
                state.metrics.ttl_expired.increment();
                true
            }
            _ => false,
        }
    }

    /// `EXPIRE key millis`: probe the key and arm (or re-arm) a timer.
    fn expire(&mut self, key: String, millis: u64) -> Response {
        let mut writer = self.state.writer.lock().expect("ttl writer");
        // A lapsed timer means the value is gone: reap it and report
        // "no such key" instead of resurrecting it.
        if Self::reap_if_lapsed(&mut self.inner, &self.state, &mut writer, &key) {
            return Response::ok(Reply::Int(0));
        }
        match self
            .inner
            .call(Request::new(Command::Get(key.clone())))
            .reply
        {
            Reply::Nil => Response::ok(Reply::Int(0)),
            Reply::Value(_) => {
                let deadline = self
                    .state
                    .now_us()
                    .saturating_add(millis.saturating_mul(1_000));
                if let Some(entry) = self.state.sidecar.get(&key) {
                    entry.expires_at_us.store(deadline, Ordering::Release);
                } else {
                    writer.put(
                        key,
                        Arc::new(TtlEntry {
                            expires_at_us: AtomicU64::new(deadline),
                        }),
                    );
                }
                self.state.metrics.ttl_armed.increment();
                Response::ok(Reply::Int(1))
            }
            // Propagate downstream failures (e.g. the store refused).
            other => Response::ok(other),
        }
    }

    /// A mutation (`SET`/`DEL`/`INCR`) on a key that has a sidecar
    /// entry: serialize against reaps, clearing a lapsed value first so
    /// `INCR` restarts from zero, then clear the timer (`SET`/`DEL`
    /// rewrite the value; `INCR` keeps its — now reaped-or-live — row
    /// fresh, Redis-style it would keep the TTL, but after a rewrite
    /// through this path the timer is gone either way).
    fn mutate_timed(&mut self, req: Request, key: String) -> Response {
        let mut writer = self.state.writer.lock().expect("ttl writer");
        Self::reap_if_lapsed(&mut self.inner, &self.state, &mut writer, &key);
        let resp = self.inner.call(req);
        if !matches!(resp.reply, Reply::Error(_)) {
            // The rewrite clears any remaining timer (and its entry).
            writer.remove(&key);
        }
        resp
    }

    /// A `GET` on a key whose unlocked probe saw a lapsed timer:
    /// re-check under the lock, reap, answer nil.
    fn get_lapsed(&mut self, req: Request, key: String) -> Response {
        let mut writer = self.state.writer.lock().expect("ttl writer");
        if Self::reap_if_lapsed(&mut self.inner, &self.state, &mut writer, &key) {
            return Response::ok(Reply::Nil);
        }
        // Lost the race to a rewrite: the key is live again.
        drop(writer);
        self.inner.call(req)
    }
}

impl<S: Service> Service for TtlService<S> {
    /// Batch path: **one** sidecar sweep for the whole burst. When no
    /// timer is armed anywhere (`sidecar` empty — by far the common
    /// state under kv load) and the burst carries no `EXPIRE`, no key
    /// can be timed, so the per-command sidecar probes are skipped and
    /// the burst forwards as one inner batch. Any armed timer (or an
    /// `EXPIRE` arming one mid-burst) drops to the sequential path,
    /// whose reap locking is what makes expiry safe.
    fn call_batch(&mut self, reqs: Vec<Request>) -> Vec<Response> {
        let admission_t = crate::span::start();
        let arming = reqs
            .iter()
            .any(|r| matches!(r.command, Command::Expire(..)));
        if !arming && self.state.sidecar.is_empty() {
            let kv = reqs
                .iter()
                .filter(|r| {
                    matches!(
                        r.command,
                        Command::Get(_) | Command::Set(..) | Command::Del(_) | Command::Incr(..)
                    )
                })
                .count() as u64;
            self.state.metrics.ttl_checked.add(kv);
            crate::span::record(LayerKind::Ttl, admission_t);
            return self.inner.call_batch(reqs);
        }
        crate::span::record(LayerKind::Ttl, admission_t);
        reqs.into_iter().map(|req| self.call(req)).collect()
    }

    fn call(&mut self, req: Request) -> Response {
        let admission_t = crate::span::start();
        // Decide on a borrowed view first so the fast paths forward
        // `req` without cloning its key.
        enum Plan {
            Forward,
            MutateTimed(String),
            GetLapsed(String),
            Expire(String, u64),
        }
        let plan = match &req.command {
            Command::Expire(key, millis) => {
                self.state.metrics.ttl_checked.increment();
                Plan::Expire(key.clone(), *millis)
            }
            Command::Get(key) => {
                self.state.metrics.ttl_checked.increment();
                match self.state.sidecar.get(key) {
                    // Live timers read lock-free; only a lapsed one
                    // takes the slow path.
                    Some(entry) if self.state.lapsed(&entry) => Plan::GetLapsed(key.clone()),
                    _ => Plan::Forward,
                }
            }
            Command::Set(key, _) | Command::Del(key) | Command::Incr(key, _) => {
                self.state.metrics.ttl_checked.increment();
                match self.state.sidecar.get(key) {
                    Some(_) => Plan::MutateTimed(key.clone()),
                    None => Plan::Forward,
                }
            }
            _ => Plan::Forward,
        };
        // The sidecar probe is this layer's admission cost; the plan's
        // own downstream work (reaps, the rewrite) is real store
        // traffic, not admission overhead.
        crate::span::record(LayerKind::Ttl, admission_t);
        match plan {
            Plan::Forward => self.inner.call(req),
            Plan::MutateTimed(key) => self.mutate_timed(req, key),
            Plan::GetLapsed(key) => self.get_lapsed(req, key),
            Plan::Expire(key, millis) => self.expire(key, millis),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::time::Duration;

    /// A tiny in-memory store standing in for the shard plane.
    struct MapStore {
        map: HashMap<String, String>,
    }

    impl Service for MapStore {
        fn call(&mut self, req: Request) -> Response {
            match req.command {
                Command::Get(k) => Response::ok(match self.map.get(&k) {
                    Some(v) => Reply::Value(v.clone()),
                    None => Reply::Nil,
                }),
                Command::Set(k, v) => {
                    self.map.insert(k, v);
                    Response::ok(Reply::Status("OK"))
                }
                Command::Del(k) => {
                    self.map.remove(&k);
                    Response::ok(Reply::Status("OK"))
                }
                Command::Incr(k, d) => {
                    let next = self
                        .map
                        .get(&k)
                        .and_then(|v| v.parse::<i64>().ok())
                        .unwrap_or(0)
                        + d;
                    self.map.insert(k, next.to_string());
                    Response::ok(Reply::Int(next))
                }
                _ => Response::ok(Reply::Error("unsupported".into())),
            }
        }
    }

    fn ttl_over_store() -> (BoxService, Arc<PipelineMetrics>) {
        let metrics = Arc::new(PipelineMetrics::new());
        let layer = TtlLayer::new(Arc::clone(&metrics));
        let session = Session {
            client: "t:1".into(),
        };
        let store = MapStore {
            map: HashMap::new(),
        };
        (layer.wrap(&session, Box::new(store)), metrics)
    }

    fn call(svc: &mut BoxService, cmd: Command) -> Reply {
        svc.call(Request::new(cmd)).reply
    }

    #[test]
    fn expire_on_missing_key_reports_zero() {
        let (mut svc, _) = ttl_over_store();
        assert_eq!(
            call(&mut svc, Command::Expire("k".into(), 50)),
            Reply::Int(0)
        );
    }

    #[test]
    fn expired_key_reads_as_nil_and_is_reaped() {
        let (mut svc, metrics) = ttl_over_store();
        call(&mut svc, Command::Set("k".into(), "v".into()));
        assert_eq!(
            call(&mut svc, Command::Expire("k".into(), 20)),
            Reply::Int(1)
        );
        assert_eq!(
            call(&mut svc, Command::Get("k".into())),
            Reply::Value("v".into()),
            "alive before the deadline"
        );
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(call(&mut svc, Command::Get("k".into())), Reply::Nil);
        assert_eq!(metrics.ttl_expired.sum(), 1);
        // Reaped for real: later reads miss without touching the sidecar.
        assert_eq!(call(&mut svc, Command::Get("k".into())), Reply::Nil);
        assert_eq!(metrics.ttl_expired.sum(), 1, "no double expiry");
    }

    #[test]
    fn set_disarms_a_pending_timer() {
        let (mut svc, metrics) = ttl_over_store();
        call(&mut svc, Command::Set("k".into(), "v1".into()));
        call(&mut svc, Command::Expire("k".into(), 20));
        call(&mut svc, Command::Set("k".into(), "v2".into()));
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(
            call(&mut svc, Command::Get("k".into())),
            Reply::Value("v2".into()),
            "rewrite must cancel the timer"
        );
        assert_eq!(metrics.ttl_expired.sum(), 0);
    }

    #[test]
    fn rearming_extends_the_deadline() {
        let (mut svc, _) = ttl_over_store();
        call(&mut svc, Command::Set("k".into(), "v".into()));
        call(&mut svc, Command::Expire("k".into(), 20));
        std::thread::sleep(Duration::from_millis(10));
        call(&mut svc, Command::Expire("k".into(), 10_000));
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(
            call(&mut svc, Command::Get("k".into())),
            Reply::Value("v".into())
        );
    }

    #[test]
    fn expire_cannot_resurrect_a_lapsed_key() {
        let (mut svc, metrics) = ttl_over_store();
        call(&mut svc, Command::Set("k".into(), "v".into()));
        call(&mut svc, Command::Expire("k".into(), 10));
        std::thread::sleep(Duration::from_millis(30));
        // The timer lapsed (no GET reaped it yet): a re-EXPIRE must
        // treat the key as gone, not re-arm the stale value.
        assert_eq!(
            call(&mut svc, Command::Expire("k".into(), 10_000)),
            Reply::Int(0)
        );
        assert_eq!(call(&mut svc, Command::Get("k".into())), Reply::Nil);
        assert_eq!(metrics.ttl_expired.sum(), 1);
    }

    #[test]
    fn incr_on_a_lapsed_key_restarts_from_zero() {
        let (mut svc, _) = ttl_over_store();
        call(&mut svc, Command::Set("n".into(), "41".into()));
        call(&mut svc, Command::Expire("n".into(), 10));
        std::thread::sleep(Duration::from_millis(30));
        // The expired 41 must not leak into the increment.
        assert_eq!(call(&mut svc, Command::Incr("n".into(), 1)), Reply::Int(1));
        assert_eq!(
            call(&mut svc, Command::Get("n".into())),
            Reply::Value("1".into()),
            "the incremented row has no timer"
        );
    }

    #[test]
    fn incr_on_a_live_timed_key_clears_the_timer() {
        let (mut svc, metrics) = ttl_over_store();
        call(&mut svc, Command::Set("n".into(), "1".into()));
        call(&mut svc, Command::Expire("n".into(), 20));
        assert_eq!(call(&mut svc, Command::Incr("n".into(), 1)), Reply::Int(2));
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(
            call(&mut svc, Command::Get("n".into())),
            Reply::Value("2".into()),
            "rewritten row survives the stale deadline"
        );
        assert_eq!(metrics.ttl_expired.sum(), 0);
    }

    #[test]
    fn batch_with_no_timers_sweeps_once_and_forwards() {
        let (mut svc, metrics) = ttl_over_store();
        let resps = svc.call_batch(vec![
            Request::new(Command::Set("a".into(), "1".into())),
            Request::new(Command::Get("a".into())),
            Request::new(Command::Ping),
        ]);
        assert_eq!(resps[1].reply, Reply::Value("1".into()));
        // The two kv commands are counted by the one sweep; PING is
        // not kv traffic.
        assert_eq!(metrics.ttl_checked.sum(), 2);
    }

    #[test]
    fn batch_with_timers_keeps_expiry_semantics() {
        let (mut svc, metrics) = ttl_over_store();
        call(&mut svc, Command::Set("k".into(), "v".into()));
        call(&mut svc, Command::Expire("k".into(), 10));
        std::thread::sleep(Duration::from_millis(30));
        // The armed (now lapsed) timer forces the sequential path:
        // the batched GET must still observe the expiry.
        let resps = svc.call_batch(vec![
            Request::new(Command::Get("k".into())),
            Request::new(Command::Get("k".into())),
        ]);
        assert_eq!(resps[0].reply, Reply::Nil);
        assert_eq!(resps[1].reply, Reply::Nil);
        assert_eq!(metrics.ttl_expired.sum(), 1, "reaped exactly once");
    }

    #[test]
    fn batch_carrying_expire_arms_timers() {
        let (mut svc, metrics) = ttl_over_store();
        let resps = svc.call_batch(vec![
            Request::new(Command::Set("k".into(), "v".into())),
            Request::new(Command::Expire("k".into(), 10_000)),
        ]);
        assert_eq!(resps[1].reply, Reply::Int(1), "armed mid-burst");
        assert_eq!(metrics.ttl_armed.sum(), 1);
    }

    #[test]
    fn non_kv_commands_pass_untouched() {
        let (mut svc, metrics) = ttl_over_store();
        let before = metrics.ttl_checked.sum();
        call(&mut svc, Command::Ping);
        assert_eq!(metrics.ttl_checked.sum(), before);
    }
}
