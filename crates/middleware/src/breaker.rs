//! Circuit breaker: per-verb-class overload protection.
//!
//! Each command class (read, write) owns a closed → open → half-open
//! state machine. Consecutive downstream failures — structured
//! `DEADLINE` overruns or shard ack timeouts — trip the class open, and
//! while open every command of that class is rejected immediately with
//! a structured `BREAKER` error instead of queueing into a distressed
//! store. After a cooldown the breaker admits a bounded quota of probe
//! requests (half-open): if they all succeed the class closes again,
//! one probe failure re-opens it. `Control` verbs are exempt, so
//! `HEALTH`/`READY`/`STATS` stay answerable while the data plane is
//! shedding.
//!
//! The breaker sits directly under the trace layer — *outside* the
//! deadline layer — so it observes the `DEADLINE` rejections flowing
//! back up and its own rejections skip the deadline clock entirely.
//!
//! Disabled by default: a zero failure threshold
//! ([`BreakerConfig::failures`]) never trips, making the layer a pure
//! passthrough until `--breaker-failures` arms it.

use crate::metrics::PipelineMetrics;
use crate::pipeline::{
    partition_batch, BoxService, Layer, LayerKind, Request, Response, Service, Session,
};
use crate::protocol::{CommandClass, Reply};
use crate::span;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Breaker tuning. The default (`failures: 0`) disables the breaker.
#[derive(Clone, Debug)]
pub struct BreakerConfig {
    /// Consecutive failures that trip a class open; 0 disables the
    /// breaker entirely.
    pub failures: u32,
    /// How long a tripped class stays open before probing, ms.
    pub cooldown_ms: u64,
    /// Probe quota while half-open: this many requests are admitted,
    /// and all of them must succeed to close the class again.
    pub probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failures: 0,
            cooldown_ms: 1_000,
            probes: 1,
        }
    }
}

/// Breaker states, stored as one atomic byte per class (mirrored into
/// `mw_breaker_<class>_state`).
pub(crate) const CLOSED: u8 = 0;
pub(crate) const OPEN: u8 = 1;
pub(crate) const HALF_OPEN: u8 = 2;

/// One class's lock-free state machine.
#[derive(Debug)]
struct ClassBreaker {
    state: AtomicU8,
    consecutive_failures: AtomicU32,
    /// When the class last tripped, µs since the breaker was built.
    opened_at_us: AtomicU64,
    probes_issued: AtomicU32,
    probe_successes: AtomicU32,
}

impl ClassBreaker {
    fn new() -> Self {
        ClassBreaker {
            state: AtomicU8::new(CLOSED),
            consecutive_failures: AtomicU32::new(0),
            opened_at_us: AtomicU64::new(0),
            probes_issued: AtomicU32::new(0),
            probe_successes: AtomicU32::new(0),
        }
    }
}

/// Class slots: read 0, write 1 (`Control` is exempt).
fn class_slot(class: CommandClass) -> Option<usize> {
    match class {
        CommandClass::Read => Some(0),
        CommandClass::Write => Some(1),
        CommandClass::Control => None,
    }
}

fn class_label(slot: usize) -> &'static str {
    if slot == 0 {
        "read"
    } else {
        "write"
    }
}

/// Whether a response counts as a downstream failure: a structured
/// `DEADLINE` overrun or a shard ack timeout (the two shapes a
/// distressed store answers with).
pub(crate) fn is_breaker_failure(resp: &Response) -> bool {
    match &resp.reply {
        Reply::Error(msg) => msg.starts_with("DEADLINE ") || msg.contains("ack timeout"),
        _ => false,
    }
}

/// The shared per-class state machines (one set per [`Stack`],
/// `Arc`-shared by every session's service).
///
/// [`Stack`]: crate::pipeline::Stack
#[derive(Debug)]
pub(crate) struct BreakerState {
    config: BreakerConfig,
    born: Instant,
    classes: [ClassBreaker; 2],
    metrics: Arc<PipelineMetrics>,
}

impl BreakerState {
    pub(crate) fn new(config: BreakerConfig, metrics: Arc<PipelineMetrics>) -> Self {
        BreakerState {
            config,
            born: Instant::now(),
            classes: [ClassBreaker::new(), ClassBreaker::new()],
            metrics,
        }
    }

    /// Whether the breaker can ever trip (`failures > 0`).
    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.config.failures > 0
    }

    fn now_us(&self) -> u64 {
        self.born.elapsed().as_micros() as u64
    }

    fn publish_state(&self, slot: usize, state: u8) {
        self.metrics.breaker_state[slot].store(state, Ordering::Relaxed);
    }

    /// Admit or reject one command of `class` — `None` means admitted.
    /// Callers must pair every admission with one
    /// [`BreakerState::observe`] of the eventual response.
    #[inline]
    pub(crate) fn admit(&self, class: CommandClass) -> Option<Response> {
        if !self.enabled() {
            return None;
        }
        let slot = class_slot(class)?;
        self.admit_at(slot, self.now_us())
    }

    /// Clock-explicit admission (the deterministic test surface).
    fn admit_at(&self, slot: usize, now_us: u64) -> Option<Response> {
        let b = &self.classes[slot];
        self.metrics.breaker_checked.increment();
        loop {
            match b.state.load(Ordering::Relaxed) {
                OPEN => {
                    let opened = b.opened_at_us.load(Ordering::Relaxed);
                    let cooldown_us = self.config.cooldown_ms.saturating_mul(1_000);
                    let waited = now_us.saturating_sub(opened);
                    if waited < cooldown_us {
                        self.metrics.breaker_rejected.increment();
                        return Some(Response::rejection(
                            "BREAKER",
                            format_args!(
                                "{} open retry_us={}",
                                class_label(slot),
                                cooldown_us - waited
                            ),
                        ));
                    }
                    // Cooldown over: one CAS moves to half-open; the
                    // loser of a race simply re-reads and may become a
                    // probe itself.
                    if b.state
                        .compare_exchange(OPEN, HALF_OPEN, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        b.probes_issued.store(0, Ordering::Relaxed);
                        b.probe_successes.store(0, Ordering::Relaxed);
                        self.publish_state(slot, HALF_OPEN);
                    }
                }
                HALF_OPEN => {
                    // Claim one probe slot with a bounded CAS loop so
                    // exactly `probes` requests are admitted per
                    // half-open episode (a plain fetch_add could wrap).
                    let issued = b.probes_issued.load(Ordering::Relaxed);
                    if issued >= self.config.probes {
                        self.metrics.breaker_rejected.increment();
                        return Some(Response::rejection(
                            "BREAKER",
                            format_args!("{} half-open probe quota exhausted", class_label(slot)),
                        ));
                    }
                    if b.probes_issued
                        .compare_exchange(issued, issued + 1, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        self.metrics.breaker_probes.increment();
                        return None;
                    }
                }
                _ => return None, // CLOSED
            }
        }
    }

    /// Observe the response of an **admitted** command: failures count
    /// toward the trip threshold (or re-open a half-open class),
    /// successes reset the streak (or close the class once the probe
    /// quota all succeeded).
    #[inline]
    pub(crate) fn observe(&self, class: CommandClass, resp: &Response) {
        if !self.enabled() {
            return;
        }
        let Some(slot) = class_slot(class) else {
            return;
        };
        self.observe_at(slot, is_breaker_failure(resp), self.now_us());
    }

    /// Clock-explicit observation (the deterministic test surface).
    fn observe_at(&self, slot: usize, failure: bool, now_us: u64) {
        let b = &self.classes[slot];
        match b.state.load(Ordering::Relaxed) {
            CLOSED => {
                if failure {
                    let streak = b.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
                    if streak >= self.config.failures
                        && b.state
                            .compare_exchange(CLOSED, OPEN, Ordering::Relaxed, Ordering::Relaxed)
                            .is_ok()
                    {
                        b.opened_at_us.store(now_us, Ordering::Relaxed);
                        b.consecutive_failures.store(0, Ordering::Relaxed);
                        self.metrics.breaker_trips.increment();
                        self.publish_state(slot, OPEN);
                    }
                } else if b.consecutive_failures.load(Ordering::Relaxed) != 0 {
                    b.consecutive_failures.store(0, Ordering::Relaxed);
                }
            }
            HALF_OPEN => {
                if failure {
                    // One failed probe re-opens the class and restarts
                    // the cooldown.
                    if b.state
                        .compare_exchange(HALF_OPEN, OPEN, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        b.opened_at_us.store(now_us, Ordering::Relaxed);
                        self.metrics.breaker_trips.increment();
                        self.publish_state(slot, OPEN);
                    }
                } else {
                    let ok = b.probe_successes.fetch_add(1, Ordering::Relaxed) + 1;
                    if ok >= self.config.probes
                        && b.state
                            .compare_exchange(
                                HALF_OPEN,
                                CLOSED,
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            )
                            .is_ok()
                    {
                        b.consecutive_failures.store(0, Ordering::Relaxed);
                        self.metrics.breaker_recoveries.increment();
                        self.publish_state(slot, CLOSED);
                    }
                }
            }
            // OPEN: a straggler response admitted before the trip;
            // nothing to learn from it.
            _ => {}
        }
    }

    #[cfg(test)]
    fn state_of(&self, slot: usize) -> u8 {
        self.classes[slot].state.load(Ordering::Relaxed)
    }
}

/// The circuit-breaker [`Layer`].
pub struct BreakerLayer {
    state: Arc<BreakerState>,
}

impl BreakerLayer {
    /// Build the layer.
    pub fn new(config: BreakerConfig, metrics: Arc<PipelineMetrics>) -> Self {
        BreakerLayer {
            state: Arc::new(BreakerState::new(config, metrics)),
        }
    }

    /// Wrap a concrete inner service, preserving its type — the typed
    /// combinator the fused stack composes with.
    pub fn wrap_typed<S: Service>(&self, _session: &Session, inner: S) -> BreakerService<S> {
        BreakerService {
            state: Arc::clone(&self.state),
            inner,
        }
    }
}

impl Layer for BreakerLayer {
    fn kind(&self) -> LayerKind {
        LayerKind::Breaker
    }

    fn wrap(&self, session: &Session, inner: BoxService) -> BoxService {
        Box::new(self.wrap_typed(session, inner))
    }
}

/// The breaker layer's per-session service, generic over the inner
/// service it wraps. Sessions share the per-class state machines
/// through the stack, so one connection's failures protect every
/// connection.
pub struct BreakerService<S> {
    pub(crate) state: Arc<BreakerState>,
    pub(crate) inner: S,
}

impl<S: Service> Service for BreakerService<S> {
    fn call(&mut self, req: Request) -> Response {
        let admission_t = span::start();
        let class = req.command.class();
        if let Some(rejection) = self.state.admit(class) {
            span::record(LayerKind::Breaker, admission_t);
            return rejection;
        }
        span::record(LayerKind::Breaker, admission_t);
        let resp = self.inner.call(req);
        let observe_t = span::start();
        self.state.observe(class, &resp);
        span::record(LayerKind::Breaker, observe_t);
        resp
    }

    /// Batch path: every request is admitted against the state at burst
    /// start, the admitted ones travel downstream as one inner batch,
    /// and each admitted response is observed in order. Failure streaks
    /// therefore accumulate once per burst rather than between its
    /// commands — the same amortized metering exemption the deadline
    /// and rate-limit layers take; ordering and reply bytes are
    /// unchanged.
    fn call_batch(&mut self, reqs: Vec<Request>) -> Vec<Response> {
        let admission_t = span::start();
        if !self.state.enabled() {
            span::record(LayerKind::Breaker, admission_t);
            return self.inner.call_batch(reqs);
        }
        let state = &self.state;
        let mut admitted: Vec<Option<CommandClass>> = Vec::with_capacity(reqs.len());
        span::record(LayerKind::Breaker, admission_t);
        let resps = partition_batch(&mut self.inner, reqs, |req| {
            let class = req.command.class();
            match state.admit(class) {
                Some(rejection) => {
                    admitted.push(None);
                    Some(rejection)
                }
                None => {
                    admitted.push(Some(class));
                    None
                }
            }
        });
        let observe_t = span::start();
        for (resp, class) in resps.iter().zip(&admitted) {
            if let Some(class) = *class {
                self.state.observe(class, resp);
            }
        }
        span::record(LayerKind::Breaker, observe_t);
        resps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Command;
    use proptest::prelude::*;

    const READ: usize = 0;
    const WRITE: usize = 1;

    fn armed(failures: u32, cooldown_ms: u64, probes: u32) -> (BreakerState, Arc<PipelineMetrics>) {
        let metrics = Arc::new(PipelineMetrics::new());
        let state = BreakerState::new(
            BreakerConfig {
                failures,
                cooldown_ms,
                probes,
            },
            Arc::clone(&metrics),
        );
        (state, metrics)
    }

    fn failure() -> Response {
        Response::ok(Reply::Error("DEADLINE SET took 99us budget 1us".into()))
    }

    fn success() -> Response {
        Response::ok(Reply::Status("OK"))
    }

    #[test]
    fn failure_predicate_matches_deadline_and_ack_timeout() {
        assert!(is_breaker_failure(&failure()));
        assert!(is_breaker_failure(&Response {
            reply: Reply::Error("shard ack timeout; closing connection".into()),
            close: true,
        }));
        assert!(!is_breaker_failure(&success()));
        assert!(!is_breaker_failure(&Response::ok(Reply::Error(
            "AUTH SET requires readwrite, session role is readonly".into()
        ))));
        assert!(!is_breaker_failure(&Response::rejection(
            "SHED",
            "shard=0 queue_depth=9 limit=1"
        )));
    }

    #[test]
    fn disabled_breaker_never_trips() {
        let (state, metrics) = armed(0, 10, 1);
        for _ in 0..100 {
            assert!(state.admit(CommandClass::Write).is_none());
            state.observe(CommandClass::Write, &failure());
        }
        assert_eq!(state.state_of(WRITE), CLOSED);
        assert_eq!(metrics.breaker_checked.sum(), 0, "disabled = uncounted");
    }

    #[test]
    fn consecutive_failures_trip_only_their_class() {
        let (state, metrics) = armed(3, 1_000, 1);
        for _ in 0..3 {
            assert!(state.admit_at(WRITE, 0).is_none());
            state.observe_at(WRITE, true, 0);
        }
        assert_eq!(state.state_of(WRITE), OPEN);
        assert_eq!(state.state_of(READ), CLOSED, "reads unaffected");
        assert_eq!(metrics.breaker_trips.sum(), 1);
        match state.admit_at(WRITE, 100).expect("open rejects").reply {
            Reply::Error(e) => {
                assert!(e.starts_with("BREAKER write open retry_us="), "got {e:?}")
            }
            other => panic!("expected breaker error, got {other:?}"),
        }
        assert!(state.admit_at(READ, 100).is_none());
    }

    #[test]
    fn successes_reset_the_failure_streak() {
        let (state, _) = armed(3, 1_000, 1);
        for _ in 0..2 {
            assert!(state.admit_at(WRITE, 0).is_none());
            state.observe_at(WRITE, true, 0);
        }
        state.observe_at(WRITE, false, 0); // streak broken
        for _ in 0..2 {
            state.observe_at(WRITE, true, 0);
        }
        assert_eq!(state.state_of(WRITE), CLOSED, "2+2 < a fresh streak of 3");
        state.observe_at(WRITE, true, 0);
        assert_eq!(state.state_of(WRITE), OPEN);
    }

    #[test]
    fn recovers_through_half_open_probes() {
        let (state, metrics) = armed(2, 10, 2);
        state.observe_at(WRITE, true, 0);
        state.observe_at(WRITE, true, 0);
        assert_eq!(state.state_of(WRITE), OPEN);
        // Inside the cooldown: still rejecting.
        assert!(state.admit_at(WRITE, 9_999).is_some());
        // Past the cooldown: exactly two probes, then the quota gate.
        assert!(state.admit_at(WRITE, 10_000).is_none());
        assert_eq!(state.state_of(WRITE), HALF_OPEN);
        assert!(state.admit_at(WRITE, 10_001).is_none());
        match state.admit_at(WRITE, 10_002).expect("quota").reply {
            Reply::Error(e) => assert!(e.contains("probe quota exhausted"), "got {e:?}"),
            other => panic!("expected breaker error, got {other:?}"),
        }
        state.observe_at(WRITE, false, 10_003);
        assert_eq!(state.state_of(WRITE), HALF_OPEN, "one of two probes in");
        state.observe_at(WRITE, false, 10_004);
        assert_eq!(state.state_of(WRITE), CLOSED, "all probes succeeded");
        assert_eq!(metrics.breaker_recoveries.sum(), 1);
        assert!(state.admit_at(WRITE, 10_005).is_none());
    }

    #[test]
    fn a_failed_probe_reopens_and_restarts_the_cooldown() {
        let (state, metrics) = armed(1, 10, 1);
        state.observe_at(WRITE, true, 0);
        assert!(state.admit_at(WRITE, 10_000).is_none(), "probe admitted");
        state.observe_at(WRITE, true, 10_500);
        assert_eq!(state.state_of(WRITE), OPEN);
        assert_eq!(metrics.breaker_trips.sum(), 2);
        // The cooldown restarts from the re-open, not the first trip.
        assert!(state.admit_at(WRITE, 15_000).is_some());
        assert!(state.admit_at(WRITE, 20_500).is_none());
        state.observe_at(WRITE, false, 20_501);
        assert_eq!(state.state_of(WRITE), CLOSED);
    }

    #[test]
    fn control_verbs_bypass_an_open_breaker() {
        let (state, _) = armed(1, 1_000, 1);
        state.observe_at(WRITE, true, 0);
        state.observe_at(READ, true, 0);
        assert!(state.admit(CommandClass::Control).is_none());
    }

    #[test]
    fn service_trips_and_rejects_end_to_end() {
        let metrics = Arc::new(PipelineMetrics::new());
        let layer = BreakerLayer::new(
            BreakerConfig {
                failures: 2,
                cooldown_ms: 60_000,
                probes: 1,
            },
            Arc::clone(&metrics),
        );
        struct Failing;
        impl Service for Failing {
            fn call(&mut self, _req: Request) -> Response {
                Response::ok(Reply::Error("DEADLINE SET took 9us budget 1us".into()))
            }
        }
        let session = Session {
            client: "t:1".into(),
        };
        let mut svc = layer.wrap(&session, Box::new(Failing));
        for _ in 0..2 {
            match svc
                .call(Request::new(Command::Set("k".into(), "v".into())))
                .reply
            {
                Reply::Error(e) => assert!(e.starts_with("DEADLINE "), "got {e:?}"),
                other => panic!("expected inner failure, got {other:?}"),
            }
        }
        match svc
            .call(Request::new(Command::Set("k".into(), "v".into())))
            .reply
        {
            Reply::Error(e) => assert!(e.starts_with("BREAKER write open"), "got {e:?}"),
            other => panic!("expected breaker rejection, got {other:?}"),
        }
        // The inner service never saw the third command.
        assert_eq!(metrics.breaker_rejected.sum(), 1);
        assert_eq!(metrics.breaker_trips.sum(), 1);
        // A batch against the open breaker rejects writes in place but
        // lets control verbs through.
        let resps = svc.call_batch(vec![
            Request::new(Command::Set("k".into(), "v".into())),
            Request::new(Command::Ping),
        ]);
        assert!(matches!(&resps[0].reply, Reply::Error(e) if e.starts_with("BREAKER ")));
        assert!(matches!(&resps[1].reply, Reply::Error(e) if e.starts_with("DEADLINE ")));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The trip law over arbitrary success/failure sequences: the
        /// breaker admits exactly while a shadow model says it is
        /// closed, and `failures` consecutive failures always open it
        /// (the long cooldown keeps it open for the whole run).
        #[test]
        fn arbitrary_sequences_never_admit_while_open(
            outcomes in proptest::collection::vec(any::<bool>(), 1..120),
        ) {
            let (state, _) = armed(3, 3_600_000, 1);
            let mut streak = 0u32;
            let mut model_open = false;
            for (i, &ok) in outcomes.iter().enumerate() {
                let admitted = state.admit_at(WRITE, i as u64).is_none();
                prop_assert_eq!(admitted, !model_open, "step {}", i);
                if !admitted {
                    continue;
                }
                state.observe_at(WRITE, !ok, i as u64);
                if ok {
                    streak = 0;
                } else {
                    streak += 1;
                    if streak >= 3 {
                        model_open = true;
                    }
                }
            }
        }

        /// The probe-quota law: after a trip and the cooldown, exactly
        /// `probes` requests are admitted before observations land —
        /// never more, however many arrive.
        #[test]
        fn half_open_admits_exactly_the_probe_quota(
            probes in 1u32..8,
            attempts in 1usize..24,
        ) {
            let (state, _) = armed(1, 10, probes);
            state.observe_at(WRITE, true, 0);
            let admitted = (0..attempts)
                .filter(|i| state.admit_at(WRITE, 10_000 + *i as u64).is_none())
                .count();
            prop_assert_eq!(admitted, attempts.min(probes as usize));
        }
    }
}
