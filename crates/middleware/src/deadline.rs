//! Deadline/timeout enforcement with per-class budgets.
//!
//! Each request is timed around the layers below (auth, rate-limit,
//! TTL, the store round-trip). A request that overruns its class
//! budget is answered with a structured `DEADLINE` error instead of
//! its reply — the mutation may still have applied (exactly like an
//! HTTP 504 behind a gateway), the client just lost the latency SLO.
//! `Control` verbs are exempt.

use crate::metrics::PipelineMetrics;
use crate::pipeline::{BoxService, Layer, LayerKind, Request, Response, Service, Session};
use crate::protocol::{CommandClass, Reply};
use crate::span;
use std::sync::Arc;
use std::time::Instant;

/// Per-class budgets, microseconds. A zero budget disables the check
/// for that class.
#[derive(Clone, Debug)]
pub struct DeadlineConfig {
    /// Budget for read-class commands.
    pub read_us: u64,
    /// Budget for write-class commands (shard round-trips included).
    pub write_us: u64,
}

impl Default for DeadlineConfig {
    /// Generous defaults (0.5 s reads, 2 s writes): an SLO on
    /// pathological stalls, not a throttle.
    fn default() -> Self {
        DeadlineConfig {
            read_us: 500_000,
            write_us: 2_000_000,
        }
    }
}

/// The deadline [`Layer`].
pub struct DeadlineLayer {
    config: DeadlineConfig,
    metrics: Arc<PipelineMetrics>,
}

impl DeadlineLayer {
    /// Build the layer.
    pub fn new(config: DeadlineConfig, metrics: Arc<PipelineMetrics>) -> Self {
        DeadlineLayer { config, metrics }
    }
}

impl DeadlineLayer {
    /// Wrap a concrete inner service, preserving its type — the typed
    /// combinator the fused stack composes with.
    pub fn wrap_typed<S: Service>(&self, _session: &Session, inner: S) -> DeadlineService<S> {
        DeadlineService {
            config: self.config.clone(),
            metrics: Arc::clone(&self.metrics),
            inner,
        }
    }
}

impl Layer for DeadlineLayer {
    fn kind(&self) -> LayerKind {
        LayerKind::Deadline
    }

    fn wrap(&self, session: &Session, inner: BoxService) -> BoxService {
        Box::new(self.wrap_typed(session, inner))
    }
}

/// The deadline layer's per-session service, generic over the inner
/// service it wraps.
pub struct DeadlineService<S> {
    pub(crate) config: DeadlineConfig,
    metrics: Arc<PipelineMetrics>,
    pub(crate) inner: S,
}

impl<S: Service> DeadlineService<S> {
    /// This request's class budget (0 = exempt).
    fn budget_us(&self, req: &Request) -> u64 {
        match req.command.class() {
            CommandClass::Read => self.config.read_us,
            CommandClass::Write => self.config.write_us,
            CommandClass::Control => 0,
        }
    }
}

impl<S: Service> Service for DeadlineService<S> {
    /// Batch path: **one** deadline check for the whole burst. The
    /// budget is the sum of the per-request class budgets (exempt
    /// requests contribute zero), so the SLO scales with the work
    /// admitted; if the burst overruns it, every non-exempt response is
    /// replaced by a structured `DEADLINE` error — the per-request
    /// attribution is gone, which is exactly the cost amortization
    /// buys. Under generous budgets (the production default) the group
    /// check fires in the same pathological stalls the per-request one
    /// would, and replies stay identical to sequential `call`s.
    fn call_batch(&mut self, reqs: Vec<Request>) -> Vec<Response> {
        let admission_t = span::start();
        let mut budget_us = 0u64;
        let mut checked = 0u64;
        let exempt: Vec<bool> = reqs
            .iter()
            .map(|req| {
                let b = self.budget_us(req);
                if b == 0 {
                    true
                } else {
                    budget_us = budget_us.saturating_add(b);
                    checked += 1;
                    false
                }
            })
            .collect();
        span::record(LayerKind::Deadline, admission_t);
        if budget_us == 0 {
            return self.inner.call_batch(reqs);
        }
        let start = Instant::now();
        let mut resps = self.inner.call_batch(reqs);
        let elapsed_us = start.elapsed().as_micros() as u64;
        let check_t = span::start();
        self.metrics.deadline_checked.add(checked);
        if elapsed_us > budget_us {
            self.metrics.deadline_missed.add(checked);
            for (resp, exempt) in resps.iter_mut().zip(exempt) {
                if !exempt {
                    resp.reply = Reply::Error(format!(
                        "DEADLINE batch took {elapsed_us}us budget {budget_us}us"
                    ));
                }
            }
        }
        span::record(LayerKind::Deadline, check_t);
        resps
    }

    fn call(&mut self, req: Request) -> Response {
        let admission_t = span::start();
        let budget_us = self.budget_us(&req);
        if budget_us == 0 {
            span::record(LayerKind::Deadline, admission_t);
            return self.inner.call(req);
        }
        let verb = req.command.verb();
        let start = Instant::now();
        span::record(LayerKind::Deadline, admission_t);
        let resp = self.inner.call(req);
        let elapsed_us = start.elapsed().as_micros() as u64;
        let check_t = span::start();
        self.metrics.deadline_checked.increment();
        let out = if elapsed_us > budget_us {
            self.metrics.deadline_missed.increment();
            Response {
                reply: Reply::Error(format!(
                    "DEADLINE {verb} took {elapsed_us}us budget {budget_us}us"
                )),
                close: resp.close,
            }
        } else {
            resp
        };
        span::record(LayerKind::Deadline, check_t);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Command;
    use std::time::Duration;

    struct Slow(Duration);
    impl Service for Slow {
        fn call(&mut self, _req: Request) -> Response {
            std::thread::sleep(self.0);
            Response::ok(Reply::Status("OK"))
        }
    }

    fn wrap(config: DeadlineConfig, delay: Duration) -> (BoxService, Arc<PipelineMetrics>) {
        let metrics = Arc::new(PipelineMetrics::new());
        let layer = DeadlineLayer::new(config, Arc::clone(&metrics));
        let session = Session {
            client: "t:1".into(),
        };
        (layer.wrap(&session, Box::new(Slow(delay))), metrics)
    }

    #[test]
    fn fast_requests_pass_and_are_counted() {
        let (mut svc, metrics) = wrap(DeadlineConfig::default(), Duration::ZERO);
        let resp = svc.call(Request::new(Command::Get("k".into())));
        assert!(matches!(resp.reply, Reply::Status(_)));
        assert_eq!(metrics.deadline_checked.sum(), 1);
        assert_eq!(metrics.deadline_missed.sum(), 0);
    }

    #[test]
    fn overruns_become_structured_deadline_errors() {
        let tight = DeadlineConfig {
            read_us: 1_000,
            write_us: 1_000,
        };
        let (mut svc, metrics) = wrap(tight, Duration::from_millis(20));
        match svc.call(Request::new(Command::Get("k".into()))).reply {
            Reply::Error(e) => {
                assert!(e.starts_with("DEADLINE "), "got {e:?}");
                assert!(e.contains("budget 1000us"), "got {e:?}");
            }
            other => panic!("expected deadline error, got {other:?}"),
        }
        assert_eq!(metrics.deadline_missed.sum(), 1);
    }

    #[test]
    fn batch_pays_one_check_against_the_summed_budget() {
        let (mut svc, metrics) = wrap(DeadlineConfig::default(), Duration::ZERO);
        let resps = svc.call_batch(vec![
            Request::new(Command::Get("k".into())),
            Request::new(Command::Set("k".into(), "v".into())),
            Request::new(Command::Ping), // exempt
        ]);
        assert!(resps.iter().all(|r| matches!(r.reply, Reply::Status(_))));
        assert_eq!(metrics.deadline_checked.sum(), 2, "exempt not counted");
        assert_eq!(metrics.deadline_missed.sum(), 0);
    }

    #[test]
    fn batch_overrun_rejects_every_non_exempt_request() {
        let tight = DeadlineConfig {
            read_us: 500,
            write_us: 500,
        };
        let (mut svc, metrics) = wrap(tight, Duration::from_millis(10));
        let resps = svc.call_batch(vec![
            Request::new(Command::Get("k".into())),
            Request::new(Command::Ping), // exempt: keeps its reply
            Request::new(Command::Set("k".into(), "v".into())),
        ]);
        match &resps[0].reply {
            Reply::Error(e) => assert!(e.starts_with("DEADLINE "), "got {e:?}"),
            other => panic!("expected deadline error, got {other:?}"),
        }
        assert!(matches!(resps[1].reply, Reply::Status(_)), "exempt passes");
        assert!(matches!(resps[2].reply, Reply::Error(_)));
        assert_eq!(metrics.deadline_missed.sum(), 2);
    }

    #[test]
    fn all_exempt_batch_skips_the_clock() {
        let (mut svc, metrics) = wrap(DeadlineConfig::default(), Duration::ZERO);
        svc.call_batch(vec![
            Request::new(Command::Ping),
            Request::new(Command::Stats),
        ]);
        assert_eq!(metrics.deadline_checked.sum(), 0);
    }

    #[test]
    fn control_verbs_are_exempt() {
        let tight = DeadlineConfig {
            read_us: 1,
            write_us: 1,
        };
        let (mut svc, metrics) = wrap(tight, Duration::from_millis(5));
        assert!(matches!(
            svc.call(Request::new(Command::Ping)).reply,
            Reply::Status(_)
        ));
        assert_eq!(metrics.deadline_checked.sum(), 0);
    }

    #[test]
    fn zero_budget_disables_the_class_check() {
        let off = DeadlineConfig {
            read_us: 0,
            write_us: 0,
        };
        let (mut svc, metrics) = wrap(off, Duration::from_millis(5));
        assert!(matches!(
            svc.call(Request::new(Command::Get("k".into()))).reply,
            Reply::Status(_)
        ));
        assert_eq!(metrics.deadline_checked.sum(), 0);
    }
}
