//! The fused (monomorphized) five-layer chain and its batch-1 fast
//! path.
//!
//! [`FusedService`] is the canonical pipeline
//! (trace → deadline → auth → rate-limit → ttl) composed as **one
//! concrete type**: every inter-layer call is a direct, inlinable call
//! instead of a `Box<dyn Service>` vtable dispatch. Bursts of any size
//! already run through the layers' monomorphized `call`/`call_batch`;
//! on top of that, [`FusedService::call_one`] gives depth-1 bursts (the
//! pipeline-1 workload, the stack's weakest point) a fast path that
//! runs all five admission checks inline:
//!
//! * **one** clock read pair (shared by the trace histogram and the
//!   deadline check, which in the onion each pay their own),
//! * no `Vec<Request>` batch construction and no per-layer virtual
//!   calls,
//! * no span-scope bookkeeping (the fast path only runs on unsampled
//!   ticks, where every `span::start()` would be a `None` anyway).
//!
//! The fast path **falls back** to the layered `call` the moment a
//! command needs a layer's own handling — `AUTH` logins (session state
//! changes inside the auth layer), `QUIT` (rate-limit exemption),
//! `STATS`/`STATS RESET` (the trace layer folds/zeroes the `mw_*`
//! lines), the `SLOWLOG`/`TRACE` ring verbs (answered by the trace
//! layer) — or when the connection's sampling phase says this command
//! opens a span scope (each layer must bracket its own segment, which
//! only the layered path does). Armed TTL timers do **not** force the
//! fallback: the fast path calls into the monomorphized TTL service,
//! whose lock-serialized reap semantics apply unchanged; only the
//! empty-sidecar probe is short-circuited.
//!
//! Replies are byte-identical to the dyn onion by construction (the
//! proptest suite drives randomized bursts through both), and the
//! metrics are too: every counter and histogram the five layers would
//! touch for an unsampled singleton is touched here, in the same
//! order.

use crate::auth::{AuthService, Role};
use crate::deadline::DeadlineService;
use crate::pipeline::{Request, Response, Service};
use crate::protocol::{Command, CommandClass, Reply};
use crate::rate_limit::RateLimitService;
use crate::trace::{class_name, TraceService};
use crate::ttl::TtlService;
use std::time::Instant;

/// The canonical five-layer chain as one concrete (monomorphized)
/// type, built by
/// [`Stack::fused_service`](crate::pipeline::Stack::fused_service).
pub type FusedService<S> =
    TraceService<DeadlineService<AuthService<RateLimitService<TtlService<S>>>>>;

/// Commands a specific layer handles itself (session logins, ring
/// verbs, stats folding, the `QUIT` rate-limit exemption): these take
/// the layered path so that handling runs exactly once, in its layer.
fn needs_layer_dispatch(cmd: &Command) -> bool {
    matches!(
        cmd,
        Command::Auth(_)
            | Command::Quit
            | Command::Stats
            | Command::StatsReset
            | Command::SlowlogGet
            | Command::SlowlogReset
            | Command::SlowlogLen
            | Command::TraceGet
            | Command::TraceReset
            | Command::TraceLen
    )
}

impl<S: Service> FusedService<S> {
    /// The batch-1 fast path: all five admission checks inline, one
    /// clock read pair, falling back to the layered [`Service::call`]
    /// for commands a layer owns and for span-sampled ticks (see the
    /// module doc for the exact conditions).
    pub fn call_one(&mut self, req: Request) -> Response {
        // Peek the sampling phase without consuming it: a sampled tick
        // needs the layered path (each layer brackets its own span
        // segment), and the delegated call advances the phase itself.
        let sampled = self.sample_every != 0 && self.tick == 0;
        if sampled || needs_layer_dispatch(&req.command) {
            return self.call(req);
        }
        // Unsampled: advance the phase exactly as tick_sample() would.
        if self.sample_every != 0 {
            self.tick += 1;
            if self.tick >= self.sample_every {
                self.tick = 0;
            }
        }
        let class = req.command.class();
        let verb = req.command.verb();
        // Deadline admission: the class budget (0 = exempt).
        let budget_us = match class {
            CommandClass::Read => self.inner.config.read_us,
            CommandClass::Write => self.inner.config.write_us,
            CommandClass::Control => 0,
        };
        // The one clock read pair, shared by the deadline check and
        // the trace histograms.
        let start = Instant::now();
        let resp = {
            // Auth admission: one role resolve (session principal or
            // the RCU-published anon policy), one class check.
            let auth = &mut self.inner.inner;
            let role = match &auth.principal {
                Some(p) => p.role,
                None => auth.state.anon_role(),
            };
            if !role.allows(class) {
                auth.metrics.auth_denied.increment();
                Response::rejection(
                    "AUTH",
                    format_args!(
                        "{} requires {}, session role is {}",
                        verb,
                        match class {
                            CommandClass::Write => Role::ReadWrite.name(),
                            _ => Role::ReadOnly.name(),
                        },
                        role.name()
                    ),
                )
            } else {
                auth.metrics.auth_admitted.increment();
                // Rate-limit admission: one token take from the
                // session's bucket (QUIT never reaches here — it is a
                // layer-dispatch verb).
                let rate = &mut auth.inner;
                if !rate.state.admit(&rate.bucket) {
                    Response::rejection(
                        "RATELIMIT",
                        format_args!("rejected retry_us={}", rate.state.retry_us()),
                    )
                } else {
                    // TTL admission: with no timer armed anywhere no
                    // key can be timed, so kv commands skip even the
                    // sidecar probe; anything else (armed timers,
                    // EXPIRE) runs the monomorphized TTL service with
                    // its full reap semantics.
                    let ttl = &mut rate.inner;
                    match &req.command {
                        Command::Get(_)
                        | Command::Set(..)
                        | Command::Del(_)
                        | Command::Incr(..)
                            if ttl.state.sidecar.is_empty() =>
                        {
                            ttl.state.metrics.ttl_checked.increment();
                            ttl.inner.call(req)
                        }
                        _ => ttl.call(req),
                    }
                }
            }
        };
        let elapsed_us = start.elapsed().as_micros() as u64;
        let metrics = &self.metrics;
        // Deadline check, against the same clock pair.
        let resp = if budget_us != 0 {
            metrics.deadline_checked.increment();
            if elapsed_us > budget_us {
                metrics.deadline_missed.increment();
                Response {
                    reply: Reply::Error(format!(
                        "DEADLINE {verb} took {elapsed_us}us budget {budget_us}us"
                    )),
                    close: resp.close,
                }
            } else {
                resp
            }
        } else {
            resp
        };
        // Trace bookkeeping: count, class histogram, slowlog offer —
        // what the trace layer records for an unsampled singleton.
        metrics.traced.increment();
        match class {
            CommandClass::Read => metrics.read_latency.record(elapsed_us),
            CommandClass::Write => metrics.write_latency.record(elapsed_us),
            CommandClass::Control => metrics.control_latency.record(elapsed_us),
        }
        metrics
            .slowlog
            .offer(&self.client, verb, class_name(class), 1, elapsed_us, None);
        resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::TokenSpec;
    use crate::config::MiddlewareConfig;
    use crate::pipeline::{BoxService, Session, Stack};
    use std::collections::HashMap;

    /// A deterministic in-memory store (the same shape the shard plane
    /// presents to the innermost layer).
    struct MapStore {
        map: HashMap<String, String>,
    }

    impl MapStore {
        fn new() -> Self {
            MapStore {
                map: HashMap::new(),
            }
        }
    }

    impl Service for MapStore {
        fn call(&mut self, req: Request) -> Response {
            match req.command {
                Command::Get(k) => Response::ok(match self.map.get(&k) {
                    Some(v) => Reply::Value(v.clone()),
                    None => Reply::Nil,
                }),
                Command::Set(k, v) => {
                    self.map.insert(k, v);
                    Response::ok(Reply::Status("OK"))
                }
                Command::Del(k) => {
                    self.map.remove(&k);
                    Response::ok(Reply::Status("OK"))
                }
                Command::Incr(k, d) => {
                    let next = self
                        .map
                        .get(&k)
                        .and_then(|v| v.parse::<i64>().ok())
                        .unwrap_or(0)
                        + d;
                    self.map.insert(k, next.to_string());
                    Response::ok(Reply::Int(next))
                }
                Command::Quit => Response {
                    reply: Reply::Status("OK"),
                    close: true,
                },
                Command::Stats => Response::ok(Reply::Array(vec!["shards=1".into()])),
                _ => Response::ok(Reply::Status("OK")),
            }
        }
    }

    fn config() -> MiddlewareConfig {
        let mut config = MiddlewareConfig::full();
        config.auth.tokens.push(TokenSpec {
            name: "writer".into(),
            token: "sekrit".into(),
            role: Role::ReadWrite,
        });
        config
    }

    fn session() -> Session {
        Session {
            client: "t:1".into(),
        }
    }

    /// One fused and one dyn chain over identically configured stacks.
    fn pair() -> (FusedService<MapStore>, BoxService) {
        let fused_stack = Stack::build(&config());
        let fused = fused_stack
            .fused_service(&session(), MapStore::new())
            .expect("full stack fuses");
        let dyn_stack = Stack::build(&config());
        let chain = dyn_stack.service(&session(), Box::new(MapStore::new()));
        (fused, chain)
    }

    #[test]
    fn fused_chain_is_a_service() {
        let stack = Stack::build(&config());
        let mut fused = stack
            .fused_service(&session(), MapStore::new())
            .expect("full stack fuses");
        let resp = fused.call(Request::new(Command::Ping));
        assert_eq!(resp.reply, Reply::Status("OK"));
        let resps = fused.call_batch(vec![
            Request::new(Command::Set("k".into(), "v".into())),
            Request::new(Command::Get("k".into())),
        ]);
        assert_eq!(resps[1].reply, Reply::Value("v".into()));
    }

    #[test]
    fn call_one_matches_the_dyn_onion_reply_for_reply() {
        let (mut fused, mut chain) = pair();
        let script: Vec<Command> = vec![
            Command::Set("a".into(), "1".into()),
            Command::Get("a".into()),
            Command::Incr("n".into(), 4),
            Command::Ping,
            Command::Auth("sekrit".into()),
            Command::Set("b".into(), "2".into()),
            Command::Expire("b".into(), 10_000),
            Command::Get("b".into()),
            Command::Del("a".into()),
            Command::Get("a".into()),
            Command::SlowlogLen,
            Command::Quit,
        ];
        for cmd in script {
            let want = chain.call(Request::new(cmd.clone()));
            let got = fused.call_one(Request::new(cmd.clone()));
            assert_eq!(got.reply, want.reply, "command {cmd:?}");
            assert_eq!(got.close, want.close, "command {cmd:?}");
        }
    }

    #[test]
    fn call_one_matches_the_onion_counters() {
        let fused_stack = Stack::build(&config());
        let mut fused = fused_stack
            .fused_service(&session(), MapStore::new())
            .expect("full stack fuses");
        let dyn_stack = Stack::build(&config());
        let mut chain = dyn_stack.service(&session(), Box::new(MapStore::new()));
        let script: Vec<Command> = vec![
            Command::Set("a".into(), "1".into()),
            Command::Get("a".into()),
            Command::Ping,
            Command::Get("miss".into()),
        ];
        for cmd in &script {
            chain.call(Request::new(cmd.clone()));
            fused.call_one(Request::new(cmd.clone()));
        }
        let (f, d) = (fused_stack.metrics(), dyn_stack.metrics());
        assert_eq!(f.traced.sum(), d.traced.sum());
        assert_eq!(f.read_latency.count(), d.read_latency.count());
        assert_eq!(f.write_latency.count(), d.write_latency.count());
        assert_eq!(f.control_latency.count(), d.control_latency.count());
        assert_eq!(f.auth_admitted.sum(), d.auth_admitted.sum());
        assert_eq!(f.rate_admitted.sum(), d.rate_admitted.sum());
        assert_eq!(f.deadline_checked.sum(), d.deadline_checked.sum());
        assert_eq!(f.ttl_checked.sum(), d.ttl_checked.sum());
        assert_eq!(f.spans_sampled.sum(), d.spans_sampled.sum());
    }

    #[test]
    fn call_one_samples_the_same_ticks_as_the_onion() {
        // sample_every = 3: commands 1, 4, 7 open span scopes (the
        // fallback), the rest take the fast path; the sampled count
        // must match the onion exactly.
        let mut config = config();
        config.trace.sample_every = 3;
        let stack = Stack::build(&config);
        let mut fused = stack
            .fused_service(&session(), MapStore::new())
            .expect("full stack fuses");
        for _ in 0..7 {
            fused.call_one(Request::new(Command::Get("k".into())));
        }
        assert_eq!(stack.metrics().spans_sampled.sum(), 3);
        assert_eq!(stack.metrics().traced.sum(), 7);
    }

    #[test]
    fn call_one_enforces_auth_and_rate_limits() {
        let mut config = config();
        config.auth.anon_role = Role::ReadOnly;
        config.rate.burst = 2;
        config.rate.refill_per_sec = 1; // no refill mid-test
        config.trace.sample_every = 0; // keep every call on the fast path
        let stack = Stack::build(&config);
        let mut fused = stack
            .fused_service(&session(), MapStore::new())
            .expect("full stack fuses");
        match fused
            .call_one(Request::new(Command::Set("k".into(), "v".into())))
            .reply
        {
            Reply::Error(e) => assert!(e.starts_with("AUTH "), "got {e:?}"),
            other => panic!("expected AUTH rejection, got {other:?}"),
        }
        // The denied write still consumed a token (exactly like the
        // onion, where rate-limit sits below auth — denied commands
        // never reach it). Two reads exhaust the bucket...
        fused.call_one(Request::new(Command::Get("k".into())));
        fused.call_one(Request::new(Command::Get("k".into())));
        match fused.call_one(Request::new(Command::Get("k".into()))).reply {
            Reply::Error(e) => assert!(e.starts_with("RATELIMIT "), "got {e:?}"),
            other => panic!("expected RATELIMIT rejection, got {other:?}"),
        }
    }

    #[test]
    fn call_one_respects_armed_ttl_timers() {
        let mut config = config();
        config.trace.sample_every = 0;
        let stack = Stack::build(&config);
        let mut fused = stack
            .fused_service(&session(), MapStore::new())
            .expect("full stack fuses");
        fused.call_one(Request::new(Command::Set("k".into(), "v".into())));
        assert_eq!(
            fused
                .call_one(Request::new(Command::Expire("k".into(), 20)))
                .reply,
            Reply::Int(1)
        );
        std::thread::sleep(std::time::Duration::from_millis(40));
        assert_eq!(
            fused.call_one(Request::new(Command::Get("k".into()))).reply,
            Reply::Nil,
            "lapsed timer observed on the fast path"
        );
        assert_eq!(stack.metrics().ttl_expired.sum(), 1);
    }

    #[test]
    fn call_one_skips_spans_on_unsampled_ticks() {
        let mut config = config();
        config.trace.sample_every = 0;
        let stack = Stack::build(&config);
        let mut fused = stack
            .fused_service(&session(), MapStore::new())
            .expect("full stack fuses");
        for _ in 0..5 {
            fused.call_one(Request::new(Command::Ping));
        }
        assert_eq!(stack.metrics().spans_sampled.sum(), 0);
        assert_eq!(stack.metrics().traced.sum(), 5);
    }
}
