//! The fused (monomorphized) seven-layer chain and its batch-1 fast
//! path.
//!
//! [`FusedService`] is the canonical pipeline
//! (trace → breaker → deadline → auth → rate-limit → shed → ttl)
//! composed as **one concrete type**: every inter-layer call is a
//! direct, inlinable call instead of a `Box<dyn Service>` vtable
//! dispatch. Bursts of any size already run through the layers'
//! monomorphized `call`/`call_batch`; on top of that,
//! [`FusedService::call_one`] gives depth-1 bursts (the pipeline-1
//! workload, the stack's weakest point) a fast path that runs all
//! seven admission checks inline:
//!
//! * **one** clock read pair (shared by the trace histogram and the
//!   deadline check, which in the onion each pay their own),
//! * no `Vec<Request>` batch construction and no per-layer virtual
//!   calls,
//! * no span-scope bookkeeping (the fast path only runs on unsampled
//!   ticks, where every `span::start()` would be a `None` anyway).
//!
//! The fast path **falls back** to the layered `call` the moment a
//! command needs a layer's own handling — `AUTH` logins (session state
//! changes inside the auth layer), `QUIT` (rate-limit exemption),
//! `STATS`/`STATS RESET` (the trace layer folds/zeroes the `mw_*`
//! lines), the `SLOWLOG`/`TRACE` ring verbs (answered by the trace
//! layer) — or when the connection's sampling phase says this command
//! opens a span scope (each layer must bracket its own segment, which
//! only the layered path does). Armed TTL timers do **not** force the
//! fallback: the fast path calls into the monomorphized TTL service,
//! whose lock-serialized reap semantics apply unchanged; only the
//! empty-sidecar probe is short-circuited.
//!
//! Replies are byte-identical to the dyn onion by construction (the
//! proptest suite drives randomized bursts through both), and the
//! metrics are too: every counter and histogram the seven layers would
//! touch for an unsampled singleton is touched here, in the same
//! order.

use crate::auth::{AuthService, Role};
use crate::breaker::BreakerService;
use crate::deadline::DeadlineService;
use crate::pipeline::{Request, Response, Service};
use crate::protocol::{Command, CommandClass, Reply};
use crate::rate_limit::RateLimitService;
use crate::shed::ShedService;
use crate::trace::{class_name, TraceService};
use crate::ttl::TtlService;
use std::time::Instant;

/// The canonical seven-layer chain as one concrete (monomorphized)
/// type, built by
/// [`Stack::fused_service`](crate::pipeline::Stack::fused_service).
pub type FusedService<S> = TraceService<
    BreakerService<DeadlineService<AuthService<RateLimitService<ShedService<TtlService<S>>>>>>,
>;

/// Commands a specific layer handles itself (session logins, ring
/// verbs, stats folding, the `QUIT`/`HEALTH`/`READY` rate-limit
/// exemption): these take the layered path so that handling runs
/// exactly once, in its layer.
fn needs_layer_dispatch(cmd: &Command) -> bool {
    matches!(
        cmd,
        Command::Auth(_)
            | Command::Quit
            | Command::Health
            | Command::Ready
            | Command::Stats
            | Command::StatsReset
            | Command::SlowlogGet
            | Command::SlowlogReset
            | Command::SlowlogLen
            | Command::TraceGet
            | Command::TraceReset
            | Command::TraceLen
    )
}

impl<S: Service> FusedService<S> {
    /// The batch-1 fast path: all seven admission checks inline, one
    /// clock read pair, falling back to the layered [`Service::call`]
    /// for commands a layer owns and for span-sampled ticks (see the
    /// module doc for the exact conditions).
    pub fn call_one(&mut self, req: Request) -> Response {
        // Peek the sampling phase without consuming it: a sampled tick
        // needs the layered path (each layer brackets its own span
        // segment), and the delegated call advances the phase itself.
        let sampled = self.sample_every != 0 && self.tick == 0;
        if sampled || needs_layer_dispatch(&req.command) {
            return self.call(req);
        }
        // Unsampled: advance the phase exactly as tick_sample() would.
        if self.sample_every != 0 {
            self.tick += 1;
            if self.tick >= self.sample_every {
                self.tick = 0;
            }
        }
        let class = req.command.class();
        let verb = req.command.verb();
        // Deadline admission: the class budget (0 = exempt). The
        // deadline layer now sits one level below the breaker.
        let budget_us = match class {
            CommandClass::Read => self.inner.inner.config.read_us,
            CommandClass::Write => self.inner.inner.config.write_us,
            CommandClass::Control => 0,
        };
        // The one clock read pair, shared by the deadline check and
        // the trace histograms.
        let start = Instant::now();
        // Breaker admission, outside the deadline clock in the onion:
        // a breaker rejection skips the deadline check (and is never
        // observed), exactly like the layered path.
        let breaker_verdict = self.inner.state.admit(class);
        let breaker_admitted = breaker_verdict.is_none();
        let resp = match breaker_verdict {
            Some(rejection) => rejection,
            None => {
                // Auth admission: one role resolve (session principal
                // or the RCU-published anon policy), one class check.
                let auth = &mut self.inner.inner.inner;
                let role = match &auth.principal {
                    Some(p) => p.role,
                    None => auth.state.anon_role(),
                };
                if !role.allows(class) {
                    auth.metrics.auth_denied.increment();
                    Response::rejection(
                        "AUTH",
                        format_args!(
                            "{} requires {}, session role is {}",
                            verb,
                            match class {
                                CommandClass::Write => Role::ReadWrite.name(),
                                _ => Role::ReadOnly.name(),
                            },
                            role.name()
                        ),
                    )
                } else {
                    auth.metrics.auth_admitted.increment();
                    // Rate-limit admission: one token take from the
                    // session's bucket (QUIT/HEALTH/READY never reach
                    // here — they are layer-dispatch verbs).
                    let rate = &mut auth.inner;
                    if !rate.state.admit(&rate.bucket) {
                        Response::rejection(
                            "RATELIMIT",
                            format_args!("rejected retry_us={}", rate.state.retry_us()),
                        )
                    } else {
                        // Shed admission: one pressure read for writes
                        // when the layer is armed and a probe seated.
                        let shed = &mut rate.inner;
                        if let Some(rejection) = shed.state.admit(&req.command) {
                            rejection
                        } else {
                            // TTL admission: with no timer armed
                            // anywhere no key can be timed, so kv
                            // commands skip even the sidecar probe;
                            // anything else (armed timers, EXPIRE)
                            // runs the monomorphized TTL service with
                            // its full reap semantics.
                            let ttl = &mut shed.inner;
                            match &req.command {
                                Command::Get(_)
                                | Command::Set(..)
                                | Command::Del(_)
                                | Command::Incr(..)
                                    if ttl.state.sidecar.is_empty() =>
                                {
                                    ttl.state.metrics.ttl_checked.increment();
                                    ttl.inner.call(req)
                                }
                                _ => ttl.call(req),
                            }
                        }
                    }
                }
            }
        };
        let elapsed_us = start.elapsed().as_micros() as u64;
        let metrics = &self.metrics;
        // Deadline check, against the same clock pair — only for
        // responses that passed the breaker (in the onion the deadline
        // layer never sees a breaker rejection).
        let resp = if breaker_admitted && budget_us != 0 {
            metrics.deadline_checked.increment();
            if elapsed_us > budget_us {
                metrics.deadline_missed.increment();
                Response {
                    reply: Reply::Error(format!(
                        "DEADLINE {verb} took {elapsed_us}us budget {budget_us}us"
                    )),
                    close: resp.close,
                }
            } else {
                resp
            }
        } else {
            resp
        };
        // Breaker observation of the post-deadline response: DEADLINE
        // overruns count toward the trip threshold, successes reset
        // the streak — same order as the onion.
        if breaker_admitted {
            self.inner.state.observe(class, &resp);
        }
        // Trace bookkeeping: count, class histogram, slowlog offer —
        // what the trace layer records for an unsampled singleton.
        metrics.traced.increment();
        match class {
            CommandClass::Read => metrics.read_latency.record(elapsed_us),
            CommandClass::Write => metrics.write_latency.record(elapsed_us),
            CommandClass::Control => metrics.control_latency.record(elapsed_us),
        }
        metrics
            .slowlog
            .offer(&self.client, verb, class_name(class), 1, elapsed_us, None);
        resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::TokenSpec;
    use crate::config::MiddlewareConfig;
    use crate::pipeline::{BoxService, Session, Stack};
    use std::collections::HashMap;

    /// A deterministic in-memory store (the same shape the shard plane
    /// presents to the innermost layer).
    struct MapStore {
        map: HashMap<String, String>,
    }

    impl MapStore {
        fn new() -> Self {
            MapStore {
                map: HashMap::new(),
            }
        }
    }

    impl Service for MapStore {
        fn call(&mut self, req: Request) -> Response {
            match req.command {
                Command::Get(k) => Response::ok(match self.map.get(&k) {
                    Some(v) => Reply::Value(v.clone()),
                    None => Reply::Nil,
                }),
                Command::Set(k, v) => {
                    self.map.insert(k, v);
                    Response::ok(Reply::Status("OK"))
                }
                Command::Del(k) => {
                    self.map.remove(&k);
                    Response::ok(Reply::Status("OK"))
                }
                Command::Incr(k, d) => {
                    let next = self
                        .map
                        .get(&k)
                        .and_then(|v| v.parse::<i64>().ok())
                        .unwrap_or(0)
                        + d;
                    self.map.insert(k, next.to_string());
                    Response::ok(Reply::Int(next))
                }
                Command::Quit => Response {
                    reply: Reply::Status("OK"),
                    close: true,
                },
                Command::Stats => Response::ok(Reply::Array(vec!["shards=1".into()])),
                _ => Response::ok(Reply::Status("OK")),
            }
        }
    }

    fn config() -> MiddlewareConfig {
        let mut config = MiddlewareConfig::full();
        config.auth.tokens.push(TokenSpec {
            name: "writer".into(),
            token: "sekrit".into(),
            role: Role::ReadWrite,
        });
        config
    }

    fn session() -> Session {
        Session {
            client: "t:1".into(),
        }
    }

    /// One fused and one dyn chain over identically configured stacks.
    fn pair() -> (FusedService<MapStore>, BoxService) {
        let fused_stack = Stack::build(&config());
        let fused = fused_stack
            .fused_service(&session(), MapStore::new())
            .expect("full stack fuses");
        let dyn_stack = Stack::build(&config());
        let chain = dyn_stack.service(&session(), Box::new(MapStore::new()));
        (fused, chain)
    }

    #[test]
    fn fused_chain_is_a_service() {
        let stack = Stack::build(&config());
        let mut fused = stack
            .fused_service(&session(), MapStore::new())
            .expect("full stack fuses");
        let resp = fused.call(Request::new(Command::Ping));
        assert_eq!(resp.reply, Reply::Status("OK"));
        let resps = fused.call_batch(vec![
            Request::new(Command::Set("k".into(), "v".into())),
            Request::new(Command::Get("k".into())),
        ]);
        assert_eq!(resps[1].reply, Reply::Value("v".into()));
    }

    #[test]
    fn call_one_matches_the_dyn_onion_reply_for_reply() {
        let (mut fused, mut chain) = pair();
        let script: Vec<Command> = vec![
            Command::Set("a".into(), "1".into()),
            Command::Get("a".into()),
            Command::Incr("n".into(), 4),
            Command::Ping,
            Command::Auth("sekrit".into()),
            Command::Set("b".into(), "2".into()),
            Command::Expire("b".into(), 10_000),
            Command::Get("b".into()),
            Command::Del("a".into()),
            Command::Get("a".into()),
            Command::SlowlogLen,
            Command::Quit,
        ];
        for cmd in script {
            let want = chain.call(Request::new(cmd.clone()));
            let got = fused.call_one(Request::new(cmd.clone()));
            assert_eq!(got.reply, want.reply, "command {cmd:?}");
            assert_eq!(got.close, want.close, "command {cmd:?}");
        }
    }

    #[test]
    fn call_one_matches_the_onion_counters() {
        let fused_stack = Stack::build(&config());
        let mut fused = fused_stack
            .fused_service(&session(), MapStore::new())
            .expect("full stack fuses");
        let dyn_stack = Stack::build(&config());
        let mut chain = dyn_stack.service(&session(), Box::new(MapStore::new()));
        let script: Vec<Command> = vec![
            Command::Set("a".into(), "1".into()),
            Command::Get("a".into()),
            Command::Ping,
            Command::Get("miss".into()),
        ];
        for cmd in &script {
            chain.call(Request::new(cmd.clone()));
            fused.call_one(Request::new(cmd.clone()));
        }
        let (f, d) = (fused_stack.metrics(), dyn_stack.metrics());
        assert_eq!(f.traced.sum(), d.traced.sum());
        assert_eq!(f.read_latency.count(), d.read_latency.count());
        assert_eq!(f.write_latency.count(), d.write_latency.count());
        assert_eq!(f.control_latency.count(), d.control_latency.count());
        assert_eq!(f.auth_admitted.sum(), d.auth_admitted.sum());
        assert_eq!(f.rate_admitted.sum(), d.rate_admitted.sum());
        assert_eq!(f.deadline_checked.sum(), d.deadline_checked.sum());
        assert_eq!(f.ttl_checked.sum(), d.ttl_checked.sum());
        assert_eq!(f.spans_sampled.sum(), d.spans_sampled.sum());
    }

    #[test]
    fn call_one_samples_the_same_ticks_as_the_onion() {
        // sample_every = 3: commands 1, 4, 7 open span scopes (the
        // fallback), the rest take the fast path; the sampled count
        // must match the onion exactly.
        let mut config = config();
        config.trace.sample_every = 3;
        let stack = Stack::build(&config);
        let mut fused = stack
            .fused_service(&session(), MapStore::new())
            .expect("full stack fuses");
        for _ in 0..7 {
            fused.call_one(Request::new(Command::Get("k".into())));
        }
        assert_eq!(stack.metrics().spans_sampled.sum(), 3);
        assert_eq!(stack.metrics().traced.sum(), 7);
    }

    #[test]
    fn call_one_enforces_auth_and_rate_limits() {
        let mut config = config();
        config.auth.anon_role = Role::ReadOnly;
        config.rate.burst = 2;
        config.rate.refill_per_sec = 1; // no refill mid-test
        config.trace.sample_every = 0; // keep every call on the fast path
        let stack = Stack::build(&config);
        let mut fused = stack
            .fused_service(&session(), MapStore::new())
            .expect("full stack fuses");
        match fused
            .call_one(Request::new(Command::Set("k".into(), "v".into())))
            .reply
        {
            Reply::Error(e) => assert!(e.starts_with("AUTH "), "got {e:?}"),
            other => panic!("expected AUTH rejection, got {other:?}"),
        }
        // The denied write still consumed a token (exactly like the
        // onion, where rate-limit sits below auth — denied commands
        // never reach it). Two reads exhaust the bucket...
        fused.call_one(Request::new(Command::Get("k".into())));
        fused.call_one(Request::new(Command::Get("k".into())));
        match fused.call_one(Request::new(Command::Get("k".into()))).reply {
            Reply::Error(e) => assert!(e.starts_with("RATELIMIT "), "got {e:?}"),
            other => panic!("expected RATELIMIT rejection, got {other:?}"),
        }
    }

    #[test]
    fn call_one_respects_armed_ttl_timers() {
        let mut config = config();
        config.trace.sample_every = 0;
        let stack = Stack::build(&config);
        let mut fused = stack
            .fused_service(&session(), MapStore::new())
            .expect("full stack fuses");
        fused.call_one(Request::new(Command::Set("k".into(), "v".into())));
        assert_eq!(
            fused
                .call_one(Request::new(Command::Expire("k".into(), 20)))
                .reply,
            Reply::Int(1)
        );
        std::thread::sleep(std::time::Duration::from_millis(40));
        assert_eq!(
            fused.call_one(Request::new(Command::Get("k".into()))).reply,
            Reply::Nil,
            "lapsed timer observed on the fast path"
        );
        assert_eq!(stack.metrics().ttl_expired.sum(), 1);
    }

    #[test]
    fn call_one_trips_and_recovers_the_breaker() {
        // A slow store blows a 1ms read budget every time: the first
        // read is a DEADLINE overrun, which (failures=1) trips the
        // breaker; the next read is rejected by the breaker without
        // touching the store; after the cooldown a probe is admitted
        // and, still failing, re-opens it.
        struct SlowStore;
        impl Service for SlowStore {
            fn call(&mut self, _req: Request) -> Response {
                std::thread::sleep(std::time::Duration::from_millis(3));
                Response::ok(Reply::Status("OK"))
            }
        }
        let mut config = config();
        config.trace.sample_every = 0;
        config.deadline.read_us = 1_000;
        config.deadline.write_us = 1_000;
        config.breaker.failures = 1;
        config.breaker.cooldown_ms = 60_000; // stays open for the test
        let stack = Stack::build(&config);
        let mut fused = stack
            .fused_service(&session(), SlowStore)
            .expect("full stack fuses");
        match fused.call_one(Request::new(Command::Get("k".into()))).reply {
            Reply::Error(e) => assert!(e.starts_with("DEADLINE "), "got {e:?}"),
            other => panic!("expected deadline overrun, got {other:?}"),
        }
        match fused.call_one(Request::new(Command::Get("k".into()))).reply {
            Reply::Error(e) => assert!(e.starts_with("BREAKER read open"), "got {e:?}"),
            other => panic!("expected breaker rejection, got {other:?}"),
        }
        let m = stack.metrics();
        assert_eq!(m.breaker_trips.sum(), 1);
        assert_eq!(m.breaker_rejected.sum(), 1);
        // The rejection skipped the deadline check (breaker sits
        // outside it) but was still traced.
        assert_eq!(m.deadline_checked.sum(), 1);
        assert_eq!(m.traced.sum(), 2);
        // Writes are a different class: still admitted.
        match fused
            .call_one(Request::new(Command::Set("k".into(), "v".into())))
            .reply
        {
            Reply::Error(e) => assert!(e.starts_with("DEADLINE "), "got {e:?}"),
            other => panic!("expected deadline overrun, got {other:?}"),
        }
    }

    #[test]
    fn call_one_sheds_writes_on_shard_pressure() {
        use crate::shed::{PressureProbe, ShardPressure};
        struct StressedProbe;
        impl PressureProbe for StressedProbe {
            fn shard_of(&self, cmd: &Command) -> Option<usize> {
                matches!(cmd.class(), CommandClass::Write).then_some(3)
            }
            fn pressure_of(&self, _shard: usize) -> ShardPressure {
                ShardPressure {
                    queue_depth: 4_096,
                    ack_p99_us: 0,
                }
            }
        }
        let mut config = config();
        config.trace.sample_every = 0;
        config.shed.queue_depth = 1_024;
        let stack = Stack::build(&config);
        assert!(stack.shed_set_probe(std::sync::Arc::new(StressedProbe)));
        let mut fused = stack
            .fused_service(&session(), MapStore::new())
            .expect("full stack fuses");
        match fused
            .call_one(Request::new(Command::Set("k".into(), "v".into())))
            .reply
        {
            Reply::Error(e) => {
                assert_eq!(e, "SHED shard=3 queue_depth=4096 limit=1024", "got {e:?}")
            }
            other => panic!("expected shed rejection, got {other:?}"),
        }
        // Reads pass untouched; the shed rejection was rate-charged
        // and auth-admitted exactly like the onion.
        assert_eq!(
            fused.call_one(Request::new(Command::Get("k".into()))).reply,
            Reply::Nil
        );
        let m = stack.metrics();
        assert_eq!(m.shed_shed.sum(), 1);
        assert_eq!(m.auth_admitted.sum(), 2);
        assert_eq!(m.rate_admitted.sum(), 2);
    }

    #[test]
    fn call_one_skips_spans_on_unsampled_ticks() {
        let mut config = config();
        config.trace.sample_every = 0;
        let stack = Stack::build(&config);
        let mut fused = stack
            .fused_service(&session(), MapStore::new())
            .expect("full stack fuses");
        for _ in 0..5 {
            fused.call_one(Request::new(Command::Ping));
        }
        assert_eq!(stack.metrics().spans_sampled.sum(), 0);
        assert_eq!(stack.metrics().traced.sum(), 5);
    }
}
