//! The interceptor pipeline: tower-style `Layer`/`Service` onion
//! composition over protocol [`Request`]s and [`Response`]s.
//!
//! A [`Service`] is one synchronous request handler; a [`Layer`] wraps
//! a service in another service. A [`Stack`] owns the *shared* state of
//! every configured layer (token buckets, ACL tables, histograms, TTL
//! sidecar) and stamps out one per-connection service chain per
//! session — per-session state (the authenticated principal, the
//! session's token bucket) lives in the chain, shared state behind
//! `Arc`s in the stack.
//!
//! Layer order is canonical regardless of configuration order:
//!
//! ```text
//! client → trace → breaker → deadline → auth → rate-limit → shed → ttl → store
//! ```
//!
//! so tracing observes every rejection, the circuit breaker sits
//! outside the deadline layer whose `DEADLINE` overruns trip it,
//! deadlines cover the layers below them, authentication gates
//! rate-limit accounting, load shedding consults shard pressure only
//! for writes that survived admission (and sits above TTL so the TTL
//! layer's synthesized reap deletes are never shed), and the TTL
//! rewriter sits immediately in front of the store.

use crate::auth::AuthLayer;
use crate::breaker::BreakerLayer;
use crate::config::MiddlewareConfig;
use crate::deadline::DeadlineLayer;
use crate::metrics::PipelineMetrics;
use crate::protocol::{Command, Reply};
use crate::rate_limit::RateLimitLayer;
use crate::shed::{PressureProbe, ShedLayer};
use crate::trace::TraceLayer;
use crate::ttl::TtlLayer;
use std::sync::Arc;

/// A parsed request travelling down the pipeline.
#[derive(Clone, Debug)]
pub struct Request {
    /// The command (layers may rewrite it before forwarding).
    pub command: Command,
}

impl Request {
    /// Wrap a command.
    pub fn new(command: Command) -> Self {
        Request { command }
    }
}

/// A reply travelling back up the pipeline.
#[derive(Clone, Debug)]
pub struct Response {
    /// The wire reply.
    pub reply: Reply,
    /// Whether the server should close the connection after sending it.
    pub close: bool,
}

impl Response {
    /// A normal (keep-alive) response.
    pub fn ok(reply: Reply) -> Self {
        Response {
            reply,
            close: false,
        }
    }

    /// A structured middleware rejection: `-ERR <layer> <detail>` (see
    /// the error-reply grammar in [`crate::protocol`]).
    pub fn rejection(layer: &str, detail: impl std::fmt::Display) -> Self {
        Response {
            reply: Reply::Error(format!("{layer} {detail}")),
            close: false,
        }
    }
}

/// One synchronous request handler (the innermost one executes against
/// the store; every other one is a layer's wrapper).
pub trait Service {
    /// Handle one request.
    fn call(&mut self, req: Request) -> Response;

    /// Handle a pipelined burst of requests, returning one response per
    /// request **in request order**.
    ///
    /// The default forwards each request through [`Service::call`], so
    /// third-party layers keep working unchanged; the seven production
    /// layers override it to pay their per-request costs once per burst
    /// (one clock read and histogram sample in trace, one breaker
    /// admission sweep, one deadline check, one auth lookup, one bulk
    /// token-bucket take, one pressure read per shard in shed, one TTL
    /// sweep) — and the innermost store executor overrides it to
    /// group-acknowledge a whole burst of mutations per shard.
    ///
    /// Contract: `call_batch(reqs)` must produce the same responses, in
    /// the same order, as calling `call` on each request sequentially
    /// (timing-dependent layers — deadline, rate-limit refill — are
    /// exempt only in how they meter time, never in ordering).
    fn call_batch(&mut self, reqs: Vec<Request>) -> Vec<Response> {
        reqs.into_iter().map(|req| self.call(req)).collect()
    }
}

/// A boxed service chain link. Chains are built and driven entirely on
/// their connection's thread, so no `Send` bound is needed.
pub type BoxService = Box<dyn Service>;

/// Boxing preserves service-ness: a `Box<S>` (including the type-erased
/// [`BoxService`]) delegates both entry points to its contents, so the
/// generic layer services compose identically over concrete inners and
/// over boxed ones. The explicit `call_batch` forwarding matters — the
/// default would loop `call` and silently lose the inner service's
/// batch amortization.
impl<S: Service + ?Sized> Service for Box<S> {
    fn call(&mut self, req: Request) -> Response {
        (**self).call(req)
    }

    fn call_batch(&mut self, reqs: Vec<Request>) -> Vec<Response> {
        (**self).call_batch(reqs)
    }
}

/// Drive a burst through `inner` with per-request admission control:
/// requests `admit` rejects are answered in place, the rest travel
/// downstream as **one** inner batch, and the replies are zipped back
/// around the rejections in request order. The shared partial path of
/// the auth and rate-limit layers' `call_batch` — one implementation
/// of the ordering invariant instead of two drifting copies.
pub(crate) fn partition_batch<S: Service + ?Sized>(
    inner: &mut S,
    reqs: Vec<Request>,
    mut admit: impl FnMut(&Request) -> Option<Response>,
) -> Vec<Response> {
    let mut slots: Vec<Option<Response>> = Vec::with_capacity(reqs.len());
    let mut admitted: Vec<Request> = Vec::with_capacity(reqs.len());
    for req in reqs {
        match admit(&req) {
            Some(rejection) => slots.push(Some(rejection)),
            None => {
                slots.push(None);
                admitted.push(req);
            }
        }
    }
    let mut inner_resps = if admitted.is_empty() {
        Vec::new()
    } else {
        inner.call_batch(admitted)
    }
    .into_iter();
    slots
        .into_iter()
        .map(|slot| match slot {
            Some(rejection) => rejection,
            None => inner_resps
                .next()
                .expect("one inner response per admitted request"),
        })
        .collect()
}

/// Per-connection identity the layers key their session state on.
#[derive(Clone, Debug)]
pub struct Session {
    /// The client's identity: the peer `ip:port` (one bucket per
    /// connection), or any stable name an embedding chooses.
    pub client: String,
}

/// A middleware layer: shared state plus a factory wrapping an inner
/// service in this layer's per-connection service.
pub trait Layer: Send + Sync {
    /// Which of the seven production layers this is.
    fn kind(&self) -> LayerKind;

    /// Wrap `inner` for one session.
    fn wrap(&self, session: &Session, inner: BoxService) -> BoxService;
}

/// Number of production [`LayerKind`]s — the size of every
/// per-layer metric array (span cost tables, admission histograms).
pub const LAYER_COUNT: usize = 7;

/// The seven production layers, in canonical outer→inner order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LayerKind {
    /// Per-command latency histograms + per-layer counters folded into
    /// `STATS` (outermost, so it observes every rejection).
    Trace,
    /// Per-verb-class circuit breaker (outside deadline, so it observes
    /// the `DEADLINE` overruns that trip it).
    Breaker,
    /// Per-class execution budgets.
    Deadline,
    /// Token-keyed authentication and role ACLs (`AUTH`).
    Auth,
    /// Per-client token-bucket admission control.
    RateLimit,
    /// Shard-pressure load shedding for writes (below rate-limit, so a
    /// shed burst still pays tokens; above TTL, so reap deletes pass).
    Shed,
    /// TTL/expiry sidecar: `EXPIRE` arms timers, `GET` lazily expires
    /// (innermost, immediately in front of the store).
    Ttl,
}

impl LayerKind {
    /// Every production layer in canonical outer→inner order.
    pub const ALL: [LayerKind; LAYER_COUNT] = [
        LayerKind::Trace,
        LayerKind::Breaker,
        LayerKind::Deadline,
        LayerKind::Auth,
        LayerKind::RateLimit,
        LayerKind::Shed,
        LayerKind::Ttl,
    ];

    /// This layer's slot in per-layer metric arrays (canonical order).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            LayerKind::Trace => 0,
            LayerKind::Breaker => 1,
            LayerKind::Deadline => 2,
            LayerKind::Auth => 3,
            LayerKind::RateLimit => 4,
            LayerKind::Shed => 5,
            LayerKind::Ttl => 6,
        }
    }

    /// The lowercase config/display name.
    pub fn name(self) -> &'static str {
        match self {
            LayerKind::Trace => "trace",
            LayerKind::Breaker => "breaker",
            LayerKind::Deadline => "deadline",
            LayerKind::Auth => "auth",
            LayerKind::RateLimit => "ratelimit",
            LayerKind::Shed => "shed",
            LayerKind::Ttl => "ttl",
        }
    }

    /// Parse a config name (`trace`, `breaker`, `deadline`, `auth`,
    /// `ratelimit`, `shed`, `ttl`).
    pub fn parse(name: &str) -> Result<LayerKind, String> {
        match name.trim().to_ascii_lowercase().as_str() {
            "trace" | "tracing" => Ok(LayerKind::Trace),
            "breaker" | "circuit-breaker" => Ok(LayerKind::Breaker),
            "deadline" | "timeout" => Ok(LayerKind::Deadline),
            "auth" | "acl" => Ok(LayerKind::Auth),
            "ratelimit" | "rate" | "rate-limit" => Ok(LayerKind::RateLimit),
            "shed" | "load-shed" | "loadshed" => Ok(LayerKind::Shed),
            "ttl" | "expiry" => Ok(LayerKind::Ttl),
            other => Err(format!("unknown middleware layer {other:?}")),
        }
    }
}

/// The configured pipeline: shared layer state + the per-connection
/// chain factory.
///
/// The seven production layers are held as **typed** fields (not a
/// `Vec<Box<dyn Layer>>`), which is what lets [`Stack::fused_service`]
/// stamp out the fully monomorphized chain — one concrete
/// `Trace<Breaker<Deadline<Auth<RateLimit<Shed<Ttl<S>>>>>>>` type with
/// zero virtual calls — while [`Stack::service`] keeps building the
/// boxed `dyn` onion for partial/custom stacks and the `--dyn-stack`
/// fallback.
pub struct Stack {
    trace: Option<TraceLayer>,
    breaker: Option<BreakerLayer>,
    deadline: Option<DeadlineLayer>,
    auth: Option<AuthLayer>,
    rate: Option<RateLimitLayer>,
    shed: Option<ShedLayer>,
    ttl: Option<TtlLayer>,
    metrics: Arc<PipelineMetrics>,
    auth_state: Option<Arc<crate::auth::AuthState>>,
    shed_state: Option<Arc<crate::shed::ShedState>>,
}

impl std::fmt::Debug for Stack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stack")
            .field(
                "layers",
                &self.kinds().iter().map(|k| k.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Stack {
    /// Build the stack from a config. Layer order in the config is
    /// irrelevant; duplicates collapse.
    pub fn build(config: &MiddlewareConfig) -> Arc<Stack> {
        let metrics = Arc::new(PipelineMetrics::with_trace(&config.trace));
        let mut kinds = config.layers.clone();
        kinds.sort();
        kinds.dedup();
        let depth = kinds.len();
        let mut stack = Stack {
            trace: None,
            breaker: None,
            deadline: None,
            auth: None,
            rate: None,
            shed: None,
            ttl: None,
            metrics: Arc::clone(&metrics),
            auth_state: None,
            shed_state: None,
        };
        for kind in kinds {
            match kind {
                LayerKind::Trace => {
                    stack.trace = Some(TraceLayer::new(
                        Arc::clone(&metrics),
                        depth,
                        config.trace.sample_every,
                    ))
                }
                LayerKind::Breaker => {
                    stack.breaker = Some(BreakerLayer::new(
                        config.breaker.clone(),
                        Arc::clone(&metrics),
                    ))
                }
                LayerKind::Deadline => {
                    stack.deadline = Some(DeadlineLayer::new(
                        config.deadline.clone(),
                        Arc::clone(&metrics),
                    ))
                }
                LayerKind::Auth => {
                    let layer = AuthLayer::new(&config.auth, Arc::clone(&metrics));
                    stack.auth_state = Some(layer.state());
                    stack.auth = Some(layer);
                }
                LayerKind::RateLimit => {
                    stack.rate = Some(RateLimitLayer::new(
                        config.rate.clone(),
                        Arc::clone(&metrics),
                    ))
                }
                LayerKind::Shed => {
                    let layer = ShedLayer::new(config.shed.clone(), Arc::clone(&metrics));
                    stack.shed_state = Some(layer.state());
                    stack.shed = Some(layer);
                }
                LayerKind::Ttl => stack.ttl = Some(TtlLayer::new(Arc::clone(&metrics))),
            }
        }
        Arc::new(stack)
    }

    /// The configured layers in canonical outer→inner order.
    pub fn kinds(&self) -> Vec<LayerKind> {
        let mut kinds = Vec::new();
        if self.trace.is_some() {
            kinds.push(LayerKind::Trace);
        }
        if self.breaker.is_some() {
            kinds.push(LayerKind::Breaker);
        }
        if self.deadline.is_some() {
            kinds.push(LayerKind::Deadline);
        }
        if self.auth.is_some() {
            kinds.push(LayerKind::Auth);
        }
        if self.rate.is_some() {
            kinds.push(LayerKind::RateLimit);
        }
        if self.shed.is_some() {
            kinds.push(LayerKind::Shed);
        }
        if self.ttl.is_some() {
            kinds.push(LayerKind::Ttl);
        }
        kinds
    }

    /// Number of configured layers.
    pub fn depth(&self) -> usize {
        self.kinds().len()
    }

    /// The shared per-layer counters and histograms.
    pub fn metrics(&self) -> &Arc<PipelineMetrics> {
        &self.metrics
    }

    /// Build one session's service chain around `inner` (the store
    /// executor), innermost layer first — the type-erased onion, one
    /// `Box<dyn Service>` per layer. This is the `--dyn-stack` fallback
    /// and the path for partial stacks and third-party [`Layer`]s.
    pub fn service(&self, session: &Session, inner: BoxService) -> BoxService {
        let mut chain = inner;
        if let Some(layer) = &self.ttl {
            chain = layer.wrap(session, chain);
        }
        if let Some(layer) = &self.shed {
            chain = layer.wrap(session, chain);
        }
        if let Some(layer) = &self.rate {
            chain = layer.wrap(session, chain);
        }
        if let Some(layer) = &self.auth {
            chain = layer.wrap(session, chain);
        }
        if let Some(layer) = &self.deadline {
            chain = layer.wrap(session, chain);
        }
        if let Some(layer) = &self.breaker {
            chain = layer.wrap(session, chain);
        }
        if let Some(layer) = &self.trace {
            chain = layer.wrap(session, chain);
        }
        chain
    }

    /// Whether this stack is the canonical full seven-layer pipeline,
    /// i.e. whether [`Stack::fused_service`] can build the
    /// monomorphized chain for it.
    pub fn fusible(&self) -> bool {
        self.trace.is_some()
            && self.breaker.is_some()
            && self.deadline.is_some()
            && self.auth.is_some()
            && self.rate.is_some()
            && self.shed.is_some()
            && self.ttl.is_some()
    }

    /// Build one session's **fused** chain around `inner`: the seven
    /// canonical layers composed as a single concrete type, so every
    /// inter-layer call is a direct (inlinable) call rather than a
    /// vtable dispatch, and batch-1 traffic can take
    /// [`crate::fused::FusedService::call_one`]. Returns `None` unless
    /// the stack is [`Stack::fusible`] (all seven layers configured).
    pub fn fused_service<S: Service>(
        &self,
        session: &Session,
        inner: S,
    ) -> Option<crate::fused::FusedService<S>> {
        match (
            &self.trace,
            &self.breaker,
            &self.deadline,
            &self.auth,
            &self.rate,
            &self.shed,
            &self.ttl,
        ) {
            (
                Some(trace),
                Some(breaker),
                Some(deadline),
                Some(auth),
                Some(rate),
                Some(shed),
                Some(ttl),
            ) => {
                let chain = ttl.wrap_typed(session, inner);
                let chain = shed.wrap_typed(session, chain);
                let chain = rate.wrap_typed(session, chain);
                let chain = auth.wrap_typed(session, chain);
                let chain = deadline.wrap_typed(session, chain);
                let chain = breaker.wrap_typed(session, chain);
                Some(trace.wrap_typed(session, chain))
            }
            _ => None,
        }
    }

    /// Seat the live shard-pressure probe the shed layer consults (the
    /// storage plane does not exist yet when the stack is built, so the
    /// embedding injects it here once the store is up). Returns `false`
    /// when the shed layer is not configured.
    pub fn shed_set_probe(&self, probe: Arc<dyn PressureProbe>) -> bool {
        match &self.shed_state {
            Some(shed) => {
                shed.set_probe(probe);
                true
            }
            None => false,
        }
    }

    /// Add (or replace) an auth token at runtime. Returns `false` when
    /// the auth layer is not configured.
    pub fn auth_set_token(&self, name: &str, token: &str, role: crate::auth::Role) -> bool {
        match &self.auth_state {
            Some(auth) => {
                auth.set_token(name, token, role);
                self.metrics.auth_reloads.increment();
                true
            }
            None => false,
        }
    }

    /// RCU-publish a new anonymous-session role (a policy reload: every
    /// connection observes it on its next request). Returns `false`
    /// when the auth layer is not configured.
    pub fn auth_set_anon_role(&self, role: crate::auth::Role) -> bool {
        match &self.auth_state {
            Some(auth) => {
                auth.publish_anon_role(role);
                self.metrics.auth_reloads.increment();
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl Service for Echo {
        fn call(&mut self, req: Request) -> Response {
            Response::ok(Reply::Value(req.command.verb().to_string()))
        }
    }

    fn session() -> Session {
        Session {
            client: "t:1".into(),
        }
    }

    #[test]
    fn empty_stack_is_a_passthrough() {
        let stack = Stack::build(&MiddlewareConfig::none());
        assert_eq!(stack.depth(), 0);
        let mut svc = stack.service(&session(), Box::new(Echo));
        let resp = svc.call(Request::new(Command::Ping));
        assert_eq!(resp.reply, Reply::Value("PING".into()));
        assert!(!resp.close);
    }

    #[test]
    fn full_stack_has_seven_layers_in_canonical_order() {
        let stack = Stack::build(&MiddlewareConfig::full());
        assert_eq!(stack.depth(), 7);
        assert_eq!(stack.kinds(), LayerKind::ALL.to_vec());
        assert!(stack.fusible());
    }

    #[test]
    fn partial_stacks_are_not_fusible() {
        let mut config = MiddlewareConfig::none();
        assert!(!Stack::build(&config).fusible(), "empty stack");
        config.layers = vec![LayerKind::Trace, LayerKind::Ttl];
        let stack = Stack::build(&config);
        assert!(!stack.fusible());
        assert!(stack.fused_service(&session(), Echo).is_none());
    }

    #[test]
    fn duplicate_layer_names_collapse() {
        let mut config = MiddlewareConfig::none();
        config.layers = vec![LayerKind::Ttl, LayerKind::Trace, LayerKind::Ttl];
        let stack = Stack::build(&config);
        assert_eq!(stack.depth(), 2);
    }

    #[test]
    fn default_call_batch_loops_over_call() {
        // A service that only implements `call` (a third-party layer)
        // still answers batches, one response per request, in order.
        let mut svc: BoxService = Box::new(Echo);
        let resps = svc.call_batch(vec![
            Request::new(Command::Ping),
            Request::new(Command::Get("k".into())),
            Request::new(Command::Stats),
        ]);
        let verbs: Vec<Reply> = resps.into_iter().map(|r| r.reply).collect();
        assert_eq!(
            verbs,
            vec![
                Reply::Value("PING".into()),
                Reply::Value("GET".into()),
                Reply::Value("STATS".into()),
            ]
        );
    }

    #[test]
    fn full_stack_batch_matches_sequential() {
        // Same burst through two identically configured stacks: the
        // batched chain must answer exactly like the sequential one.
        let burst: Vec<Command> = vec![
            Command::Ping,
            Command::Get("a".into()),
            Command::Set("a".into(), "1".into()),
            Command::Incr("n".into(), 4),
            Command::Del("a".into()),
            Command::Timeline(7),
        ];
        let seq_stack = Stack::build(&MiddlewareConfig::full());
        let mut seq = seq_stack.service(&session(), Box::new(Echo));
        let batch_stack = Stack::build(&MiddlewareConfig::full());
        let mut batched = batch_stack.service(&session(), Box::new(Echo));
        let want: Vec<Reply> = burst
            .iter()
            .map(|c| seq.call(Request::new(c.clone())).reply)
            .collect();
        let got: Vec<Reply> = batched
            .call_batch(burst.into_iter().map(Request::new).collect())
            .into_iter()
            .map(|r| r.reply)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn layer_names_round_trip() {
        for kind in LayerKind::ALL {
            assert_eq!(LayerKind::parse(kind.name()), Ok(kind));
        }
        assert!(LayerKind::parse("blorp").is_err());
    }

    #[test]
    fn probe_injection_requires_the_shed_layer() {
        struct NoPressure;
        impl PressureProbe for NoPressure {
            fn shard_of(&self, _cmd: &Command) -> Option<usize> {
                None
            }
            fn pressure_of(&self, _shard: usize) -> crate::shed::ShardPressure {
                crate::shed::ShardPressure {
                    queue_depth: 0,
                    ack_p99_us: 0,
                }
            }
        }
        let full = Stack::build(&MiddlewareConfig::full());
        assert!(full.shed_set_probe(Arc::new(NoPressure)));
        let none = Stack::build(&MiddlewareConfig::none());
        assert!(!none.shed_set_probe(Arc::new(NoPressure)));
    }
}
