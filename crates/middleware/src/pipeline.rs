//! The interceptor pipeline: tower-style `Layer`/`Service` onion
//! composition over protocol [`Request`]s and [`Response`]s.
//!
//! A [`Service`] is one synchronous request handler; a [`Layer`] wraps
//! a service in another service. A [`Stack`] owns the *shared* state of
//! every configured layer (token buckets, ACL tables, histograms, TTL
//! sidecar) and stamps out one per-connection service chain per
//! session — per-session state (the authenticated principal, the
//! session's token bucket) lives in the chain, shared state behind
//! `Arc`s in the stack.
//!
//! Layer order is canonical regardless of configuration order:
//!
//! ```text
//! client → trace → deadline → auth → rate-limit → ttl → store
//! ```
//!
//! so tracing observes every rejection, deadlines cover the layers
//! below them, authentication gates rate-limit accounting, and the TTL
//! rewriter sits immediately in front of the store.

use crate::auth::AuthLayer;
use crate::config::MiddlewareConfig;
use crate::deadline::DeadlineLayer;
use crate::metrics::PipelineMetrics;
use crate::protocol::{Command, Reply};
use crate::rate_limit::RateLimitLayer;
use crate::trace::TraceLayer;
use crate::ttl::TtlLayer;
use std::sync::Arc;

/// A parsed request travelling down the pipeline.
#[derive(Clone, Debug)]
pub struct Request {
    /// The command (layers may rewrite it before forwarding).
    pub command: Command,
}

impl Request {
    /// Wrap a command.
    pub fn new(command: Command) -> Self {
        Request { command }
    }
}

/// A reply travelling back up the pipeline.
#[derive(Clone, Debug)]
pub struct Response {
    /// The wire reply.
    pub reply: Reply,
    /// Whether the server should close the connection after sending it.
    pub close: bool,
}

impl Response {
    /// A normal (keep-alive) response.
    pub fn ok(reply: Reply) -> Self {
        Response {
            reply,
            close: false,
        }
    }

    /// A structured middleware rejection: `-ERR <layer> <detail>` (see
    /// the error-reply grammar in [`crate::protocol`]).
    pub fn rejection(layer: &str, detail: impl std::fmt::Display) -> Self {
        Response {
            reply: Reply::Error(format!("{layer} {detail}")),
            close: false,
        }
    }
}

/// One synchronous request handler (the innermost one executes against
/// the store; every other one is a layer's wrapper).
pub trait Service {
    /// Handle one request.
    fn call(&mut self, req: Request) -> Response;

    /// Handle a pipelined burst of requests, returning one response per
    /// request **in request order**.
    ///
    /// The default forwards each request through [`Service::call`], so
    /// third-party layers keep working unchanged; the five production
    /// layers override it to pay their per-request costs once per burst
    /// (one clock read and histogram sample in trace, one deadline
    /// check, one auth lookup, one bulk token-bucket take, one TTL
    /// sweep) — and the innermost store executor overrides it to
    /// group-acknowledge a whole burst of mutations per shard.
    ///
    /// Contract: `call_batch(reqs)` must produce the same responses, in
    /// the same order, as calling `call` on each request sequentially
    /// (timing-dependent layers — deadline, rate-limit refill — are
    /// exempt only in how they meter time, never in ordering).
    fn call_batch(&mut self, reqs: Vec<Request>) -> Vec<Response> {
        reqs.into_iter().map(|req| self.call(req)).collect()
    }
}

/// A boxed service chain link. Chains are built and driven entirely on
/// their connection's thread, so no `Send` bound is needed.
pub type BoxService = Box<dyn Service>;

/// Drive a burst through `inner` with per-request admission control:
/// requests `admit` rejects are answered in place, the rest travel
/// downstream as **one** inner batch, and the replies are zipped back
/// around the rejections in request order. The shared partial path of
/// the auth and rate-limit layers' `call_batch` — one implementation
/// of the ordering invariant instead of two drifting copies.
pub(crate) fn partition_batch(
    inner: &mut BoxService,
    reqs: Vec<Request>,
    mut admit: impl FnMut(&Request) -> Option<Response>,
) -> Vec<Response> {
    let mut slots: Vec<Option<Response>> = Vec::with_capacity(reqs.len());
    let mut admitted: Vec<Request> = Vec::with_capacity(reqs.len());
    for req in reqs {
        match admit(&req) {
            Some(rejection) => slots.push(Some(rejection)),
            None => {
                slots.push(None);
                admitted.push(req);
            }
        }
    }
    let mut inner_resps = if admitted.is_empty() {
        Vec::new()
    } else {
        inner.call_batch(admitted)
    }
    .into_iter();
    slots
        .into_iter()
        .map(|slot| match slot {
            Some(rejection) => rejection,
            None => inner_resps
                .next()
                .expect("one inner response per admitted request"),
        })
        .collect()
}

/// Per-connection identity the layers key their session state on.
#[derive(Clone, Debug)]
pub struct Session {
    /// The client's identity: the peer `ip:port` (one bucket per
    /// connection), or any stable name an embedding chooses.
    pub client: String,
}

/// A middleware layer: shared state plus a factory wrapping an inner
/// service in this layer's per-connection service.
pub trait Layer: Send + Sync {
    /// Which of the five production layers this is.
    fn kind(&self) -> LayerKind;

    /// Wrap `inner` for one session.
    fn wrap(&self, session: &Session, inner: BoxService) -> BoxService;
}

/// Number of production [`LayerKind`]s — the size of every
/// per-layer metric array (span cost tables, admission histograms).
pub const LAYER_COUNT: usize = 5;

/// The five production layers, in canonical outer→inner order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LayerKind {
    /// Per-command latency histograms + per-layer counters folded into
    /// `STATS` (outermost, so it observes every rejection).
    Trace,
    /// Per-class execution budgets.
    Deadline,
    /// Token-keyed authentication and role ACLs (`AUTH`).
    Auth,
    /// Per-client token-bucket admission control.
    RateLimit,
    /// TTL/expiry sidecar: `EXPIRE` arms timers, `GET` lazily expires
    /// (innermost, immediately in front of the store).
    Ttl,
}

impl LayerKind {
    /// Every production layer in canonical outer→inner order.
    pub const ALL: [LayerKind; LAYER_COUNT] = [
        LayerKind::Trace,
        LayerKind::Deadline,
        LayerKind::Auth,
        LayerKind::RateLimit,
        LayerKind::Ttl,
    ];

    /// This layer's slot in per-layer metric arrays (canonical order).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            LayerKind::Trace => 0,
            LayerKind::Deadline => 1,
            LayerKind::Auth => 2,
            LayerKind::RateLimit => 3,
            LayerKind::Ttl => 4,
        }
    }

    /// The lowercase config/display name.
    pub fn name(self) -> &'static str {
        match self {
            LayerKind::Trace => "trace",
            LayerKind::Deadline => "deadline",
            LayerKind::Auth => "auth",
            LayerKind::RateLimit => "ratelimit",
            LayerKind::Ttl => "ttl",
        }
    }

    /// Parse a config name (`trace`, `deadline`, `auth`, `ratelimit`,
    /// `ttl`).
    pub fn parse(name: &str) -> Result<LayerKind, String> {
        match name.trim().to_ascii_lowercase().as_str() {
            "trace" | "tracing" => Ok(LayerKind::Trace),
            "deadline" | "timeout" => Ok(LayerKind::Deadline),
            "auth" | "acl" => Ok(LayerKind::Auth),
            "ratelimit" | "rate" | "rate-limit" => Ok(LayerKind::RateLimit),
            "ttl" | "expiry" => Ok(LayerKind::Ttl),
            other => Err(format!("unknown middleware layer {other:?}")),
        }
    }
}

/// The configured pipeline: shared layer state + the per-connection
/// chain factory.
pub struct Stack {
    layers: Vec<Box<dyn Layer>>,
    metrics: Arc<PipelineMetrics>,
    auth: Option<Arc<crate::auth::AuthState>>,
}

impl std::fmt::Debug for Stack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stack")
            .field(
                "layers",
                &self
                    .layers
                    .iter()
                    .map(|l| l.kind().name())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Stack {
    /// Build the stack from a config. Layer order in the config is
    /// irrelevant; duplicates collapse.
    pub fn build(config: &MiddlewareConfig) -> Arc<Stack> {
        let metrics = Arc::new(PipelineMetrics::with_trace(&config.trace));
        let mut kinds = config.layers.clone();
        kinds.sort();
        kinds.dedup();
        let depth = kinds.len();
        let mut auth_state = None;
        let layers: Vec<Box<dyn Layer>> = kinds
            .into_iter()
            .map(|kind| -> Box<dyn Layer> {
                match kind {
                    LayerKind::Trace => Box::new(TraceLayer::new(
                        Arc::clone(&metrics),
                        depth,
                        config.trace.sample_every,
                    )),
                    LayerKind::Deadline => Box::new(DeadlineLayer::new(
                        config.deadline.clone(),
                        Arc::clone(&metrics),
                    )),
                    LayerKind::Auth => {
                        let layer = AuthLayer::new(&config.auth, Arc::clone(&metrics));
                        auth_state = Some(layer.state());
                        Box::new(layer)
                    }
                    LayerKind::RateLimit => Box::new(RateLimitLayer::new(
                        config.rate.clone(),
                        Arc::clone(&metrics),
                    )),
                    LayerKind::Ttl => Box::new(TtlLayer::new(Arc::clone(&metrics))),
                }
            })
            .collect();
        Arc::new(Stack {
            layers,
            metrics,
            auth: auth_state,
        })
    }

    /// Number of configured layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// The shared per-layer counters and histograms.
    pub fn metrics(&self) -> &Arc<PipelineMetrics> {
        &self.metrics
    }

    /// Build one session's service chain around `inner` (the store
    /// executor), innermost layer first.
    pub fn service(&self, session: &Session, inner: BoxService) -> BoxService {
        let mut chain = inner;
        for layer in self.layers.iter().rev() {
            chain = layer.wrap(session, chain);
        }
        chain
    }

    /// Add (or replace) an auth token at runtime. Returns `false` when
    /// the auth layer is not configured.
    pub fn auth_set_token(&self, name: &str, token: &str, role: crate::auth::Role) -> bool {
        match &self.auth {
            Some(auth) => {
                auth.set_token(name, token, role);
                self.metrics.auth_reloads.increment();
                true
            }
            None => false,
        }
    }

    /// RCU-publish a new anonymous-session role (a policy reload: every
    /// connection observes it on its next request). Returns `false`
    /// when the auth layer is not configured.
    pub fn auth_set_anon_role(&self, role: crate::auth::Role) -> bool {
        match &self.auth {
            Some(auth) => {
                auth.publish_anon_role(role);
                self.metrics.auth_reloads.increment();
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl Service for Echo {
        fn call(&mut self, req: Request) -> Response {
            Response::ok(Reply::Value(req.command.verb().to_string()))
        }
    }

    fn session() -> Session {
        Session {
            client: "t:1".into(),
        }
    }

    #[test]
    fn empty_stack_is_a_passthrough() {
        let stack = Stack::build(&MiddlewareConfig::none());
        assert_eq!(stack.depth(), 0);
        let mut svc = stack.service(&session(), Box::new(Echo));
        let resp = svc.call(Request::new(Command::Ping));
        assert_eq!(resp.reply, Reply::Value("PING".into()));
        assert!(!resp.close);
    }

    #[test]
    fn full_stack_has_five_layers_in_canonical_order() {
        let stack = Stack::build(&MiddlewareConfig::full());
        assert_eq!(stack.depth(), 5);
        let kinds: Vec<LayerKind> = stack.layers.iter().map(|l| l.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                LayerKind::Trace,
                LayerKind::Deadline,
                LayerKind::Auth,
                LayerKind::RateLimit,
                LayerKind::Ttl,
            ]
        );
    }

    #[test]
    fn duplicate_layer_names_collapse() {
        let mut config = MiddlewareConfig::none();
        config.layers = vec![LayerKind::Ttl, LayerKind::Trace, LayerKind::Ttl];
        let stack = Stack::build(&config);
        assert_eq!(stack.depth(), 2);
    }

    #[test]
    fn default_call_batch_loops_over_call() {
        // A service that only implements `call` (a third-party layer)
        // still answers batches, one response per request, in order.
        let mut svc: BoxService = Box::new(Echo);
        let resps = svc.call_batch(vec![
            Request::new(Command::Ping),
            Request::new(Command::Get("k".into())),
            Request::new(Command::Stats),
        ]);
        let verbs: Vec<Reply> = resps.into_iter().map(|r| r.reply).collect();
        assert_eq!(
            verbs,
            vec![
                Reply::Value("PING".into()),
                Reply::Value("GET".into()),
                Reply::Value("STATS".into()),
            ]
        );
    }

    #[test]
    fn full_stack_batch_matches_sequential() {
        // Same burst through two identically configured stacks: the
        // batched chain must answer exactly like the sequential one.
        let burst: Vec<Command> = vec![
            Command::Ping,
            Command::Get("a".into()),
            Command::Set("a".into(), "1".into()),
            Command::Incr("n".into(), 4),
            Command::Del("a".into()),
            Command::Timeline(7),
        ];
        let seq_stack = Stack::build(&MiddlewareConfig::full());
        let mut seq = seq_stack.service(&session(), Box::new(Echo));
        let batch_stack = Stack::build(&MiddlewareConfig::full());
        let mut batched = batch_stack.service(&session(), Box::new(Echo));
        let want: Vec<Reply> = burst
            .iter()
            .map(|c| seq.call(Request::new(c.clone())).reply)
            .collect();
        let got: Vec<Reply> = batched
            .call_batch(burst.into_iter().map(Request::new).collect())
            .into_iter()
            .map(|r| r.reply)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn layer_names_round_trip() {
        for kind in [
            LayerKind::Trace,
            LayerKind::Deadline,
            LayerKind::Auth,
            LayerKind::RateLimit,
            LayerKind::Ttl,
        ] {
            assert_eq!(LayerKind::parse(kind.name()), Ok(kind));
        }
        assert!(LayerKind::parse("blorp").is_err());
    }
}
