//! Pipeline observability: per-command latency histograms and
//! per-layer counters, folded into the server's `STATS` reply by the
//! trace layer.
//!
//! The rate limiter's admission/refill counters are
//! [`dego_juc::LongAdder`]s — the striped, contention-relieved sums the
//! token-bucket design calls for. Every other counter is a plain
//! relaxed atomic ([`RelaxedCounter`], the same doctrine as the
//! server's `ServerStats`: statistics, not synchronization — a
//! `LongAdder` here would buy nothing and its per-bump stall-proxy
//! accounting would tax the hot path). Latencies go into fixed
//! log₂-bucket histograms of relaxed atomics: recording is one
//! `fetch_add`, never a lock.

use crate::config::TraceConfig;
use crate::pipeline::{LayerKind, LAYER_COUNT};
use crate::slowlog::SlowLog;
use dego_juc::LongAdder;
use std::sync::atomic::{AtomicU64, Ordering};

/// A relaxed event counter (statistics, not synchronization).
#[derive(Debug, Default)]
pub struct RelaxedCounter(AtomicU64);

impl RelaxedCounter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        RelaxedCounter(AtomicU64::new(0))
    }

    /// Count one event.
    #[inline]
    pub fn increment(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` events at once (the batched paths' amortized bump).
    #[inline]
    pub fn add(&self, n: u64) {
        if n > 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The total so far.
    pub fn sum(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets: bucket `i` holds samples in
/// `[2^i, 2^(i+1)) µs`, with the last bucket open-ended (≥ ~34 s).
const BUCKETS: usize = 26;

/// A fixed log₂-bucket latency histogram (microseconds).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    /// Sum of every recorded sample (for Prometheus `_sum`).
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
        }
    }

    /// Record one sample of `micros`.
    #[inline]
    pub fn record(&self, micros: u64) {
        let bucket = (64 - micros.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(micros, Ordering::Relaxed);
    }

    /// Sum of every recorded sample in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Cumulative bucket counts in Prometheus form: `(Some(le),
    /// count ≤ le)` per bucket — bucket `i` holds integer samples up to
    /// `2^i − 1` µs inclusive, so that is its `le` bound — with a final
    /// `(None, total)` entry for the open `+Inf` bucket.
    pub fn cumulative_buckets(&self) -> Vec<(Option<u64>, u64)> {
        let mut out = Vec::with_capacity(BUCKETS);
        let mut running = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            running += b.load(Ordering::Relaxed);
            if i < BUCKETS - 1 {
                out.push((Some((1u64 << i) - 1), running));
            } else {
                out.push((None, running));
            }
        }
        out
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The upper bound (µs) of the bucket containing the `p`-th
    /// percentile sample, or 0 when empty. `p` in `0.0..=1.0`.
    pub fn percentile_us(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * p.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Bucket i spans [2^(i-1), 2^i) µs (bucket 0 is [0,1)).
                return 1u64 << i;
            }
        }
        1u64 << (BUCKETS - 1)
    }
}

/// The one `name=value` emitter behind every `STATS` line — the
/// server plane, the `mw_*` block and the `STATS SHARDS` reply all
/// render through it. In debug builds it asserts that no stat name is
/// pushed twice, so the server-plane and middleware blocks can never
/// silently drift into emitting duplicates.
#[derive(Debug, Default)]
pub struct StatLines {
    lines: Vec<String>,
    #[cfg(debug_assertions)]
    seen: std::collections::HashSet<String>,
}

impl StatLines {
    /// An empty emitter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one `name=value` line.
    pub fn push(&mut self, name: &str, value: impl std::fmt::Display) {
        #[cfg(debug_assertions)]
        debug_assert!(
            self.seen.insert(name.to_string()),
            "duplicate stat name {name:?} in one STATS reply"
        );
        self.lines.push(format!("{name}={value}"));
    }

    /// The finished lines.
    pub fn into_lines(self) -> Vec<String> {
        self.lines
    }
}

/// Debug-assert that a fully assembled `STATS` reply carries no
/// duplicate stat names — the cross-block guard run where the trace
/// layer folds the `mw_*` lines into the server-plane lines.
pub fn debug_assert_unique_stat_names(lines: &[String]) {
    #[cfg(debug_assertions)]
    {
        let mut seen = std::collections::HashSet::new();
        for line in lines {
            let name = line.split('=').next().unwrap_or(line);
            debug_assert!(
                seen.insert(name),
                "duplicate stat name {name:?} in one STATS reply"
            );
        }
    }
    #[cfg(not(debug_assertions))]
    let _ = lines;
}

/// Shared counters for the whole pipeline: each layer bumps its own
/// section; the trace layer renders everything into `STATS` lines.
#[derive(Debug)]
pub struct PipelineMetrics {
    /// Commands observed by the trace layer.
    pub traced: RelaxedCounter,
    /// Latency of read-class commands (µs, end-to-end below trace).
    pub read_latency: LatencyHistogram,
    /// Latency of write-class commands.
    pub write_latency: LatencyHistogram,
    /// Latency of control-class commands.
    pub control_latency: LatencyHistogram,
    /// Pipelined bursts driven through `call_batch`.
    pub batches: RelaxedCounter,
    /// Commands carried by those bursts (`traced` counts them too).
    pub batch_commands: RelaxedCounter,
    /// Whole-batch latency (µs): one sample per burst, however many
    /// commands it carried.
    pub batch_latency: LatencyHistogram,

    /// Requests admitted by the rate limiter.
    pub rate_admitted: LongAdder,
    /// Requests rejected by the rate limiter.
    pub rate_rejected: LongAdder,
    /// Tokens refilled into buckets (LongAdder-style refill counter).
    pub rate_refilled: LongAdder,

    /// Commands admitted by the ACL check.
    pub auth_admitted: RelaxedCounter,
    /// Commands (or `AUTH` attempts) denied.
    pub auth_denied: RelaxedCounter,
    /// Successful `AUTH` logins.
    pub auth_logins: RelaxedCounter,
    /// Runtime policy/token reloads (RCU publishes).
    pub auth_reloads: RelaxedCounter,

    /// Commands measured against a deadline budget.
    pub deadline_checked: RelaxedCounter,
    /// Commands that blew their budget.
    pub deadline_missed: RelaxedCounter,

    /// Commands inspected by the TTL layer.
    pub ttl_checked: RelaxedCounter,
    /// TTL timers armed by `EXPIRE`.
    pub ttl_armed: RelaxedCounter,
    /// Keys lazily expired on `GET`.
    pub ttl_expired: RelaxedCounter,

    /// Per-layer admission cost (µs), indexed by
    /// [`LayerKind::index`]; fed only by sampled spans, so each
    /// histogram describes the sampled population.
    pub layer_admission_us: [LatencyHistogram; LAYER_COUNT],
    /// Spans actually sampled (the denominator for `layer_admission_us`).
    pub spans_sampled: RelaxedCounter,
    /// The slow-command ring served by `SLOWLOG GET|RESET|LEN`.
    pub slowlog: SlowLog,
}

impl Default for PipelineMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl PipelineMetrics {
    /// A zeroed sink with the default trace/slowlog configuration.
    pub fn new() -> Self {
        Self::with_trace(&TraceConfig::default())
    }

    /// A zeroed sink whose slowlog ring is sized per `trace`.
    pub fn with_trace(trace: &TraceConfig) -> Self {
        PipelineMetrics {
            traced: RelaxedCounter::new(),
            read_latency: LatencyHistogram::new(),
            write_latency: LatencyHistogram::new(),
            control_latency: LatencyHistogram::new(),
            batches: RelaxedCounter::new(),
            batch_commands: RelaxedCounter::new(),
            batch_latency: LatencyHistogram::new(),
            rate_admitted: LongAdder::new(),
            rate_rejected: LongAdder::new(),
            rate_refilled: LongAdder::new(),
            auth_admitted: RelaxedCounter::new(),
            auth_denied: RelaxedCounter::new(),
            auth_logins: RelaxedCounter::new(),
            auth_reloads: RelaxedCounter::new(),
            deadline_checked: RelaxedCounter::new(),
            deadline_missed: RelaxedCounter::new(),
            ttl_checked: RelaxedCounter::new(),
            ttl_armed: RelaxedCounter::new(),
            ttl_expired: RelaxedCounter::new(),
            layer_admission_us: std::array::from_fn(|_| LatencyHistogram::new()),
            spans_sampled: RelaxedCounter::new(),
            slowlog: SlowLog::new(trace.slowlog_threshold_us, trace.slowlog_capacity),
        }
    }

    /// Fold one harvested span into the per-layer histograms.
    pub fn note_span(&self, costs: &[Option<u64>; LAYER_COUNT]) {
        self.spans_sampled.increment();
        for (i, cost) in costs.iter().enumerate() {
            if let Some(us) = cost {
                self.layer_admission_us[i].record(*us);
            }
        }
    }

    /// The `mw_*` lines appended to the `STATS` array reply.
    pub fn render_lines(&self, depth: usize) -> Vec<String> {
        let mut out = StatLines::new();
        out.push("mw_depth", depth);
        out.push("mw_traced", self.traced.sum());
        out.push("mw_read_p50_us", self.read_latency.percentile_us(0.50));
        out.push("mw_read_p99_us", self.read_latency.percentile_us(0.99));
        out.push("mw_write_p50_us", self.write_latency.percentile_us(0.50));
        out.push("mw_write_p99_us", self.write_latency.percentile_us(0.99));
        out.push("mw_batches", self.batches.sum());
        out.push("mw_batch_commands", self.batch_commands.sum());
        out.push("mw_batch_p99_us", self.batch_latency.percentile_us(0.99));
        out.push("mw_rate_admitted", self.rate_admitted.sum());
        out.push("mw_rate_rejected", self.rate_rejected.sum());
        out.push("mw_rate_refilled", self.rate_refilled.sum());
        out.push("mw_auth_admitted", self.auth_admitted.sum());
        out.push("mw_auth_denied", self.auth_denied.sum());
        out.push("mw_auth_logins", self.auth_logins.sum());
        out.push("mw_auth_reloads", self.auth_reloads.sum());
        out.push("mw_deadline_checked", self.deadline_checked.sum());
        out.push("mw_deadline_missed", self.deadline_missed.sum());
        out.push("mw_ttl_checked", self.ttl_checked.sum());
        out.push("mw_ttl_armed", self.ttl_armed.sum());
        out.push("mw_ttl_expired", self.ttl_expired.sum());
        out.push("mw_spans_sampled", self.spans_sampled.sum());
        for kind in LayerKind::ALL {
            let hist = &self.layer_admission_us[kind.index()];
            out.push(
                &format!("mw_{}_us_p50", kind.name()),
                hist.percentile_us(0.50),
            );
            out.push(
                &format!("mw_{}_us_p99", kind.name()),
                hist.percentile_us(0.99),
            );
        }
        out.push("mw_slowlog_len", self.slowlog.len());
        out.push("mw_slowlog_total", self.slowlog.total());
        out.into_lines()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile_us(0.5), 0, "empty histogram");
        for us in [0, 1, 2, 3, 1000, 1_000_000] {
            h.record(us);
        }
        assert_eq!(h.count(), 6);
        // With six samples the median rank (3) lands in the [2,4) bucket.
        assert_eq!(h.percentile_us(0.5), 4);
        assert!(h.percentile_us(1.0) >= 1_000_000);
    }

    #[test]
    fn huge_samples_land_in_the_open_bucket() {
        let h = LatencyHistogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.percentile_us(0.99), 1u64 << (BUCKETS - 1));
    }

    #[test]
    fn histogram_tracks_sum_and_cumulative_buckets() {
        let h = LatencyHistogram::new();
        h.record(0);
        h.record(5);
        h.record(5);
        assert_eq!(h.sum_us(), 10);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets[0], (Some(0), 1), "zero lands in the 0-bucket");
        assert_eq!(buckets[3], (Some(7), 3), "5µs lands at le=7");
        assert_eq!(buckets.last().unwrap(), &(None, 3), "+Inf holds the total");
        let bounds: Vec<_> = buckets.iter().filter_map(|(le, _)| *le).collect();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "le strictly grows");
    }

    #[test]
    fn stat_lines_render_name_value() {
        let mut lines = StatLines::new();
        lines.push("a", 1);
        lines.push("b", "x");
        assert_eq!(lines.into_lines(), vec!["a=1".to_string(), "b=x".into()]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "duplicate stat name")]
    fn stat_lines_reject_duplicates_in_debug() {
        let mut lines = StatLines::new();
        lines.push("a", 1);
        lines.push("a", 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "duplicate stat name")]
    fn assembled_reply_duplicate_names_assert_in_debug() {
        debug_assert_unique_stat_names(&["a=1".to_string(), "a=2".to_string()]);
    }

    #[test]
    fn render_lines_cover_spans_and_slowlog() {
        let m = PipelineMetrics::new();
        let mut costs = [None; LAYER_COUNT];
        costs[LayerKind::Auth.index()] = Some(3);
        m.note_span(&costs);
        let lines = m.render_lines(5);
        assert!(lines.contains(&"mw_spans_sampled=1".to_string()));
        assert!(lines.contains(&"mw_auth_us_p50=4".to_string()));
        assert!(lines.contains(&"mw_auth_us_p99=4".to_string()));
        assert!(
            lines.contains(&"mw_trace_us_p50=0".to_string()),
            "untouched"
        );
        assert!(lines.contains(&"mw_slowlog_len=0".to_string()));
        debug_assert_unique_stat_names(&lines);
    }

    #[test]
    fn render_lines_cover_every_layer() {
        let m = PipelineMetrics::new();
        m.traced.increment();
        m.rate_admitted.increment();
        m.auth_admitted.increment();
        m.deadline_checked.increment();
        m.ttl_checked.increment();
        let lines = m.render_lines(5);
        assert!(lines.contains(&"mw_depth=5".to_string()));
        assert!(lines.contains(&"mw_traced=1".to_string()));
        assert!(lines.contains(&"mw_rate_admitted=1".to_string()));
        assert!(lines.contains(&"mw_auth_admitted=1".to_string()));
        assert!(lines.contains(&"mw_deadline_checked=1".to_string()));
        assert!(lines.contains(&"mw_ttl_checked=1".to_string()));
    }
}
