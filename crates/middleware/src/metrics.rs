//! Pipeline observability: per-command latency histograms and
//! per-layer counters, folded into the server's `STATS` reply by the
//! trace layer.
//!
//! The rate limiter's admission/refill counters are
//! [`dego_juc::LongAdder`]s — the striped, contention-relieved sums the
//! token-bucket design calls for. Every other counter is a plain
//! relaxed atomic ([`RelaxedCounter`], the same doctrine as the
//! server's `ServerStats`: statistics, not synchronization — a
//! `LongAdder` here would buy nothing and its per-bump stall-proxy
//! accounting would tax the hot path). Latencies go into fixed
//! log₂-bucket histograms of relaxed atomics: recording is one
//! `fetch_add`, never a lock.

use crate::config::TraceConfig;
use crate::flight::FlightRecorder;
use crate::pipeline::{LayerKind, LAYER_COUNT};
use crate::slowlog::SlowLog;
use dego_juc::LongAdder;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A relaxed event counter (statistics, not synchronization).
#[derive(Debug, Default)]
pub struct RelaxedCounter(AtomicU64);

impl RelaxedCounter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        RelaxedCounter(AtomicU64::new(0))
    }

    /// Count one event.
    #[inline]
    pub fn increment(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` events at once (the batched paths' amortized bump).
    #[inline]
    pub fn add(&self, n: u64) {
        if n > 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The total so far.
    pub fn sum(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Zero the counter (`STATS RESET`). Relaxed like every other
    /// access: a bump racing the reset may land on either side.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Number of log₂ buckets: bucket `i` holds samples in
/// `[2^i, 2^(i+1)) µs`, with the last bucket open-ended (≥ ~34 s).
const BUCKETS: usize = 26;

/// A fixed log₂-bucket latency histogram (microseconds).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    /// Sum of every recorded sample (for Prometheus `_sum`).
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
        }
    }

    /// Record one sample of `micros`.
    #[inline]
    pub fn record(&self, micros: u64) {
        let bucket = (64 - micros.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(micros, Ordering::Relaxed);
    }

    /// Sum of every recorded sample in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Cumulative bucket counts in Prometheus form: `(Some(le),
    /// count ≤ le)` per bucket — bucket `i` holds integer samples up to
    /// `2^i − 1` µs inclusive, so that is its `le` bound — with a final
    /// `(None, total)` entry for the open `+Inf` bucket.
    pub fn cumulative_buckets(&self) -> Vec<(Option<u64>, u64)> {
        let mut out = Vec::with_capacity(BUCKETS);
        let mut running = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            running += b.load(Ordering::Relaxed);
            if i < BUCKETS - 1 {
                out.push((Some((1u64 << i) - 1), running));
            } else {
                out.push((None, running));
            }
        }
        out
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Raw per-bucket counts, low bucket first (bucket count is an
    /// internal constant, so callers get a `Vec` sized to match).
    pub fn counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Zero every bucket and the sample sum. Relaxed: a record racing
    /// the clear may survive it or vanish — statistics, not state.
    pub fn clear(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum_us.store(0, Ordering::Relaxed);
    }

    /// The upper bound (µs) of the bucket containing the `p`-th
    /// percentile sample, or 0 when empty. `p` in `0.0..=1.0`.
    pub fn percentile_us(&self, p: f64) -> u64 {
        percentile_from_counts(&self.counts(), p)
    }
}

/// The percentile scan shared by lifetime histograms and merged
/// window slots: the upper bound (µs) of the bucket containing the
/// `p`-th percentile sample, or 0 when empty.
pub fn percentile_from_counts(counts: &[u64], p: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((total as f64) * p.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            // Bucket i spans [2^(i-1), 2^i) µs (bucket 0 is [0,1)).
            return 1u64 << i;
        }
    }
    1u64 << (BUCKETS - 1)
}

/// Window slots per histogram: the window is divided into this many
/// rotating sub-histograms, so expiry granularity is window/6.
const WINDOW_SLOTS: usize = 6;

/// One rotating slot: a histogram plus the coarse-tick epoch it
/// currently belongs to.
#[derive(Debug)]
struct WindowSlot {
    /// The epoch whose samples this slot holds (`u64::MAX` = never
    /// touched, so epoch 0 is representable).
    epoch: AtomicU64,
    hist: LatencyHistogram,
}

/// A latency histogram with rolling windowed aggregation on top.
///
/// Every sample lands in a lifetime [`LatencyHistogram`] (served under
/// the `_total` stat names and as the Prometheus histogram families,
/// which stay cumulative per the exposition contract) *and* in one of
/// [`WINDOW_SLOTS`] slot histograms keyed by a coarse epoch tick
/// (`elapsed_secs / slot_secs`). Reads merge the slots whose epoch
/// falls inside the last full window, so `STATS` percentiles describe
/// the last ~window seconds and recover after a spike clears instead
/// of averaging it forever.
///
/// Rotation is rotate-on-access: the first recorder (or reader) to
/// touch a slot under a new epoch claims it with one CAS and clears
/// it. A sample racing that clear can be lost or double-counted in
/// that one slot for one tick — transient fuzz in a statistics plane,
/// never a lock on the hot path.
///
/// `window_secs = 0` disables windowing entirely (no slots, no extra
/// work per record): the bench A/B off-side and a pure-lifetime mode.
#[derive(Debug)]
pub struct WindowedHistogram {
    lifetime: LatencyHistogram,
    slots: Vec<WindowSlot>,
    slot_secs: u64,
    born: Instant,
}

impl WindowedHistogram {
    /// A histogram windowed over roughly `window_secs` (rounded to the
    /// slot granularity; 0 disables windowing).
    pub fn new(window_secs: u64) -> Self {
        let slot_secs = (window_secs / WINDOW_SLOTS as u64).max(1);
        let slots = if window_secs == 0 {
            Vec::new()
        } else {
            (0..WINDOW_SLOTS)
                .map(|_| WindowSlot {
                    epoch: AtomicU64::new(u64::MAX),
                    hist: LatencyHistogram::new(),
                })
                .collect()
        };
        WindowedHistogram {
            lifetime: LatencyHistogram::new(),
            slots,
            slot_secs,
            born: Instant::now(),
        }
    }

    /// The effective window width in seconds (0 when disabled).
    pub fn window_secs(&self) -> u64 {
        self.slot_secs * self.slots.len() as u64
    }

    /// The current coarse epoch tick.
    fn current_epoch(&self) -> u64 {
        self.born.elapsed().as_secs() / self.slot_secs
    }

    /// Claim `slot` for `epoch`, clearing stale samples. Returns the
    /// slot's histogram, now attributed to `epoch`.
    fn rotated(&self, epoch: u64) -> &LatencyHistogram {
        let slot = &self.slots[(epoch % self.slots.len() as u64) as usize];
        let cur = slot.epoch.load(Ordering::Relaxed);
        if cur != epoch
            && slot
                .epoch
                .compare_exchange(cur, epoch, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            // This thread won the rotation: drop the previous epoch's
            // samples. Concurrent recorders may slip a sample in on
            // either side of the clear — accepted fuzz.
            slot.hist.clear();
        }
        &slot.hist
    }

    /// Record one sample of `micros` at the current wall-clock epoch.
    #[inline]
    pub fn record(&self, micros: u64) {
        if self.slots.is_empty() {
            self.lifetime.record(micros);
            return;
        }
        self.record_at(micros, self.current_epoch());
    }

    /// Record one sample at an explicit `epoch` — the deterministic
    /// test hook behind the window-merge proptest and the
    /// spike-recovery test. Records into the lifetime histogram too,
    /// exactly like [`WindowedHistogram::record`].
    pub fn record_at(&self, micros: u64, epoch: u64) {
        self.lifetime.record(micros);
        if self.slots.is_empty() {
            return;
        }
        self.rotated(epoch).record(micros);
    }

    /// Merged per-bucket counts over the window ending at `epoch`
    /// (slots whose epoch lies in `(epoch - WINDOW_SLOTS, epoch]`).
    pub fn windowed_counts_at(&self, epoch: u64) -> Vec<u64> {
        let mut merged = vec![0u64; BUCKETS];
        for slot in &self.slots {
            let e = slot.epoch.load(Ordering::Relaxed);
            // `e + slots > epoch` (not `e > epoch - slots`): the
            // subtraction form saturates at epoch 0 and would exclude
            // the very first epoch from its own window.
            if e != u64::MAX && e <= epoch && e + self.slots.len() as u64 > epoch {
                for (m, c) in merged.iter_mut().zip(slot.hist.counts()) {
                    *m += c;
                }
            }
        }
        merged
    }

    /// The `p`-th percentile over the last window, or over the
    /// lifetime histogram when windowing is disabled.
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.slots.is_empty() {
            return self.lifetime.percentile_us(p);
        }
        let epoch = self.current_epoch();
        // Touch the current slot first so a quiet period expires it
        // instead of a stale spike lingering until the next record.
        self.rotated(epoch);
        percentile_from_counts(&self.windowed_counts_at(epoch), p)
    }

    /// Lifetime sample count (windowing never subtracts from this).
    pub fn count(&self) -> u64 {
        self.lifetime.count()
    }

    /// Lifetime sample sum in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.lifetime.sum_us()
    }

    /// The cumulative lifetime histogram (Prometheus families and
    /// `_total` stat lines render from this).
    pub fn lifetime(&self) -> &LatencyHistogram {
        &self.lifetime
    }

    /// Drop every sample, lifetime and windowed (`STATS RESET`).
    pub fn reset(&self) {
        self.lifetime.clear();
        for slot in &self.slots {
            slot.epoch.store(u64::MAX, Ordering::Relaxed);
            slot.hist.clear();
        }
    }
}

/// The one `name=value` emitter behind every `STATS` line — the
/// server plane, the `mw_*` block and the `STATS SHARDS` reply all
/// render through it. In debug builds it asserts that no stat name is
/// pushed twice, so the server-plane and middleware blocks can never
/// silently drift into emitting duplicates.
#[derive(Debug, Default)]
pub struct StatLines {
    lines: Vec<String>,
    #[cfg(debug_assertions)]
    seen: std::collections::HashSet<String>,
}

impl StatLines {
    /// An empty emitter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one `name=value` line.
    pub fn push(&mut self, name: &str, value: impl std::fmt::Display) {
        #[cfg(debug_assertions)]
        debug_assert!(
            self.seen.insert(name.to_string()),
            "duplicate stat name {name:?} in one STATS reply"
        );
        self.lines.push(format!("{name}={value}"));
    }

    /// The finished lines.
    pub fn into_lines(self) -> Vec<String> {
        self.lines
    }
}

/// Debug-assert that a fully assembled `STATS` reply carries no
/// duplicate stat names — the cross-block guard run where the trace
/// layer folds the `mw_*` lines into the server-plane lines.
pub fn debug_assert_unique_stat_names(lines: &[String]) {
    #[cfg(debug_assertions)]
    {
        let mut seen = std::collections::HashSet::new();
        for line in lines {
            let name = line.split('=').next().unwrap_or(line);
            debug_assert!(
                seen.insert(name),
                "duplicate stat name {name:?} in one STATS reply"
            );
        }
    }
    #[cfg(not(debug_assertions))]
    let _ = lines;
}

/// Shared counters for the whole pipeline: each layer bumps its own
/// section; the trace layer renders everything into `STATS` lines.
#[derive(Debug)]
pub struct PipelineMetrics {
    /// Commands observed by the trace layer.
    pub traced: RelaxedCounter,
    /// Latency of read-class commands (µs, end-to-end below trace).
    pub read_latency: WindowedHistogram,
    /// Latency of write-class commands.
    pub write_latency: WindowedHistogram,
    /// Latency of control-class commands.
    pub control_latency: WindowedHistogram,
    /// Pipelined bursts driven through `call_batch`.
    pub batches: RelaxedCounter,
    /// Commands carried by those bursts (`traced` counts them too).
    pub batch_commands: RelaxedCounter,
    /// Whole-batch latency (µs): one sample per burst, however many
    /// commands it carried.
    pub batch_latency: WindowedHistogram,

    /// Requests admitted by the rate limiter.
    pub rate_admitted: LongAdder,
    /// Requests rejected by the rate limiter.
    pub rate_rejected: LongAdder,
    /// Tokens refilled into buckets (LongAdder-style refill counter).
    pub rate_refilled: LongAdder,

    /// Commands admitted by the ACL check.
    pub auth_admitted: RelaxedCounter,
    /// Commands (or `AUTH` attempts) denied.
    pub auth_denied: RelaxedCounter,
    /// Successful `AUTH` logins.
    pub auth_logins: RelaxedCounter,
    /// Runtime policy/token reloads (RCU publishes).
    pub auth_reloads: RelaxedCounter,

    /// Commands measured against a deadline budget.
    pub deadline_checked: RelaxedCounter,
    /// Commands that blew their budget.
    pub deadline_missed: RelaxedCounter,

    /// Read/write commands evaluated by an armed circuit breaker.
    pub breaker_checked: RelaxedCounter,
    /// Commands rejected because their class was open (or the
    /// half-open probe quota was spent).
    pub breaker_rejected: RelaxedCounter,
    /// Closed→open (and half-open→open) transitions.
    pub breaker_trips: RelaxedCounter,
    /// Half-open→closed transitions (every probe succeeded).
    pub breaker_recoveries: RelaxedCounter,
    /// Probe requests admitted while half-open.
    pub breaker_probes: RelaxedCounter,
    /// Live breaker state per class (read 0, write 1): 0 closed,
    /// 1 open, 2 half-open — a gauge mirror, not reset by
    /// `STATS RESET`.
    pub breaker_state: [std::sync::atomic::AtomicU8; 2],

    /// Write commands evaluated against live shard pressure.
    pub shed_checked: RelaxedCounter,
    /// Write commands shed with `-ERR SHED`.
    pub shed_shed: RelaxedCounter,

    /// Commands inspected by the TTL layer.
    pub ttl_checked: RelaxedCounter,
    /// TTL timers armed by `EXPIRE`.
    pub ttl_armed: RelaxedCounter,
    /// Keys lazily expired on `GET`.
    pub ttl_expired: RelaxedCounter,

    /// Per-layer admission cost (µs), indexed by
    /// [`LayerKind::index`]; fed only by sampled spans, so each
    /// histogram describes the sampled population.
    pub layer_admission_us: [WindowedHistogram; LAYER_COUNT],
    /// Spans actually sampled (the denominator for `layer_admission_us`).
    pub spans_sampled: RelaxedCounter,
    /// The slow-command ring served by `SLOWLOG GET|RESET|LEN`.
    pub slowlog: SlowLog,
    /// The flight-recorder ring of completed cross-thread trace trees,
    /// served by `TRACE GET|RESET|LEN` and `/trace`.
    pub flight: FlightRecorder,
}

impl Default for PipelineMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl PipelineMetrics {
    /// A zeroed sink with the default trace/slowlog configuration.
    pub fn new() -> Self {
        Self::with_trace(&TraceConfig::default())
    }

    /// A zeroed sink whose slowlog ring, flight-recorder ring and
    /// aggregation windows are sized per `trace`.
    pub fn with_trace(trace: &TraceConfig) -> Self {
        let w = trace.window_secs;
        PipelineMetrics {
            traced: RelaxedCounter::new(),
            read_latency: WindowedHistogram::new(w),
            write_latency: WindowedHistogram::new(w),
            control_latency: WindowedHistogram::new(w),
            batches: RelaxedCounter::new(),
            batch_commands: RelaxedCounter::new(),
            batch_latency: WindowedHistogram::new(w),
            rate_admitted: LongAdder::new(),
            rate_rejected: LongAdder::new(),
            rate_refilled: LongAdder::new(),
            auth_admitted: RelaxedCounter::new(),
            auth_denied: RelaxedCounter::new(),
            auth_logins: RelaxedCounter::new(),
            auth_reloads: RelaxedCounter::new(),
            deadline_checked: RelaxedCounter::new(),
            deadline_missed: RelaxedCounter::new(),
            breaker_checked: RelaxedCounter::new(),
            breaker_rejected: RelaxedCounter::new(),
            breaker_trips: RelaxedCounter::new(),
            breaker_recoveries: RelaxedCounter::new(),
            breaker_probes: RelaxedCounter::new(),
            breaker_state: [
                std::sync::atomic::AtomicU8::new(0),
                std::sync::atomic::AtomicU8::new(0),
            ],
            shed_checked: RelaxedCounter::new(),
            shed_shed: RelaxedCounter::new(),
            ttl_checked: RelaxedCounter::new(),
            ttl_armed: RelaxedCounter::new(),
            ttl_expired: RelaxedCounter::new(),
            layer_admission_us: std::array::from_fn(|_| WindowedHistogram::new(w)),
            spans_sampled: RelaxedCounter::new(),
            slowlog: SlowLog::new(trace.slowlog_threshold_us, trace.slowlog_capacity),
            flight: FlightRecorder::new(trace.trace_threshold_us, trace.trace_capacity),
        }
    }

    /// `STATS RESET`: zero every counter and histogram (lifetime and
    /// windowed). The slowlog and flight-recorder rings are *not*
    /// touched — they have their own `RESET` verbs.
    pub fn reset(&self) {
        self.traced.reset();
        self.read_latency.reset();
        self.write_latency.reset();
        self.control_latency.reset();
        self.batches.reset();
        self.batch_commands.reset();
        self.batch_latency.reset();
        self.rate_admitted.reset();
        self.rate_rejected.reset();
        self.rate_refilled.reset();
        self.auth_admitted.reset();
        self.auth_denied.reset();
        self.auth_logins.reset();
        self.auth_reloads.reset();
        self.deadline_checked.reset();
        self.deadline_missed.reset();
        self.breaker_checked.reset();
        self.breaker_rejected.reset();
        self.breaker_trips.reset();
        self.breaker_recoveries.reset();
        self.breaker_probes.reset();
        self.shed_checked.reset();
        self.shed_shed.reset();
        self.ttl_checked.reset();
        self.ttl_armed.reset();
        self.ttl_expired.reset();
        for hist in &self.layer_admission_us {
            hist.reset();
        }
        self.spans_sampled.reset();
    }

    /// Fold one harvested span into the per-layer histograms.
    pub fn note_span(&self, costs: &[Option<u64>; LAYER_COUNT]) {
        self.spans_sampled.increment();
        for (i, cost) in costs.iter().enumerate() {
            if let Some(us) = cost {
                self.layer_admission_us[i].record(*us);
            }
        }
    }

    /// The `mw_*` lines appended to the `STATS` array reply.
    ///
    /// Percentile lines report the rolling window (the last
    /// `mw_window_secs` seconds); each carries a `_total`-suffixed
    /// twin computed over the lifetime histogram. When windowing is
    /// disabled (`--stats-window-secs 0`) the two are identical.
    pub fn render_lines(&self, depth: usize) -> Vec<String> {
        let mut out = StatLines::new();
        out.push("mw_depth", depth);
        out.push("mw_window_secs", self.read_latency.window_secs());
        out.push("mw_traced", self.traced.sum());
        out.push("mw_read_p50_us", self.read_latency.percentile_us(0.50));
        out.push("mw_read_p99_us", self.read_latency.percentile_us(0.99));
        out.push(
            "mw_read_p50_us_total",
            self.read_latency.lifetime().percentile_us(0.50),
        );
        out.push(
            "mw_read_p99_us_total",
            self.read_latency.lifetime().percentile_us(0.99),
        );
        out.push("mw_write_p50_us", self.write_latency.percentile_us(0.50));
        out.push("mw_write_p99_us", self.write_latency.percentile_us(0.99));
        out.push(
            "mw_write_p50_us_total",
            self.write_latency.lifetime().percentile_us(0.50),
        );
        out.push(
            "mw_write_p99_us_total",
            self.write_latency.lifetime().percentile_us(0.99),
        );
        out.push("mw_batches", self.batches.sum());
        out.push("mw_batch_commands", self.batch_commands.sum());
        out.push("mw_batch_p99_us", self.batch_latency.percentile_us(0.99));
        out.push(
            "mw_batch_p99_us_total",
            self.batch_latency.lifetime().percentile_us(0.99),
        );
        out.push("mw_rate_admitted", self.rate_admitted.sum());
        out.push("mw_rate_rejected", self.rate_rejected.sum());
        out.push("mw_rate_refilled", self.rate_refilled.sum());
        out.push("mw_auth_admitted", self.auth_admitted.sum());
        out.push("mw_auth_denied", self.auth_denied.sum());
        out.push("mw_auth_logins", self.auth_logins.sum());
        out.push("mw_auth_reloads", self.auth_reloads.sum());
        out.push("mw_deadline_checked", self.deadline_checked.sum());
        out.push("mw_deadline_missed", self.deadline_missed.sum());
        out.push("mw_breaker_checked", self.breaker_checked.sum());
        out.push("mw_breaker_rejected", self.breaker_rejected.sum());
        out.push("mw_breaker_trips", self.breaker_trips.sum());
        out.push("mw_breaker_recoveries", self.breaker_recoveries.sum());
        out.push("mw_breaker_probes", self.breaker_probes.sum());
        out.push(
            "mw_breaker_read_state",
            self.breaker_state[0].load(std::sync::atomic::Ordering::Relaxed),
        );
        out.push(
            "mw_breaker_write_state",
            self.breaker_state[1].load(std::sync::atomic::Ordering::Relaxed),
        );
        out.push("mw_shed_checked", self.shed_checked.sum());
        out.push("mw_shed_shed", self.shed_shed.sum());
        out.push("mw_ttl_checked", self.ttl_checked.sum());
        out.push("mw_ttl_armed", self.ttl_armed.sum());
        out.push("mw_ttl_expired", self.ttl_expired.sum());
        out.push("mw_spans_sampled", self.spans_sampled.sum());
        for kind in LayerKind::ALL {
            let hist = &self.layer_admission_us[kind.index()];
            out.push(
                &format!("mw_{}_us_p50", kind.name()),
                hist.percentile_us(0.50),
            );
            out.push(
                &format!("mw_{}_us_p99", kind.name()),
                hist.percentile_us(0.99),
            );
            out.push(
                &format!("mw_{}_us_p50_total", kind.name()),
                hist.lifetime().percentile_us(0.50),
            );
            out.push(
                &format!("mw_{}_us_p99_total", kind.name()),
                hist.lifetime().percentile_us(0.99),
            );
        }
        out.push("mw_slowlog_len", self.slowlog.len());
        out.push("mw_slowlog_total", self.slowlog.total());
        out.push("mw_trace_len", self.flight.len());
        out.push("mw_trace_total", self.flight.total());
        out.into_lines()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile_us(0.5), 0, "empty histogram");
        for us in [0, 1, 2, 3, 1000, 1_000_000] {
            h.record(us);
        }
        assert_eq!(h.count(), 6);
        // With six samples the median rank (3) lands in the [2,4) bucket.
        assert_eq!(h.percentile_us(0.5), 4);
        assert!(h.percentile_us(1.0) >= 1_000_000);
    }

    #[test]
    fn huge_samples_land_in_the_open_bucket() {
        let h = LatencyHistogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.percentile_us(0.99), 1u64 << (BUCKETS - 1));
    }

    #[test]
    fn histogram_tracks_sum_and_cumulative_buckets() {
        let h = LatencyHistogram::new();
        h.record(0);
        h.record(5);
        h.record(5);
        assert_eq!(h.sum_us(), 10);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets[0], (Some(0), 1), "zero lands in the 0-bucket");
        assert_eq!(buckets[3], (Some(7), 3), "5µs lands at le=7");
        assert_eq!(buckets.last().unwrap(), &(None, 3), "+Inf holds the total");
        let bounds: Vec<_> = buckets.iter().filter_map(|(le, _)| *le).collect();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "le strictly grows");
    }

    #[test]
    fn stat_lines_render_name_value() {
        let mut lines = StatLines::new();
        lines.push("a", 1);
        lines.push("b", "x");
        assert_eq!(lines.into_lines(), vec!["a=1".to_string(), "b=x".into()]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "duplicate stat name")]
    fn stat_lines_reject_duplicates_in_debug() {
        let mut lines = StatLines::new();
        lines.push("a", 1);
        lines.push("a", 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "duplicate stat name")]
    fn assembled_reply_duplicate_names_assert_in_debug() {
        debug_assert_unique_stat_names(&["a=1".to_string(), "a=2".to_string()]);
    }

    #[test]
    fn windowed_percentile_recovers_after_a_spike_expires() {
        let h = WindowedHistogram::new(60); // 6 slots × 10 s
        for _ in 0..100 {
            h.record_at(100, 10); // baseline ~100 µs at epoch 10
        }
        for _ in 0..100 {
            h.record_at(1_000_000, 11); // 1 s spike at epoch 11
        }
        assert!(
            percentile_from_counts(&h.windowed_counts_at(11), 0.99) >= 1_000_000,
            "spike dominates the window while fresh"
        );
        // Two windows later the spike slots have expired; only fresh
        // baseline samples are inside the window.
        for _ in 0..10 {
            h.record_at(100, 24);
        }
        let p99 = percentile_from_counts(&h.windowed_counts_at(24), 0.99);
        assert!(p99 <= 128, "windowed p99 back to baseline, got {p99}");
        // The lifetime histogram still remembers the spike.
        assert!(h.lifetime().percentile_us(0.99) >= 1_000_000);
        assert_eq!(h.count(), 210, "lifetime count keeps everything");
    }

    #[test]
    fn windowed_slots_reuse_clears_stale_epochs() {
        let h = WindowedHistogram::new(60);
        h.record_at(50, 3);
        // Epoch 9 maps to the same slot as epoch 3 (9 % 6 == 3): the
        // rotation must clear the old samples before recording.
        h.record_at(7, 9);
        let counts = h.windowed_counts_at(9);
        assert_eq!(counts.iter().sum::<u64>(), 1, "stale epoch-3 sample gone");
        assert_eq!(h.count(), 2, "lifetime unaffected by rotation");
    }

    #[test]
    fn zero_window_disables_slots_and_serves_lifetime() {
        let h = WindowedHistogram::new(0);
        assert_eq!(h.window_secs(), 0);
        h.record(1000);
        assert_eq!(h.count(), 1);
        assert_eq!(h.percentile_us(0.5), 1024, "lifetime percentile");
        assert!(h.windowed_counts_at(0).iter().all(|&c| c == 0));
    }

    #[test]
    fn reset_zeroes_counters_and_both_histogram_planes() {
        let m = PipelineMetrics::new();
        m.traced.increment();
        m.rate_admitted.increment();
        m.read_latency.record(500);
        let mut costs = [None; LAYER_COUNT];
        costs[LayerKind::Ttl.index()] = Some(9);
        m.note_span(&costs);
        m.reset();
        assert_eq!(m.traced.sum(), 0);
        assert_eq!(m.rate_admitted.sum(), 0);
        assert_eq!(m.read_latency.count(), 0);
        assert_eq!(m.read_latency.percentile_us(0.99), 0);
        assert_eq!(m.spans_sampled.sum(), 0);
        assert_eq!(m.layer_admission_us[LayerKind::Ttl.index()].count(), 0);
    }

    #[test]
    fn render_lines_cover_spans_and_slowlog() {
        let m = PipelineMetrics::new();
        let mut costs = [None; LAYER_COUNT];
        costs[LayerKind::Auth.index()] = Some(3);
        m.note_span(&costs);
        let lines = m.render_lines(5);
        assert!(lines.contains(&"mw_spans_sampled=1".to_string()));
        assert!(lines.contains(&"mw_auth_us_p50=4".to_string()));
        assert!(lines.contains(&"mw_auth_us_p99=4".to_string()));
        assert!(
            lines.contains(&"mw_trace_us_p50=0".to_string()),
            "untouched"
        );
        assert!(lines.contains(&"mw_slowlog_len=0".to_string()));
        debug_assert_unique_stat_names(&lines);
    }

    #[test]
    fn render_lines_cover_every_layer() {
        let m = PipelineMetrics::new();
        m.traced.increment();
        m.rate_admitted.increment();
        m.auth_admitted.increment();
        m.deadline_checked.increment();
        m.ttl_checked.increment();
        let lines = m.render_lines(5);
        assert!(lines.contains(&"mw_depth=5".to_string()));
        assert!(lines.contains(&"mw_traced=1".to_string()));
        assert!(lines.contains(&"mw_rate_admitted=1".to_string()));
        assert!(lines.contains(&"mw_auth_admitted=1".to_string()));
        assert!(lines.contains(&"mw_deadline_checked=1".to_string()));
        assert!(lines.contains(&"mw_ttl_checked=1".to_string()));
    }
}
