//! Pipeline observability: per-command latency histograms and
//! per-layer counters, folded into the server's `STATS` reply by the
//! trace layer.
//!
//! The rate limiter's admission/refill counters are
//! [`dego_juc::LongAdder`]s — the striped, contention-relieved sums the
//! token-bucket design calls for. Every other counter is a plain
//! relaxed atomic ([`RelaxedCounter`], the same doctrine as the
//! server's `ServerStats`: statistics, not synchronization — a
//! `LongAdder` here would buy nothing and its per-bump stall-proxy
//! accounting would tax the hot path). Latencies go into fixed
//! log₂-bucket histograms of relaxed atomics: recording is one
//! `fetch_add`, never a lock.

use dego_juc::LongAdder;
use std::sync::atomic::{AtomicU64, Ordering};

/// A relaxed event counter (statistics, not synchronization).
#[derive(Debug, Default)]
pub struct RelaxedCounter(AtomicU64);

impl RelaxedCounter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        RelaxedCounter(AtomicU64::new(0))
    }

    /// Count one event.
    #[inline]
    pub fn increment(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` events at once (the batched paths' amortized bump).
    #[inline]
    pub fn add(&self, n: u64) {
        if n > 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The total so far.
    pub fn sum(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets: bucket `i` holds samples in
/// `[2^i, 2^(i+1)) µs`, with the last bucket open-ended (≥ ~34 s).
const BUCKETS: usize = 26;

/// A fixed log₂-bucket latency histogram (microseconds).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one sample of `micros`.
    #[inline]
    pub fn record(&self, micros: u64) {
        let bucket = (64 - micros.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The upper bound (µs) of the bucket containing the `p`-th
    /// percentile sample, or 0 when empty. `p` in `0.0..=1.0`.
    pub fn percentile_us(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * p.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Bucket i spans [2^(i-1), 2^i) µs (bucket 0 is [0,1)).
                return 1u64 << i;
            }
        }
        1u64 << (BUCKETS - 1)
    }
}

/// Shared counters for the whole pipeline: each layer bumps its own
/// section; the trace layer renders everything into `STATS` lines.
#[derive(Debug)]
pub struct PipelineMetrics {
    /// Commands observed by the trace layer.
    pub traced: RelaxedCounter,
    /// Latency of read-class commands (µs, end-to-end below trace).
    pub read_latency: LatencyHistogram,
    /// Latency of write-class commands.
    pub write_latency: LatencyHistogram,
    /// Latency of control-class commands.
    pub control_latency: LatencyHistogram,
    /// Pipelined bursts driven through `call_batch`.
    pub batches: RelaxedCounter,
    /// Commands carried by those bursts (`traced` counts them too).
    pub batch_commands: RelaxedCounter,
    /// Whole-batch latency (µs): one sample per burst, however many
    /// commands it carried.
    pub batch_latency: LatencyHistogram,

    /// Requests admitted by the rate limiter.
    pub rate_admitted: LongAdder,
    /// Requests rejected by the rate limiter.
    pub rate_rejected: LongAdder,
    /// Tokens refilled into buckets (LongAdder-style refill counter).
    pub rate_refilled: LongAdder,

    /// Commands admitted by the ACL check.
    pub auth_admitted: RelaxedCounter,
    /// Commands (or `AUTH` attempts) denied.
    pub auth_denied: RelaxedCounter,
    /// Successful `AUTH` logins.
    pub auth_logins: RelaxedCounter,
    /// Runtime policy/token reloads (RCU publishes).
    pub auth_reloads: RelaxedCounter,

    /// Commands measured against a deadline budget.
    pub deadline_checked: RelaxedCounter,
    /// Commands that blew their budget.
    pub deadline_missed: RelaxedCounter,

    /// Commands inspected by the TTL layer.
    pub ttl_checked: RelaxedCounter,
    /// TTL timers armed by `EXPIRE`.
    pub ttl_armed: RelaxedCounter,
    /// Keys lazily expired on `GET`.
    pub ttl_expired: RelaxedCounter,
}

impl Default for PipelineMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl PipelineMetrics {
    /// A zeroed sink.
    pub fn new() -> Self {
        PipelineMetrics {
            traced: RelaxedCounter::new(),
            read_latency: LatencyHistogram::new(),
            write_latency: LatencyHistogram::new(),
            control_latency: LatencyHistogram::new(),
            batches: RelaxedCounter::new(),
            batch_commands: RelaxedCounter::new(),
            batch_latency: LatencyHistogram::new(),
            rate_admitted: LongAdder::new(),
            rate_rejected: LongAdder::new(),
            rate_refilled: LongAdder::new(),
            auth_admitted: RelaxedCounter::new(),
            auth_denied: RelaxedCounter::new(),
            auth_logins: RelaxedCounter::new(),
            auth_reloads: RelaxedCounter::new(),
            deadline_checked: RelaxedCounter::new(),
            deadline_missed: RelaxedCounter::new(),
            ttl_checked: RelaxedCounter::new(),
            ttl_armed: RelaxedCounter::new(),
            ttl_expired: RelaxedCounter::new(),
        }
    }

    /// The `mw_*` lines appended to the `STATS` array reply.
    pub fn render_lines(&self, depth: usize) -> Vec<String> {
        vec![
            format!("mw_depth={depth}"),
            format!("mw_traced={}", self.traced.sum()),
            format!("mw_read_p50_us={}", self.read_latency.percentile_us(0.50)),
            format!("mw_read_p99_us={}", self.read_latency.percentile_us(0.99)),
            format!("mw_write_p50_us={}", self.write_latency.percentile_us(0.50)),
            format!("mw_write_p99_us={}", self.write_latency.percentile_us(0.99)),
            format!("mw_batches={}", self.batches.sum()),
            format!("mw_batch_commands={}", self.batch_commands.sum()),
            format!("mw_batch_p99_us={}", self.batch_latency.percentile_us(0.99)),
            format!("mw_rate_admitted={}", self.rate_admitted.sum()),
            format!("mw_rate_rejected={}", self.rate_rejected.sum()),
            format!("mw_rate_refilled={}", self.rate_refilled.sum()),
            format!("mw_auth_admitted={}", self.auth_admitted.sum()),
            format!("mw_auth_denied={}", self.auth_denied.sum()),
            format!("mw_auth_logins={}", self.auth_logins.sum()),
            format!("mw_auth_reloads={}", self.auth_reloads.sum()),
            format!("mw_deadline_checked={}", self.deadline_checked.sum()),
            format!("mw_deadline_missed={}", self.deadline_missed.sum()),
            format!("mw_ttl_checked={}", self.ttl_checked.sum()),
            format!("mw_ttl_armed={}", self.ttl_armed.sum()),
            format!("mw_ttl_expired={}", self.ttl_expired.sum()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile_us(0.5), 0, "empty histogram");
        for us in [0, 1, 2, 3, 1000, 1_000_000] {
            h.record(us);
        }
        assert_eq!(h.count(), 6);
        // With six samples the median rank (3) lands in the [2,4) bucket.
        assert_eq!(h.percentile_us(0.5), 4);
        assert!(h.percentile_us(1.0) >= 1_000_000);
    }

    #[test]
    fn huge_samples_land_in_the_open_bucket() {
        let h = LatencyHistogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.percentile_us(0.99), 1u64 << (BUCKETS - 1));
    }

    #[test]
    fn render_lines_cover_every_layer() {
        let m = PipelineMetrics::new();
        m.traced.increment();
        m.rate_admitted.increment();
        m.auth_admitted.increment();
        m.deadline_checked.increment();
        m.ttl_checked.increment();
        let lines = m.render_lines(5);
        assert!(lines.contains(&"mw_depth=5".to_string()));
        assert!(lines.contains(&"mw_traced=1".to_string()));
        assert!(lines.contains(&"mw_rate_admitted=1".to_string()));
        assert!(lines.contains(&"mw_auth_admitted=1".to_string()));
        assert!(lines.contains(&"mw_deadline_checked=1".to_string()));
        assert!(lines.contains(&"mw_ttl_checked=1".to_string()));
    }
}
