//! Token-bucket rate limiting, one bucket per client.
//!
//! Buckets are kept in a [`SegmentedHashMap`] keyed by the session's
//! client identity. The hot path is entirely lock-free: the bucket
//! lookup is a segment read, refill is a CAS on the bucket's
//! last-refill stamp (losers skip — the winner refills), and taking a
//! token is one `fetch_sub`. The only lock is the map's single-writer
//! handle, taken once per *new* client to insert its bucket (the
//! SWMR discipline: many readers, one mutex-serialized writer).
//! Aggregate admission/rejection/refill counts are `LongAdder`s.

use crate::metrics::PipelineMetrics;
use crate::pipeline::{BoxService, Layer, LayerKind, Request, Response, Service, Session};
use crate::protocol::Command;
use dego_core::{SegmentationKind, SegmentedHashMap, SegmentedHashMapWriter};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Rate-limiter tuning.
#[derive(Clone, Debug)]
pub struct RateLimitConfig {
    /// Bucket capacity: how many requests a client may burst.
    pub burst: u64,
    /// Sustained refill rate, tokens per second.
    pub refill_per_sec: u64,
}

impl Default for RateLimitConfig {
    /// Generous defaults sized so well-behaved benchmark traffic never
    /// trips the limiter (tighten via config/CLI for real deployments).
    fn default() -> Self {
        RateLimitConfig {
            burst: 1 << 20,
            refill_per_sec: 4_000_000,
        }
    }
}

/// One client's token bucket. Tokens can briefly go negative under a
/// concurrent burst; negative observations reject and restore.
#[derive(Debug)]
pub(crate) struct Bucket {
    tokens: AtomicI64,
    /// Micros since the layer's epoch at the last refill.
    last_refill_us: AtomicU64,
}

pub(crate) struct RateLimitState {
    config: RateLimitConfig,
    epoch: Instant,
    buckets: Arc<SegmentedHashMap<String, Arc<Bucket>>>,
    /// Insert path for first-seen clients; serialized (SWMR writer).
    writer: Mutex<SegmentedHashMapWriter<String, Arc<Bucket>>>,
    metrics: Arc<PipelineMetrics>,
}

impl RateLimitState {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// The bucket for `client`, inserting a full one on first sight.
    fn bucket_for(&self, client: &str) -> Arc<Bucket> {
        let key = client.to_string();
        if let Some(b) = self.buckets.get(&key) {
            return b;
        }
        let mut writer = self.writer.lock().expect("rate-limit writer");
        // Double-check under the lock: another connection of the same
        // client may have inserted while we waited.
        if let Some(b) = self.buckets.get(&key) {
            return b;
        }
        let bucket = Arc::new(Bucket {
            tokens: AtomicI64::new(self.config.burst as i64),
            last_refill_us: AtomicU64::new(self.now_us()),
        });
        writer.put(key, Arc::clone(&bucket));
        bucket
    }

    /// Refill `bucket` for the elapsed time. One CAS decides which
    /// observer performs the refill; the token top-up is clamped to the
    /// burst capacity.
    fn refill(&self, bucket: &Bucket) {
        let now = self.now_us();
        let last = bucket.last_refill_us.load(Ordering::Acquire);
        let elapsed = now.saturating_sub(last);
        let add = elapsed.saturating_mul(self.config.refill_per_sec) / 1_000_000;
        if add == 0 {
            return;
        }
        if bucket
            .last_refill_us
            .compare_exchange(last, now, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return; // another observer refilled for this interval
        }
        let cur = bucket.tokens.load(Ordering::Relaxed);
        let headroom = (self.config.burst as i64).saturating_sub(cur);
        let add = (add.min(i64::MAX as u64) as i64).min(headroom);
        if add > 0 {
            bucket.tokens.fetch_add(add, Ordering::AcqRel);
            self.metrics.rate_refilled.add(add);
        }
    }

    /// Try to take one token; `false` means rejected.
    pub(crate) fn admit(&self, bucket: &Bucket) -> bool {
        self.refill(bucket);
        if bucket.tokens.fetch_sub(1, Ordering::AcqRel) > 0 {
            self.metrics.rate_admitted.increment();
            true
        } else {
            bucket.tokens.fetch_add(1, Ordering::AcqRel);
            self.metrics.rate_rejected.increment();
            false
        }
    }

    /// Bulk admission: take up to `n` tokens in **one** refill and one
    /// `fetch_sub`, returning how many were granted. Matches `n`
    /// sequential [`Self::admit`] calls: with `t` tokens on hand,
    /// `min(t, n)` commands are admitted and the rest rejected (the
    /// sequential path would refill between takes, but a burst is
    /// sub-millisecond — the next burst's refill recovers the
    /// difference).
    fn admit_n(&self, bucket: &Bucket, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.refill(bucket);
        let take = n.min(i64::MAX as u64) as i64;
        let prev = bucket.tokens.fetch_sub(take, Ordering::AcqRel);
        let admitted = prev.clamp(0, take);
        if admitted < take {
            // Return the tokens the rejected remainder did not earn.
            bucket.tokens.fetch_add(take - admitted, Ordering::AcqRel);
        }
        self.metrics.rate_admitted.add(admitted);
        self.metrics.rate_rejected.add(take - admitted);
        admitted as u64
    }

    /// Micros until one token refills (the `retry_us` hint).
    pub(crate) fn retry_us(&self) -> u64 {
        1_000_000 / self.config.refill_per_sec.max(1)
    }
}

/// The rate-limit [`Layer`].
pub struct RateLimitLayer {
    state: Arc<RateLimitState>,
}

impl RateLimitLayer {
    /// Build the layer with its shared bucket map.
    pub fn new(config: RateLimitConfig, metrics: Arc<PipelineMetrics>) -> Self {
        // A single segment: all inserts go through the one
        // mutex-serialized writer; reads are lock-free from any thread.
        let buckets = SegmentedHashMap::new(1, 1024, SegmentationKind::Hash);
        let writer = Mutex::new(buckets.writer());
        RateLimitLayer {
            state: Arc::new(RateLimitState {
                config,
                epoch: Instant::now(),
                buckets,
                writer,
                metrics,
            }),
        }
    }
}

impl RateLimitLayer {
    /// Wrap a concrete inner service, preserving its type — the typed
    /// combinator the fused stack composes with.
    pub fn wrap_typed<S: Service>(&self, session: &Session, inner: S) -> RateLimitService<S> {
        let bucket = self.state.bucket_for(&session.client);
        RateLimitService {
            state: Arc::clone(&self.state),
            bucket,
            client: session.client.clone(),
            inner,
        }
    }
}

impl Layer for RateLimitLayer {
    fn kind(&self) -> LayerKind {
        LayerKind::RateLimit
    }

    fn wrap(&self, session: &Session, inner: BoxService) -> BoxService {
        Box::new(self.wrap_typed(session, inner))
    }
}

/// The rate-limit layer's per-session service, generic over the inner
/// service it wraps.
pub struct RateLimitService<S> {
    pub(crate) state: Arc<RateLimitState>,
    pub(crate) bucket: Arc<Bucket>,
    client: String,
    pub(crate) inner: S,
}

impl<S> Drop for RateLimitService<S> {
    /// Reclaim the client's bucket when its last session ends —
    /// without this, peer-keyed buckets accumulate one entry per
    /// connection ever made. Strong-count 2 = the map and us; the
    /// re-check happens under the insert lock, so a session being
    /// wrapped concurrently keeps the entry alive. (A reader that
    /// fetched the `Arc` in the razor-thin window between the re-check
    /// and the remove keeps a working bucket; the next session for
    /// that client simply starts a fresh one.)
    fn drop(&mut self) {
        if Arc::strong_count(&self.bucket) > 2 {
            return;
        }
        let mut writer = self.state.writer.lock().expect("rate-limit writer");
        if Arc::strong_count(&self.bucket) == 2 {
            writer.remove(&self.client);
        }
    }
}

impl<S: Service> Service for RateLimitService<S> {
    /// Batch path: `token_bucket.take(n)` instead of `n` takes — one
    /// refill and one `fetch_sub` admit the first `k` chargeable
    /// commands of the burst; the rest are rejected in place. `QUIT`
    /// is never charged (a throttled client must still hang up
    /// cleanly), nor are the `HEALTH`/`READY` probes (an orchestrator
    /// must see liveness even through a throttled connection), and
    /// order is preserved: admitted commands travel downstream as one
    /// inner batch and are zipped back around the rejections.
    fn call_batch(&mut self, reqs: Vec<Request>) -> Vec<Response> {
        let admission_t = crate::span::start();
        let chargeable = reqs
            .iter()
            .filter(|r| !matches!(r.command, Command::Quit | Command::Health | Command::Ready))
            .count() as u64;
        let granted = self.state.admit_n(&self.bucket, chargeable);
        crate::span::record(LayerKind::RateLimit, admission_t);
        // Fast path: the whole burst fit the bucket — no slot
        // bookkeeping.
        if granted == chargeable {
            return self.inner.call_batch(reqs);
        }
        let retry_us = self.state.retry_us();
        let mut spent = 0u64;
        crate::pipeline::partition_batch(&mut self.inner, reqs, |req| {
            if matches!(
                req.command,
                Command::Quit | Command::Health | Command::Ready
            ) {
                None
            } else if spent < granted {
                spent += 1;
                None
            } else {
                Some(Response::rejection(
                    "RATELIMIT",
                    format_args!("rejected retry_us={retry_us}"),
                ))
            }
        })
    }

    fn call(&mut self, req: Request) -> Response {
        // QUIT always goes through (a throttled client must still be
        // able to hang up cleanly), and so do the HEALTH/READY probes
        // (liveness must stay visible under throttling).
        if matches!(
            req.command,
            Command::Quit | Command::Health | Command::Ready
        ) {
            return self.inner.call(req);
        }
        let admission_t = crate::span::start();
        let admitted = self.state.admit(&self.bucket);
        crate::span::record(LayerKind::RateLimit, admission_t);
        if admitted {
            self.inner.call(req)
        } else {
            Response::rejection(
                "RATELIMIT",
                format_args!("rejected retry_us={}", self.state.retry_us()),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Reply;

    struct Ok200;
    impl Service for Ok200 {
        fn call(&mut self, _req: Request) -> Response {
            Response::ok(Reply::Status("OK"))
        }
    }

    fn limited(burst: u64, refill: u64) -> (RateLimitLayer, Arc<PipelineMetrics>) {
        let metrics = Arc::new(PipelineMetrics::new());
        (
            RateLimitLayer::new(
                RateLimitConfig {
                    burst,
                    refill_per_sec: refill,
                },
                Arc::clone(&metrics),
            ),
            metrics,
        )
    }

    fn session(name: &str) -> Session {
        Session {
            client: name.into(),
        }
    }

    #[test]
    fn burst_admits_then_rejects_with_structured_error() {
        let (layer, metrics) = limited(3, 1); // 1 token/s: no refill mid-test
        let mut svc = layer.wrap(&session("a"), Box::new(Ok200));
        for _ in 0..3 {
            assert_eq!(
                svc.call(Request::new(Command::Ping)).reply,
                Reply::Status("OK")
            );
        }
        let resp = svc.call(Request::new(Command::Ping));
        match resp.reply {
            Reply::Error(e) => {
                assert!(e.starts_with("RATELIMIT "), "structured tag, got {e:?}");
                assert!(e.contains("retry_us="), "retry hint, got {e:?}");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(metrics.rate_admitted.sum(), 3);
        assert_eq!(metrics.rate_rejected.sum(), 1);
    }

    #[test]
    fn buckets_are_per_client() {
        let (layer, _) = limited(2, 1);
        let mut a = layer.wrap(&session("a"), Box::new(Ok200));
        let mut b = layer.wrap(&session("b"), Box::new(Ok200));
        for _ in 0..2 {
            assert!(matches!(
                a.call(Request::new(Command::Ping)).reply,
                Reply::Status(_)
            ));
        }
        assert!(matches!(
            a.call(Request::new(Command::Ping)).reply,
            Reply::Error(_)
        ));
        // b's bucket is untouched by a's exhaustion.
        assert!(matches!(
            b.call(Request::new(Command::Ping)).reply,
            Reply::Status(_)
        ));
    }

    #[test]
    fn quit_bypasses_an_exhausted_bucket() {
        let (layer, _) = limited(1, 1);
        let mut svc = layer.wrap(&session("a"), Box::new(Ok200));
        svc.call(Request::new(Command::Ping));
        assert!(matches!(
            svc.call(Request::new(Command::Quit)).reply,
            Reply::Status(_)
        ));
    }

    #[test]
    fn batch_takes_tokens_in_bulk_and_rejects_the_tail() {
        let (layer, metrics) = limited(3, 1); // no refill mid-test
        let mut svc = layer.wrap(&session("a"), Box::new(Ok200));
        let burst: Vec<Request> = (0..5)
            .map(|i| Request::new(Command::Get(format!("k{i}"))))
            .collect();
        let resps = svc.call_batch(burst);
        // Sequential semantics positionally: the first 3 admitted, the
        // rest rejected with the structured error.
        for resp in &resps[..3] {
            assert!(matches!(resp.reply, Reply::Status(_)));
        }
        for resp in &resps[3..] {
            match &resp.reply {
                Reply::Error(e) => {
                    assert!(e.starts_with("RATELIMIT "), "got {e:?}");
                    assert!(e.contains("retry_us="), "got {e:?}");
                }
                other => panic!("expected rejection, got {other:?}"),
            }
        }
        assert_eq!(metrics.rate_admitted.sum(), 3);
        assert_eq!(metrics.rate_rejected.sum(), 2);
    }

    #[test]
    fn batch_never_charges_quit() {
        let (layer, _) = limited(1, 1);
        let mut svc = layer.wrap(&session("a"), Box::new(Ok200));
        let resps = svc.call_batch(vec![
            Request::new(Command::Ping), // takes the only token
            Request::new(Command::Ping), // rejected
            Request::new(Command::Quit), // still passes
        ]);
        assert!(matches!(resps[0].reply, Reply::Status(_)));
        assert!(matches!(resps[1].reply, Reply::Error(_)));
        assert!(matches!(resps[2].reply, Reply::Status(_)));
    }

    #[test]
    fn tokens_refill_over_time() {
        let (layer, metrics) = limited(1, 1_000_000); // 1 token/µs
        let mut svc = layer.wrap(&session("a"), Box::new(Ok200));
        svc.call(Request::new(Command::Ping));
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(matches!(
            svc.call(Request::new(Command::Ping)).reply,
            Reply::Status(_)
        ));
        assert!(metrics.rate_refilled.sum() >= 1);
    }

    #[test]
    fn buckets_are_reclaimed_when_the_last_session_ends() {
        let (layer, _) = limited(2, 1);
        let a = layer.wrap(&session("a"), Box::new(Ok200));
        let _b = layer.wrap(&session("b"), Box::new(Ok200));
        let a2 = layer.wrap(&session("a"), Box::new(Ok200));
        assert_eq!(layer.state.buckets.len(), 2);
        drop(a);
        assert_eq!(layer.state.buckets.len(), 2, "a still has a session");
        drop(a2);
        assert_eq!(layer.state.buckets.len(), 1, "a's bucket reclaimed");
    }

    #[test]
    fn same_client_shares_one_bucket_across_connections() {
        let (layer, _) = limited(2, 1);
        let mut c1 = layer.wrap(&session("shared"), Box::new(Ok200));
        let mut c2 = layer.wrap(&session("shared"), Box::new(Ok200));
        assert!(matches!(
            c1.call(Request::new(Command::Ping)).reply,
            Reply::Status(_)
        ));
        assert!(matches!(
            c2.call(Request::new(Command::Ping)).reply,
            Reply::Status(_)
        ));
        assert!(matches!(
            c1.call(Request::new(Command::Ping)).reply,
            Reply::Error(_)
        ));
    }
}
