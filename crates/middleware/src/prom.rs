//! Prometheus text-format exposition (version 0.0.4).
//!
//! [`PromText`] is a tiny append-only builder for the plain-text
//! scrape format: `# HELP`/`# TYPE` headers, counter and gauge
//! samples (optionally labelled), and histogram families rendered
//! from the log2 [`LatencyHistogram`]s — cumulative `_bucket{le=...}`
//! series plus `_sum` and `_count`. No timestamps are emitted; the
//! scraper assigns them.
//!
//! Label values are escaped per the exposition format: backslash,
//! double quote and newline become `\\`, `\"` and `\n`.

use crate::metrics::LatencyHistogram;
use std::fmt::Write as _;

/// Escape a label value for the text exposition format.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    out.push('}');
    out
}

/// Builder for one `/metrics` response body.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
    #[cfg(debug_assertions)]
    headered: std::collections::HashSet<String>,
}

impl PromText {
    /// An empty exposition.
    pub fn new() -> Self {
        Self::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        #[cfg(debug_assertions)]
        debug_assert!(
            self.headered.insert(name.to_string()),
            "duplicate metric family {name}"
        );
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: impl std::fmt::Display) {
        let _ = writeln!(self.out, "{name}{} {value}", render_labels(labels));
    }

    /// One unlabelled counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        self.sample(name, &[], value);
    }

    /// A counter family with one sample per label set.
    pub fn counter_vec(&mut self, name: &str, help: &str, series: &[(Vec<(&str, String)>, u64)]) {
        self.header(name, help, "counter");
        for (labels, value) in series {
            let borrowed: Vec<(&str, &str)> =
                labels.iter().map(|(k, v)| (*k, v.as_str())).collect();
            self.sample(name, &borrowed, value);
        }
    }

    /// One unlabelled gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "gauge");
        self.sample(name, &[], value);
    }

    /// A gauge family with one sample per label set.
    pub fn gauge_vec(&mut self, name: &str, help: &str, series: &[(Vec<(&str, String)>, u64)]) {
        self.header(name, help, "gauge");
        for (labels, value) in series {
            let borrowed: Vec<(&str, &str)> =
                labels.iter().map(|(k, v)| (*k, v.as_str())).collect();
            self.sample(name, &borrowed, value);
        }
    }

    /// A histogram family rendered from log2 histograms, one
    /// `_bucket`/`_sum`/`_count` set per label set.
    pub fn histogram_vec(
        &mut self,
        name: &str,
        help: &str,
        series: &[(Vec<(&str, String)>, &LatencyHistogram)],
    ) {
        self.header(name, help, "histogram");
        let bucket = format!("{name}_bucket");
        for (labels, hist) in series {
            let base: Vec<(&str, &str)> = labels.iter().map(|(k, v)| (*k, v.as_str())).collect();
            let mut total = 0;
            for (le, cumulative) in hist.cumulative_buckets() {
                let le = match le {
                    Some(bound) => bound.to_string(),
                    None => "+Inf".to_string(),
                };
                let mut with_le = base.clone();
                with_le.push(("le", le.as_str()));
                self.sample(&bucket, &with_le, cumulative);
                total = cumulative;
            }
            self.sample(&format!("{name}_sum"), &base, hist.sum_us());
            self.sample(&format!("{name}_count"), &base, total);
        }
    }

    /// A histogram family with a single unlabelled member.
    pub fn histogram(&mut self, name: &str, help: &str, hist: &LatencyHistogram) {
        self.histogram_vec(name, help, &[(Vec::new(), hist)]);
    }

    /// The finished exposition body.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render_with_headers() {
        let mut p = PromText::new();
        p.counter("dego_commands_total", "Commands handled.", 42);
        p.gauge("dego_keys", "Live keys.", 7);
        let text = p.finish();
        assert!(text.contains("# TYPE dego_commands_total counter\n"));
        assert!(text.contains("dego_commands_total 42\n"));
        assert!(text.contains("# TYPE dego_keys gauge\n"));
        assert!(text.contains("dego_keys 7\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value(r#"a\b"c"#), r#"a\\b\"c"#);
        assert_eq!(escape_label_value("a\nb"), r#"a\nb"#);
        let mut p = PromText::new();
        p.gauge_vec(
            "dego_widget",
            "Widget.",
            &[(vec![("name", "he said \"hi\"\n".to_string())], 1)],
        );
        assert!(p
            .finish()
            .contains(r#"dego_widget{name="he said \"hi\"\n"} 1"#));
    }

    #[test]
    fn histogram_emits_cumulative_buckets_sum_and_count() {
        let hist = LatencyHistogram::new();
        hist.record(0);
        hist.record(3);
        hist.record(3);
        hist.record(100);
        let mut p = PromText::new();
        p.histogram("dego_lat_us", "Latency.", &hist);
        let text = p.finish();
        assert!(text.contains("# TYPE dego_lat_us histogram\n"));
        assert!(text.contains("dego_lat_us_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("dego_lat_us_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("dego_lat_us_bucket{le=\"127\"} 4\n"));
        assert!(text.contains("dego_lat_us_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("dego_lat_us_sum 106\n"));
        assert!(text.contains("dego_lat_us_count 4\n"));
    }

    #[test]
    #[should_panic(expected = "duplicate metric family")]
    #[cfg(debug_assertions)]
    fn duplicate_family_names_assert_in_debug() {
        let mut p = PromText::new();
        p.counter("dego_x", "x", 1);
        p.counter("dego_x", "x", 2);
    }
}
