//! The wire protocol: a compact, RESP-inspired line protocol.
//!
//! Requests are single lines, `VERB arg1 arg2 ...`, terminated by `\n`
//! (a trailing `\r` is tolerated). `SET`'s value is the rest of the
//! line, so values may contain spaces but not newlines. Verbs are
//! case-insensitive.
//!
//! Replies are lines too:
//!
//! | First byte | Meaning |
//! |---|---|
//! | `+` | status (`+OK`, `+PONG`) |
//! | `$` | one value, rest of line |
//! | `_` | nil (absent key) |
//! | `:` | signed integer |
//! | `-` | error (`-ERR <message>`) |
//! | `*` | array header `*<n>`, followed by `n` element lines |
//!
//! The full verb set is listed in [`Command`].
//!
//! ## Error-reply grammar
//!
//! Middleware rejections are structured: the message after `-ERR ` is
//! `<LAYER> <detail>` where `<LAYER>` is one of `AUTH`, `RATELIMIT`,
//! `DEADLINE`, `TTL`, `TRACE`, `SHED`, `BREAKER`, and `<detail>` is
//! free text that may carry `key=value` hints (e.g.
//! `-ERR RATELIMIT rejected retry_us=50000`,
//! `-ERR SHED shard=2 queue_depth=4096 limit=1024`,
//! `-ERR BREAKER write open retry_us=740000`).
//! Parse errors and store-level errors keep their historical free-form
//! messages.

use std::fmt::Write as _;

/// A parsed request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// `GET key` → `$value` | `_`
    Get(String),
    /// `SET key value...` → `+OK`
    Set(String, String),
    /// `DEL key` → `+OK` (blind, like the M2 map's `remove`)
    Del(String),
    /// `INCR key [delta]` → `:new` (missing keys count from 0)
    Incr(String, i64),
    /// `ADDUSER user` → `+OK`
    AddUser(u64),
    /// `POST user msg` → `+OK` (fans out to followers' timelines)
    Post(u64, u64),
    /// `FOLLOW follower followee` → `+OK`
    Follow(u64, u64),
    /// `UNFOLLOW follower followee` → `+OK`
    Unfollow(u64, u64),
    /// `TIMELINE user` → `*n` + n × `:msg` (newest first)
    Timeline(u64),
    /// `ISFOLLOWING follower followee` → `:0` | `:1`
    IsFollowing(u64, u64),
    /// `FOLLOWERS user` → `:count`
    Followers(u64),
    /// `JOIN user` → `+OK`
    Join(u64),
    /// `LEAVE user` → `+OK`
    Leave(u64),
    /// `INGROUP user` → `:0` | `:1`
    InGroup(u64),
    /// `PROFILE user` → `:version` (bump the profile version)
    Profile(u64),
    /// `PROFILEVER user` → `:version`
    ProfileVer(u64),
    /// `STATS` → `*n` + n × `name=value`
    Stats,
    /// `STATS SHARDS` → `*n` + n × `name=value` of per-shard telemetry
    /// (queue depth, drained batch sizes, ack latency)
    StatsShards,
    /// `STATS RESET` → `+OK` (zeroes middleware and shard
    /// counters/histograms; the slowlog and flight-recorder rings keep
    /// their own `RESET` verbs)
    StatsReset,
    /// `SLOWLOG GET` → `*n` + n × entry lines, slowest first (handled
    /// by the trace middleware layer; rejected when it is absent)
    SlowlogGet,
    /// `SLOWLOG RESET` → `+OK`
    SlowlogReset,
    /// `SLOWLOG LEN` → `:n`
    SlowlogLen,
    /// `TRACE GET` → `*n` + n × flight-recorder trace-tree lines,
    /// slowest first (handled by the trace middleware layer; rejected
    /// when it is absent)
    TraceGet,
    /// `TRACE RESET` → `+OK`
    TraceReset,
    /// `TRACE LEN` → `:n`
    TraceLen,
    /// `PING` → `+PONG`
    Ping,
    /// `HEALTH` → `+OK` while the process is alive (a liveness probe;
    /// exempt from rate-limit charging, like `PING`/`QUIT`)
    Health,
    /// `READY` → `+READY` while the server accepts work,
    /// `-ERR NOTREADY draining` once a graceful drain has begun
    Ready,
    /// `QUIT` → `+OK`, then the server closes the connection
    Quit,
    /// `AUTH token` → `+OK` | `-ERR AUTH ...` (handled by the auth
    /// middleware layer; never reaches the store)
    Auth(String),
    /// `EXPIRE key millis` → `:1` (timer armed) | `:0` (no such key)
    /// (handled by the TTL middleware layer)
    Expire(String, u64),
}

/// The coarse class of a command, used by the middleware layers for
/// ACL checks and per-class deadline budgets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommandClass {
    /// Lock-free reads served inline by the connection thread.
    Read,
    /// Mutations funneled through a shard owner (plus `EXPIRE`, which
    /// arms a TTL timer).
    Write,
    /// Session/diagnostic verbs (`PING`, `QUIT`, `STATS`, `AUTH`).
    Control,
}

/// A parse failure, reported to the client as `-ERR ...`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

fn need<'a>(parts: &mut impl Iterator<Item = &'a str>, what: &str) -> Result<&'a str, ParseError> {
    parts
        .next()
        .ok_or_else(|| ParseError(format!("missing {what}")))
}

fn need_u64<'a>(parts: &mut impl Iterator<Item = &'a str>, what: &str) -> Result<u64, ParseError> {
    let raw = need(parts, what)?;
    raw.parse()
        .map_err(|_| ParseError(format!("{what} must be an unsigned integer, got {raw:?}")))
}

impl Command {
    /// Parse one request line (without its terminator).
    pub fn parse(line: &str) -> Result<Command, ParseError> {
        let line = line.strip_suffix('\r').unwrap_or(line).trim_start();
        let mut parts = line.split_whitespace();
        let verb = need(&mut parts, "verb")?.to_ascii_uppercase();
        let cmd = match verb.as_str() {
            "GET" => Command::Get(need(&mut parts, "key")?.to_string()),
            "SET" => {
                let key = need(&mut parts, "key")?;
                // The value is the rest of the line after the key, so
                // it may contain spaces.
                let after_verb = &line[line.find(char::is_whitespace).unwrap_or(line.len())..];
                let after_verb = after_verb.trim_start();
                let value = after_verb[key.len()..].trim();
                if value.is_empty() {
                    return Err(ParseError("missing value".into()));
                }
                Command::Set(key.to_string(), value.to_string())
            }
            "DEL" => Command::Del(need(&mut parts, "key")?.to_string()),
            "INCR" => {
                let key = need(&mut parts, "key")?.to_string();
                let delta = match parts.next() {
                    None => 1,
                    Some(raw) => raw
                        .parse()
                        .map_err(|_| ParseError(format!("bad delta {raw:?}")))?,
                };
                Command::Incr(key, delta)
            }
            "ADDUSER" => Command::AddUser(need_u64(&mut parts, "user")?),
            "POST" => Command::Post(need_u64(&mut parts, "user")?, need_u64(&mut parts, "msg")?),
            "FOLLOW" => Command::Follow(
                need_u64(&mut parts, "follower")?,
                need_u64(&mut parts, "followee")?,
            ),
            "UNFOLLOW" => Command::Unfollow(
                need_u64(&mut parts, "follower")?,
                need_u64(&mut parts, "followee")?,
            ),
            "TIMELINE" => Command::Timeline(need_u64(&mut parts, "user")?),
            "ISFOLLOWING" => Command::IsFollowing(
                need_u64(&mut parts, "follower")?,
                need_u64(&mut parts, "followee")?,
            ),
            "FOLLOWERS" => Command::Followers(need_u64(&mut parts, "user")?),
            "JOIN" => Command::Join(need_u64(&mut parts, "user")?),
            "LEAVE" => Command::Leave(need_u64(&mut parts, "user")?),
            "INGROUP" => Command::InGroup(need_u64(&mut parts, "user")?),
            "PROFILE" => Command::Profile(need_u64(&mut parts, "user")?),
            "PROFILEVER" => Command::ProfileVer(need_u64(&mut parts, "user")?),
            "STATS" => match parts.next() {
                // Extra tokens after a plain STATS were historically
                // ignored; only the SHARDS and RESET subcommands change
                // meaning.
                Some(sub) if sub.eq_ignore_ascii_case("SHARDS") => Command::StatsShards,
                Some(sub) if sub.eq_ignore_ascii_case("RESET") => Command::StatsReset,
                _ => Command::Stats,
            },
            "SLOWLOG" => {
                let sub = need(&mut parts, "subcommand (GET|RESET|LEN)")?;
                match sub.to_ascii_uppercase().as_str() {
                    "GET" => Command::SlowlogGet,
                    "RESET" => Command::SlowlogReset,
                    "LEN" => Command::SlowlogLen,
                    other => {
                        return Err(ParseError(format!(
                            "unknown SLOWLOG subcommand {other:?} (want GET|RESET|LEN)"
                        )))
                    }
                }
            }
            "TRACE" => {
                let sub = need(&mut parts, "subcommand (GET|RESET|LEN)")?;
                match sub.to_ascii_uppercase().as_str() {
                    "GET" => Command::TraceGet,
                    "RESET" => Command::TraceReset,
                    "LEN" => Command::TraceLen,
                    other => {
                        return Err(ParseError(format!(
                            "unknown TRACE subcommand {other:?} (want GET|RESET|LEN)"
                        )))
                    }
                }
            }
            "PING" => Command::Ping,
            "HEALTH" => Command::Health,
            "READY" => Command::Ready,
            "QUIT" => Command::Quit,
            "AUTH" => Command::Auth(need(&mut parts, "token")?.to_string()),
            "EXPIRE" => {
                let key = need(&mut parts, "key")?.to_string();
                let raw = need(&mut parts, "millis")?;
                let millis = raw
                    .parse()
                    .map_err(|_| ParseError(format!("bad millis {raw:?}")))?;
                Command::Expire(key, millis)
            }
            other => return Err(ParseError(format!("unknown verb {other:?}"))),
        };
        Ok(cmd)
    }

    /// The wire verb of this command.
    pub fn verb(&self) -> &'static str {
        match self {
            Command::Get(..) => "GET",
            Command::Set(..) => "SET",
            Command::Del(..) => "DEL",
            Command::Incr(..) => "INCR",
            Command::AddUser(..) => "ADDUSER",
            Command::Post(..) => "POST",
            Command::Follow(..) => "FOLLOW",
            Command::Unfollow(..) => "UNFOLLOW",
            Command::Timeline(..) => "TIMELINE",
            Command::IsFollowing(..) => "ISFOLLOWING",
            Command::Followers(..) => "FOLLOWERS",
            Command::Join(..) => "JOIN",
            Command::Leave(..) => "LEAVE",
            Command::InGroup(..) => "INGROUP",
            Command::Profile(..) => "PROFILE",
            Command::ProfileVer(..) => "PROFILEVER",
            Command::Stats | Command::StatsShards | Command::StatsReset => "STATS",
            Command::SlowlogGet | Command::SlowlogReset | Command::SlowlogLen => "SLOWLOG",
            Command::TraceGet | Command::TraceReset | Command::TraceLen => "TRACE",
            Command::Ping => "PING",
            Command::Health => "HEALTH",
            Command::Ready => "READY",
            Command::Quit => "QUIT",
            Command::Auth(..) => "AUTH",
            Command::Expire(..) => "EXPIRE",
        }
    }

    /// The coarse class this command belongs to.
    pub fn class(&self) -> CommandClass {
        match self {
            Command::Get(..)
            | Command::Timeline(..)
            | Command::IsFollowing(..)
            | Command::Followers(..)
            | Command::InGroup(..)
            | Command::ProfileVer(..) => CommandClass::Read,
            Command::Set(..)
            | Command::Del(..)
            | Command::Incr(..)
            | Command::AddUser(..)
            | Command::Post(..)
            | Command::Follow(..)
            | Command::Unfollow(..)
            | Command::Join(..)
            | Command::Leave(..)
            | Command::Profile(..)
            | Command::Expire(..) => CommandClass::Write,
            Command::Stats
            | Command::StatsShards
            | Command::StatsReset
            | Command::SlowlogGet
            | Command::SlowlogReset
            | Command::SlowlogLen
            | Command::TraceGet
            | Command::TraceReset
            | Command::TraceLen
            | Command::Ping
            | Command::Health
            | Command::Ready
            | Command::Quit
            | Command::Auth(..) => CommandClass::Control,
        }
    }

    /// Render the request line (without terminator) that parses back to
    /// this command — the encoder the client-side helpers and the
    /// round-trip property tests use. `parse(render_line(c)) == c` holds
    /// whenever keys/tokens are whitespace-free and values are non-empty
    /// with no surrounding whitespace or newlines.
    pub fn render_line(&self) -> String {
        match self {
            Command::Get(k) => format!("GET {k}"),
            Command::Set(k, v) => format!("SET {k} {v}"),
            Command::Del(k) => format!("DEL {k}"),
            Command::Incr(k, d) => format!("INCR {k} {d}"),
            Command::AddUser(u) => format!("ADDUSER {u}"),
            Command::Post(u, m) => format!("POST {u} {m}"),
            Command::Follow(a, b) => format!("FOLLOW {a} {b}"),
            Command::Unfollow(a, b) => format!("UNFOLLOW {a} {b}"),
            Command::Timeline(u) => format!("TIMELINE {u}"),
            Command::IsFollowing(a, b) => format!("ISFOLLOWING {a} {b}"),
            Command::Followers(u) => format!("FOLLOWERS {u}"),
            Command::Join(u) => format!("JOIN {u}"),
            Command::Leave(u) => format!("LEAVE {u}"),
            Command::InGroup(u) => format!("INGROUP {u}"),
            Command::Profile(u) => format!("PROFILE {u}"),
            Command::ProfileVer(u) => format!("PROFILEVER {u}"),
            Command::Stats => "STATS".into(),
            Command::StatsShards => "STATS SHARDS".into(),
            Command::StatsReset => "STATS RESET".into(),
            Command::SlowlogGet => "SLOWLOG GET".into(),
            Command::SlowlogReset => "SLOWLOG RESET".into(),
            Command::SlowlogLen => "SLOWLOG LEN".into(),
            Command::TraceGet => "TRACE GET".into(),
            Command::TraceReset => "TRACE RESET".into(),
            Command::TraceLen => "TRACE LEN".into(),
            Command::Ping => "PING".into(),
            Command::Health => "HEALTH".into(),
            Command::Ready => "READY".into(),
            Command::Quit => "QUIT".into(),
            Command::Auth(t) => format!("AUTH {t}"),
            Command::Expire(k, ms) => format!("EXPIRE {k} {ms}"),
        }
    }
}

/// A reply on its way to the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// `+OK` / `+PONG` status.
    Status(&'static str),
    /// A present value.
    Value(String),
    /// An absent value.
    Nil,
    /// A signed integer.
    Int(i64),
    /// An error.
    Error(String),
    /// An array of pre-rendered element lines.
    Array(Vec<String>),
}

impl Reply {
    /// Append the wire form (with terminators) to `out`.
    pub fn render(&self, out: &mut String) {
        match self {
            Reply::Status(s) => {
                let _ = writeln!(out, "+{s}");
            }
            Reply::Value(v) => {
                let _ = writeln!(out, "${v}");
            }
            Reply::Nil => out.push_str("_\n"),
            Reply::Int(i) => {
                let _ = writeln!(out, ":{i}");
            }
            Reply::Error(e) => {
                let _ = writeln!(out, "-ERR {e}");
            }
            Reply::Array(items) => {
                let _ = writeln!(out, "*{}", items.len());
                for item in items {
                    let _ = writeln!(out, "{item}");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_kv_verbs() {
        assert_eq!(Command::parse("GET a"), Ok(Command::Get("a".into())));
        assert_eq!(
            Command::parse("set key hello world "),
            Ok(Command::Set("key".into(), "hello world".into()))
        );
        assert_eq!(Command::parse("DEL k\r"), Ok(Command::Del("k".into())));
        assert_eq!(Command::parse("INCR k"), Ok(Command::Incr("k".into(), 1)));
        assert_eq!(
            Command::parse("INCR k -5"),
            Ok(Command::Incr("k".into(), -5))
        );
    }

    #[test]
    fn parses_the_social_verbs() {
        assert_eq!(Command::parse("POST 3 77"), Ok(Command::Post(3, 77)));
        assert_eq!(Command::parse("FOLLOW 1 2"), Ok(Command::Follow(1, 2)));
        assert_eq!(Command::parse("TIMELINE 9"), Ok(Command::Timeline(9)));
        assert_eq!(Command::parse("stats"), Ok(Command::Stats));
    }

    #[test]
    fn parses_the_observability_verbs() {
        assert_eq!(Command::parse("STATS SHARDS"), Ok(Command::StatsShards));
        assert_eq!(Command::parse("stats shards"), Ok(Command::StatsShards));
        assert_eq!(Command::parse("STATS RESET"), Ok(Command::StatsReset));
        assert_eq!(Command::parse("stats reset"), Ok(Command::StatsReset));
        // Unknown trailing tokens keep meaning plain STATS (historical
        // leniency).
        assert_eq!(Command::parse("STATS extra"), Ok(Command::Stats));
        assert_eq!(Command::parse("SLOWLOG GET"), Ok(Command::SlowlogGet));
        assert_eq!(Command::parse("slowlog reset"), Ok(Command::SlowlogReset));
        assert_eq!(Command::parse("SLOWLOG len"), Ok(Command::SlowlogLen));
        assert!(Command::parse("SLOWLOG").is_err());
        assert!(Command::parse("SLOWLOG FROB").is_err());
        assert_eq!(Command::parse("TRACE GET"), Ok(Command::TraceGet));
        assert_eq!(Command::parse("trace reset"), Ok(Command::TraceReset));
        assert_eq!(Command::parse("TRACE len"), Ok(Command::TraceLen));
        assert!(Command::parse("TRACE").is_err());
        assert!(Command::parse("TRACE FROB").is_err());
        assert_eq!(Command::SlowlogGet.class(), CommandClass::Control);
        assert_eq!(Command::StatsShards.class(), CommandClass::Control);
        assert_eq!(Command::StatsReset.class(), CommandClass::Control);
        assert_eq!(Command::TraceGet.class(), CommandClass::Control);
    }

    #[test]
    fn leading_whitespace_does_not_corrupt_set() {
        assert_eq!(
            Command::parse("  SET k v"),
            Ok(Command::Set("k".into(), "v".into()))
        );
        assert_eq!(
            Command::parse("\t SET key hello world"),
            Ok(Command::Set("key".into(), "hello world".into()))
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Command::parse("").is_err());
        assert!(Command::parse("BLORP 1").is_err());
        assert!(Command::parse("GET").is_err());
        assert!(Command::parse("SET k").is_err());
        assert!(Command::parse("POST notanumber 5").is_err());
        assert!(Command::parse("AUTH").is_err());
        assert!(Command::parse("EXPIRE k").is_err());
        assert!(Command::parse("EXPIRE k soon").is_err());
    }

    #[test]
    fn parses_the_middleware_verbs() {
        assert_eq!(
            Command::parse("AUTH sekrit"),
            Ok(Command::Auth("sekrit".into()))
        );
        assert_eq!(
            Command::parse("expire k 250"),
            Ok(Command::Expire("k".into(), 250))
        );
    }

    #[test]
    fn render_line_round_trips() {
        let cmds = [
            Command::Get("a".into()),
            Command::Set("k".into(), "hello world".into()),
            Command::Incr("n".into(), -4),
            Command::Post(3, 77),
            Command::Stats,
            Command::StatsShards,
            Command::StatsReset,
            Command::SlowlogGet,
            Command::SlowlogReset,
            Command::SlowlogLen,
            Command::TraceGet,
            Command::TraceReset,
            Command::TraceLen,
            Command::Health,
            Command::Ready,
            Command::Auth("tok".into()),
            Command::Expire("k".into(), 99),
        ];
        for cmd in cmds {
            assert_eq!(Command::parse(&cmd.render_line()), Ok(cmd));
        }
    }

    #[test]
    fn classes_partition_the_verbs() {
        assert_eq!(Command::Get("k".into()).class(), CommandClass::Read);
        assert_eq!(
            Command::Set("k".into(), "v".into()).class(),
            CommandClass::Write
        );
        assert_eq!(Command::Expire("k".into(), 1).class(), CommandClass::Write);
        assert_eq!(Command::Auth("t".into()).class(), CommandClass::Control);
        assert_eq!(Command::Ping.class(), CommandClass::Control);
        assert_eq!(Command::Health.class(), CommandClass::Control);
        assert_eq!(Command::Ready.class(), CommandClass::Control);
    }

    #[test]
    fn parses_the_health_verbs() {
        assert_eq!(Command::parse("HEALTH"), Ok(Command::Health));
        assert_eq!(Command::parse("health"), Ok(Command::Health));
        assert_eq!(Command::parse("READY"), Ok(Command::Ready));
        assert_eq!(Command::parse("ready"), Ok(Command::Ready));
    }

    #[test]
    fn renders_replies() {
        let mut out = String::new();
        Reply::Status("OK").render(&mut out);
        Reply::Value("v with spaces".into()).render(&mut out);
        Reply::Nil.render(&mut out);
        Reply::Int(-3).render(&mut out);
        Reply::Error("nope".into()).render(&mut out);
        Reply::Array(vec![":1".into(), ":2".into()]).render(&mut out);
        assert_eq!(out, "+OK\n$v with spaces\n_\n:-3\n-ERR nope\n*2\n:1\n:2\n");
    }
}
