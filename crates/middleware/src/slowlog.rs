//! SLOWLOG: a fixed-capacity lock-free ring of the slowest commands.
//!
//! The trace layer records an entry for every command (or pipelined
//! burst) whose wall-clock time crosses the configured threshold. The
//! ring is built on `dego-juc` primitives — an [`AtomicLong`] write
//! cursor claimed with one `get_and_increment`, and one epoch-reclaimed
//! [`AtomicRef`] slot per position — so writers from any connection
//! thread never block each other or readers: a `SLOWLOG GET` taken
//! mid-write simply sees the previous entry in that slot.
//!
//! Semantics: the ring keeps the most recent `capacity` over-threshold
//! entries; [`SlowLog::entries`] returns them sorted slowest-first
//! (Redis-style). [`SlowLog::reset`] empties the ring but keeps entry
//! ids monotonic across resets.

use crate::pipeline::{LayerKind, LAYER_COUNT};
use dego_juc::{AtomicLong, AtomicRef};
use std::fmt::Write as _;
use std::sync::Arc;

/// One captured slow command or burst.
#[derive(Clone, Debug)]
pub struct SlowLogEntry {
    /// Monotonic id (survives [`SlowLog::reset`]).
    pub id: u64,
    /// Wall-clock capture time, milliseconds since the Unix epoch —
    /// the anchor for correlating entries with external logs (the
    /// other fields are all relative durations).
    pub unix_ms: u64,
    /// Peer address of the connection that issued it.
    pub client: Arc<str>,
    /// Verb, or `"BATCH"` for a pipelined burst.
    pub verb: &'static str,
    /// Command class name (`read`/`write`/`control`, `batch` for bursts).
    pub class: &'static str,
    /// Commands in the burst (1 for a singleton).
    pub burst: usize,
    /// End-to-end wall-clock time through the whole stack.
    pub elapsed_us: u64,
    /// Sampled per-layer admission breakdown, when the span sampler
    /// happened to cover this command; `None` for layers the span
    /// never touched and for unsampled commands.
    pub layer_us: Option<[Option<u64>; LAYER_COUNT]>,
}

impl SlowLogEntry {
    /// The `SLOWLOG GET` wire line:
    /// `id=3 unix_ms=1722470400000 client=127.0.0.1:4242 verb=SET class=write burst=1 us=15000 span=auth:2,ttl:9`
    /// (`span=-` when the command was not sampled).
    pub fn render_line(&self) -> String {
        let mut line = format!(
            "id={} unix_ms={} client={} verb={} class={} burst={} us={} span=",
            self.id, self.unix_ms, self.client, self.verb, self.class, self.burst, self.elapsed_us
        );
        match &self.layer_us {
            None => line.push('-'),
            Some(costs) => {
                let mut any = false;
                for kind in LayerKind::ALL {
                    if let Some(us) = costs[kind.index()] {
                        if any {
                            line.push(',');
                        }
                        let _ = write!(line, "{}:{us}", kind.name());
                        any = true;
                    }
                }
                if !any {
                    line.push('-');
                }
            }
        }
        line
    }
}

impl std::fmt::Display for SlowLogEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render_line())
    }
}

/// The lock-free slow-command ring shared by every connection chain.
#[derive(Debug)]
pub struct SlowLog {
    threshold_us: u64,
    slots: Vec<AtomicRef<Arc<SlowLogEntry>>>,
    /// Write cursor; also the source of monotonic entry ids.
    head: AtomicLong,
}

impl SlowLog {
    /// A ring holding the `capacity` most recent entries at or above
    /// `threshold_us`. Capacity 0 disables capture entirely.
    pub fn new(threshold_us: u64, capacity: usize) -> Self {
        SlowLog {
            threshold_us,
            slots: (0..capacity).map(|_| AtomicRef::empty()).collect(),
            head: AtomicLong::new(0),
        }
    }

    /// The capture threshold in microseconds.
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us
    }

    /// Offer an observation; it is stored only when it crosses the
    /// threshold and the ring has capacity. Returns whether it was
    /// captured.
    pub fn offer(
        &self,
        client: &Arc<str>,
        verb: &'static str,
        class: &'static str,
        burst: usize,
        elapsed_us: u64,
        layer_us: Option<[Option<u64>; LAYER_COUNT]>,
    ) -> bool {
        if self.slots.is_empty() || elapsed_us < self.threshold_us {
            return false;
        }
        let id = self.head.get_and_increment() as u64;
        let slot = &self.slots[(id as usize) % self.slots.len()];
        slot.set(Arc::new(SlowLogEntry {
            id,
            unix_ms: crate::flight::unix_ms_now(),
            client: Arc::clone(client),
            verb,
            class,
            burst,
            elapsed_us,
            layer_us,
        }));
        true
    }

    /// Snapshot the ring, sorted slowest-first (ties: newest first).
    pub fn entries(&self) -> Vec<Arc<SlowLogEntry>> {
        let mut out: Vec<Arc<SlowLogEntry>> = self.slots.iter().filter_map(|s| s.get()).collect();
        out.sort_by(|a, b| b.elapsed_us.cmp(&a.elapsed_us).then(b.id.cmp(&a.id)));
        out
    }

    /// Occupied slots (saturates at capacity).
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| !s.is_empty()).count()
    }

    /// Whether the ring currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_empty())
    }

    /// Entries ever captured (not clamped by capacity or reset).
    pub fn total(&self) -> u64 {
        self.head.get() as u64
    }

    /// Drop every entry; ids keep counting from where they were.
    pub fn reset(&self) {
        for slot in &self.slots {
            slot.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client() -> Arc<str> {
        Arc::from("test:1")
    }

    #[test]
    fn below_threshold_is_ignored() {
        let log = SlowLog::new(100, 4);
        assert!(!log.offer(&client(), "GET", "read", 1, 99, None));
        assert_eq!(log.len(), 0);
        assert!(log.is_empty());
        assert_eq!(log.total(), 0);
    }

    #[test]
    fn keeps_most_recent_capacity_sorted_slowest_first() {
        let log = SlowLog::new(10, 2);
        log.offer(&client(), "GET", "read", 1, 50, None);
        log.offer(&client(), "SET", "write", 1, 500, None);
        log.offer(&client(), "DEL", "write", 1, 200, None); // evicts id 0
        let entries = log.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].elapsed_us, 500);
        assert_eq!(entries[1].verb, "DEL");
        assert_eq!(log.total(), 3);
    }

    #[test]
    fn reset_clears_but_ids_stay_monotonic() {
        let log = SlowLog::new(0, 4);
        log.offer(&client(), "GET", "read", 1, 1, None);
        log.offer(&client(), "GET", "read", 1, 2, None);
        log.reset();
        assert_eq!(log.len(), 0);
        log.offer(&client(), "GET", "read", 1, 3, None);
        assert_eq!(log.entries()[0].id, 2, "ids continue across reset");
    }

    #[test]
    fn zero_capacity_disables_capture() {
        let log = SlowLog::new(0, 0);
        assert!(!log.offer(&client(), "GET", "read", 1, u64::MAX, None));
        assert!(log.entries().is_empty());
    }

    #[test]
    fn render_line_is_well_formed() {
        let mut costs = [None; LAYER_COUNT];
        costs[LayerKind::Auth.index()] = Some(7);
        costs[LayerKind::Ttl.index()] = Some(0);
        let entry = SlowLogEntry {
            id: 9,
            unix_ms: 1_722_470_400_000,
            client: client(),
            verb: "SET",
            class: "write",
            burst: 1,
            elapsed_us: 1234,
            layer_us: Some(costs),
        };
        assert_eq!(
            entry.render_line(),
            "id=9 unix_ms=1722470400000 client=test:1 verb=SET class=write burst=1 \
             us=1234 span=auth:7,ttl:0"
        );
        assert_eq!(entry.to_string(), entry.render_line(), "Display delegates");
        let unsampled = SlowLogEntry {
            layer_us: None,
            ..entry
        };
        assert!(unsampled.render_line().ends_with("span=-"));
    }

    #[test]
    fn offered_entries_carry_a_wall_clock_stamp() {
        let log = SlowLog::new(0, 1);
        log.offer(&client(), "SET", "write", 1, 5, None);
        let entry = &log.entries()[0];
        // Any plausible present-day stamp: after 2020-01-01.
        assert!(entry.unix_ms > 1_577_836_800_000, "got {}", entry.unix_ms);
    }

    #[test]
    fn concurrent_writers_never_tear() {
        let log = Arc::new(SlowLog::new(0, 8));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    let who: Arc<str> = Arc::from(format!("w{t}"));
                    for i in 0..500 {
                        log.offer(&who, "SET", "write", 1, 100 + i, None);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(log.total(), 2000);
        let entries = log.entries();
        assert_eq!(entries.len(), 8);
        for pair in entries.windows(2) {
            assert!(pair[0].elapsed_us >= pair[1].elapsed_us);
        }
    }
}
