//! # dego-middleware — a composable request-interceptor pipeline
//!
//! The paper adjusts shared objects so a middleware's hot paths scale;
//! this crate *is* the middleware: a tower-style [`Layer`]/[`Service`]
//! onion over the wire protocol's [`protocol::Command`] /
//! [`protocol::Reply`], composed by a [`Stack`] in front of the
//! `dego-server` storage plane. Every layer's shared state is built
//! from the adjusted-object catalogue, so the pipeline itself is a
//! contention workload for the paper's data structures:
//!
//! | Layer | Concern | Shared state |
//! |---|---|---|
//! | [`TraceLayer`] | latency histograms + per-layer counters in `STATS` | relaxed-atomic histograms, `LongAdder`s |
//! | [`BreakerLayer`] | per-class circuit breaker (closed/open/half-open) | lock-free per-class atomics |
//! | [`DeadlineLayer`] | per-class execution budgets | none (config only) |
//! | [`AuthLayer`] | `AUTH` tokens + role ACLs | SWMR hash map, RCU-published policy |
//! | [`RateLimitLayer`] | per-client token buckets | `SegmentedHashMap` of atomic buckets, `LongAdder` refill counters |
//! | [`ShedLayer`] | shard-pressure load shedding for writes | injected [`PressureProbe`] over live shard telemetry |
//! | [`TtlLayer`] | `EXPIRE` timers, lazy expiry on `GET` | `SegmentedHashMap` expiry sidecar, reaps lock-serialized against rewrites |
//!
//! Composition is canonical regardless of configuration order:
//!
//! ```text
//! client → trace → breaker → deadline → auth → rate-limit → shed → ttl → store
//! ```
//!
//! Two dispatch planes build that chain: the full seven-layer stack
//! monomorphizes into one concrete [`FusedService`] (direct calls
//! between layers, plus an inline batch-1 fast path via
//! [`fused::FusedService::call_one`]), while partial/custom stacks
//! compose as a boxed `dyn Service` onion ([`Stack::service`]).
//! Replies and metrics are byte-identical across both — the
//! `fused_stack_matches_dyn_stack` proptest pins it.
//!
//! Rejections are structured (`-ERR RATELIMIT …`, `-ERR AUTH …`,
//! `-ERR DEADLINE …`, `-ERR SHED …`, `-ERR BREAKER …`); see the
//! error-reply grammar in [`protocol`].
//!
//! ## Quickstart
//!
//! ```
//! use dego_middleware::protocol::{Command, Reply};
//! use dego_middleware::{
//!     BoxService, MiddlewareConfig, Request, Response, Service, Session, Stack,
//! };
//!
//! struct Echo;
//! impl Service for Echo {
//!     fn call(&mut self, req: Request) -> Response {
//!         Response::ok(Reply::Value(req.command.verb().into()))
//!     }
//! }
//!
//! let stack = Stack::build(&MiddlewareConfig::full());
//! assert_eq!(stack.depth(), 7);
//! let session = Session { client: "10.0.0.7:5501".into() };
//! let mut chain: BoxService = stack.service(&session, Box::new(Echo));
//! let resp = chain.call(Request::new(Command::Ping));
//! assert_eq!(resp.reply, Reply::Value("PING".into()));
//! ```

#![warn(missing_docs)]

pub mod auth;
pub mod breaker;
pub mod config;
pub mod deadline;
pub mod flight;
pub mod fused;
pub mod metrics;
pub mod pipeline;
pub mod prom;
pub mod protocol;
pub mod rate_limit;
pub mod shed;
pub mod slowlog;
pub mod span;
pub mod trace;
pub mod ttl;

pub use auth::{AuthConfig, AuthLayer, Principal, Role, TokenSpec};
pub use breaker::{BreakerConfig, BreakerLayer};
pub use config::{MiddlewareConfig, TraceConfig};
pub use deadline::{DeadlineConfig, DeadlineLayer};
pub use flight::{FlightRecorder, StoreSegment, TraceTree};
pub use fused::FusedService;
pub use metrics::{
    LatencyHistogram, PipelineMetrics, RelaxedCounter, StatLines, WindowedHistogram,
};
pub use pipeline::{
    BoxService, Layer, LayerKind, Request, Response, Service, Session, Stack, LAYER_COUNT,
};
pub use prom::PromText;
pub use rate_limit::{RateLimitConfig, RateLimitLayer};
pub use shed::{PressureProbe, ShardPressure, ShedConfig, ShedLayer};
pub use slowlog::{SlowLog, SlowLogEntry};
pub use trace::TraceLayer;
pub use ttl::TtlLayer;
