//! Property tests of the wire protocol: for any well-formed command —
//! including the middleware verbs `AUTH`/`EXPIRE` — the request-line
//! encoder and the parser are exact inverses, and malformed input is
//! rejected rather than misparsed.

use dego_middleware::protocol::{Command, CommandClass, Reply};
use proptest::prelude::*;

/// Keys and tokens: non-empty, whitespace-free.
fn key() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_.:-]{1,16}".prop_map(|s| s)
}

/// `SET` values: may contain interior spaces, but no surrounding
/// whitespace or newlines (the line protocol cannot carry those).
fn value() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_.-][a-zA-Z0-9_. :-]{0,30}"
        .prop_map(|s| s.trim().to_string())
        .prop_filter("non-empty trimmed value", |v| !v.is_empty())
}

fn user() -> impl Strategy<Value = u64> {
    0u64..1_000_000
}

fn command() -> impl Strategy<Value = Command> {
    prop_oneof!(
        key().prop_map(Command::Get),
        (key(), value()).prop_map(|(k, v)| Command::Set(k, v)),
        key().prop_map(Command::Del),
        (key(), any::<i64>()).prop_map(|(k, d)| Command::Incr(k, d)),
        user().prop_map(Command::AddUser),
        (user(), user()).prop_map(|(u, m)| Command::Post(u, m)),
        (user(), user()).prop_map(|(a, b)| Command::Follow(a, b)),
        (user(), user()).prop_map(|(a, b)| Command::Unfollow(a, b)),
        user().prop_map(Command::Timeline),
        (user(), user()).prop_map(|(a, b)| Command::IsFollowing(a, b)),
        user().prop_map(Command::Followers),
        user().prop_map(Command::Join),
        user().prop_map(Command::Leave),
        user().prop_map(Command::InGroup),
        user().prop_map(Command::Profile),
        user().prop_map(Command::ProfileVer),
        Just(Command::Stats),
        Just(Command::Ping),
        Just(Command::Quit),
        key().prop_map(Command::Auth),
        (key(), any::<u64>()).prop_map(|(k, ms)| Command::Expire(k, ms)),
    )
}

const KNOWN_VERBS: &[&str] = &[
    "GET",
    "SET",
    "DEL",
    "INCR",
    "ADDUSER",
    "POST",
    "FOLLOW",
    "UNFOLLOW",
    "TIMELINE",
    "ISFOLLOWING",
    "FOLLOWERS",
    "JOIN",
    "LEAVE",
    "INGROUP",
    "PROFILE",
    "PROFILEVER",
    "STATS",
    "PING",
    "QUIT",
    "AUTH",
    "EXPIRE",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse ∘ render_line = identity over every command frame,
    /// including the new AUTH/EXPIRE ones.
    #[test]
    fn request_lines_round_trip(cmd in command()) {
        let line = cmd.render_line();
        prop_assert_eq!(Command::parse(&line), Ok(cmd.clone()));
        // A trailing \r (telnet-style input) must not change the parse.
        prop_assert_eq!(Command::parse(&format!("{line}\r")), Ok(cmd), "trailing CR tolerated");
    }

    /// Case-insensitivity: lowering the verb never changes the parse.
    #[test]
    fn verbs_are_case_insensitive(cmd in command()) {
        let line = cmd.render_line();
        let verb_len = cmd.verb().len();
        let lowered = format!("{}{}", line[..verb_len].to_ascii_lowercase(), &line[verb_len..]);
        prop_assert_eq!(Command::parse(&lowered), Ok(cmd));
    }

    /// Every command belongs to exactly one class, and the class is
    /// stable across a render/parse cycle.
    #[test]
    fn class_is_parse_stable(cmd in command()) {
        let reparsed = Command::parse(&cmd.render_line()).expect("round trip");
        prop_assert_eq!(reparsed.class(), cmd.class());
        prop_assert!(matches!(
            cmd.class(),
            CommandClass::Read | CommandClass::Write | CommandClass::Control
        ));
    }

    /// Unknown verbs are rejected whatever their arguments look like.
    #[test]
    fn unknown_verbs_are_rejected(
        verb in "[A-Z]{2,12}".prop_filter("not a real verb", |v| !KNOWN_VERBS.contains(&v.as_str())),
        arg in "[a-z0-9 ]{0,20}",
    ) {
        prop_assert!(Command::parse(&format!("{verb} {arg}")).is_err(), "verb {} must be rejected", verb);
    }

    /// Truncated frames (verb present, required arguments missing) are
    /// rejected, never defaulted.
    #[test]
    fn truncated_frames_are_rejected(
        verb in prop_oneof!(
            Just("GET"), Just("SET"), Just("DEL"), Just("AUTH"), Just("EXPIRE"),
            Just("POST"), Just("FOLLOW"), Just("TIMELINE"),
        ),
    ) {
        prop_assert!(Command::parse(verb).is_err(), "truncated {} must be rejected", verb);
    }

    /// Numeric argument positions reject non-numeric junk (and AUTH, a
    /// string position, accepts it — exactly one of the two).
    #[test]
    fn numeric_positions_reject_junk(junk in "[a-z]{1,8}x") {
        prop_assert!(Command::parse(&format!("EXPIRE k {junk}")).is_err(), "bad millis");
        prop_assert!(Command::parse(&format!("ADDUSER {junk}")).is_err(), "bad user");
        prop_assert!(Command::parse(&format!("INCR k {junk}")).is_err(), "bad delta");
        prop_assert!(Command::parse(&format!("AUTH {junk}")).is_ok(), "token is a string position");
    }

    /// Reply rendering always emits exactly one line per element
    /// (header + n for arrays), each newline-terminated.
    #[test]
    fn replies_render_line_disciplined(
        v in value(),
        n in any::<i64>(),
        items in proptest::collection::vec("[a-z0-9=]{1,12}", 0..6),
    ) {
        for (reply, lines) in [
            (Reply::Status("OK"), 1),
            (Reply::Value(v.clone()), 1),
            (Reply::Nil, 1),
            (Reply::Int(n), 1),
            (Reply::Error(v.clone()), 1),
            (Reply::Array(items.clone()), items.len() + 1),
        ] {
            let mut out = String::new();
            reply.render(&mut out);
            prop_assert!(out.ends_with('\n'));
            prop_assert_eq!(out.lines().count(), lines);
        }
    }
}
