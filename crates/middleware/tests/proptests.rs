//! Property tests of the wire protocol — for any well-formed command
//! (including the middleware verbs `AUTH`/`EXPIRE`) the request-line
//! encoder and the parser are exact inverses, and malformed input is
//! rejected rather than misparsed — plus the batch-path law: a
//! pipelined burst through `call_batch` answers byte-identically, in
//! order, to the same commands sent through `call` one at a time —
//! plus the dispatch-plane law: the fused (monomorphized) seven-layer
//! chain and the boxed `dyn Service` onion produce byte-identical
//! reply streams for any burst and tuning (the invariant behind
//! `--dyn-stack` being a pure A/B switch) —
//! plus Prometheus exposition invariants: metric names survive
//! rendering and label values escape losslessly.

use dego_middleware::protocol::{Command, CommandClass, Reply};
use dego_middleware::{
    AuthConfig, MiddlewareConfig, PromText, Request, Response, Role, Service, Session, Stack,
    TokenSpec, WindowedHistogram,
};
use proptest::prelude::*;
use std::collections::HashMap;

/// Keys and tokens: non-empty, whitespace-free.
fn key() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_.:-]{1,16}".prop_map(|s| s)
}

/// `SET` values: may contain interior spaces, but no surrounding
/// whitespace or newlines (the line protocol cannot carry those).
fn value() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_.-][a-zA-Z0-9_. :-]{0,30}"
        .prop_map(|s| s.trim().to_string())
        .prop_filter("non-empty trimmed value", |v| !v.is_empty())
}

fn user() -> impl Strategy<Value = u64> {
    0u64..1_000_000
}

fn command() -> impl Strategy<Value = Command> {
    prop_oneof!(
        key().prop_map(Command::Get),
        (key(), value()).prop_map(|(k, v)| Command::Set(k, v)),
        key().prop_map(Command::Del),
        (key(), any::<i64>()).prop_map(|(k, d)| Command::Incr(k, d)),
        user().prop_map(Command::AddUser),
        (user(), user()).prop_map(|(u, m)| Command::Post(u, m)),
        (user(), user()).prop_map(|(a, b)| Command::Follow(a, b)),
        (user(), user()).prop_map(|(a, b)| Command::Unfollow(a, b)),
        user().prop_map(Command::Timeline),
        (user(), user()).prop_map(|(a, b)| Command::IsFollowing(a, b)),
        user().prop_map(Command::Followers),
        user().prop_map(Command::Join),
        user().prop_map(Command::Leave),
        user().prop_map(Command::InGroup),
        user().prop_map(Command::Profile),
        user().prop_map(Command::ProfileVer),
        Just(Command::Stats),
        Just(Command::StatsShards),
        Just(Command::Ping),
        Just(Command::Health),
        Just(Command::Ready),
        Just(Command::Quit),
        key().prop_map(Command::Auth),
        (key(), any::<u64>()).prop_map(|(k, ms)| Command::Expire(k, ms)),
        Just(Command::SlowlogGet),
        Just(Command::SlowlogReset),
        Just(Command::SlowlogLen),
        Just(Command::StatsReset),
        Just(Command::TraceGet),
        Just(Command::TraceReset),
        Just(Command::TraceLen),
    )
}

/// A tiny deterministic in-memory store standing in for the shard
/// plane in the batch-equivalence property.
struct MapStore {
    map: HashMap<String, String>,
}

impl Service for MapStore {
    fn call(&mut self, req: Request) -> Response {
        match req.command {
            Command::Get(k) => Response::ok(match self.map.get(&k) {
                Some(v) => Reply::Value(v.clone()),
                None => Reply::Nil,
            }),
            Command::Set(k, v) => {
                self.map.insert(k, v);
                Response::ok(Reply::Status("OK"))
            }
            Command::Del(k) => {
                self.map.remove(&k);
                Response::ok(Reply::Status("OK"))
            }
            Command::Incr(k, d) => {
                let next = self
                    .map
                    .get(&k)
                    .and_then(|v| v.parse::<i64>().ok())
                    .unwrap_or(0)
                    .wrapping_add(d);
                self.map.insert(k, next.to_string());
                Response::ok(Reply::Int(next))
            }
            Command::Ping => Response::ok(Reply::Status("PONG")),
            _ => Response::ok(Reply::Error("unsupported".into())),
        }
    }
}

/// Commands for the batch-equivalence property: deterministic under
/// repetition (no `STATS`, whose counters legitimately differ between
/// the two paths) and timing-stable (`EXPIRE` only with a deadline far
/// beyond the test's lifetime).
fn stable_command() -> impl Strategy<Value = Command> {
    prop_oneof!(
        key().prop_map(Command::Get),
        (key(), value()).prop_map(|(k, v)| Command::Set(k, v)),
        key().prop_map(Command::Del),
        (key(), -100i64..100).prop_map(|(k, d)| Command::Incr(k, d)),
        Just(Command::Ping),
        // HEALTH/READY ride the rate-limit exemption; the equivalence
        // must hold through the fused fallback and the batch partition.
        Just(Command::Health),
        Just(Command::Ready),
        // Both a valid and an invalid token: the sequential fallback
        // the batch path takes for AUTH must role-switch identically.
        Just(Command::Auth("sekrit".into())),
        Just(Command::Auth("wrong".into())),
        (key(), 600_000u64..1_000_000).prop_map(|(k, ms)| Command::Expire(k, ms)),
    )
}

/// A full seven-layer stack over a fresh [`MapStore`], tuned so no
/// timing-dependent layer can fire within the test (tiny refill, huge
/// budgets) while every decision path (ACLs, bucket exhaustion,
/// armed timers) stays reachable.
fn equivalence_config(burst: u64) -> MiddlewareConfig {
    let mut config = MiddlewareConfig::full();
    config.auth = AuthConfig {
        tokens: vec![TokenSpec {
            name: "writer".into(),
            token: "sekrit".into(),
            role: Role::ReadWrite,
        }],
        anon_role: Role::ReadOnly,
    };
    config.rate.burst = burst;
    config.rate.refill_per_sec = 1; // no refill within a µs-scale test
    config.deadline.read_us = 60_000_000;
    config.deadline.write_us = 60_000_000;
    config
}

fn equivalence_chain(burst: u64) -> dego_middleware::BoxService {
    let stack = Stack::build(&equivalence_config(burst));
    let session = Session {
        client: "prop:1".into(),
    };
    stack.service(
        &session,
        Box::new(MapStore {
            map: HashMap::new(),
        }),
    )
}

/// Metric family names as the exposition format allows them.
fn metric_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,24}".prop_map(|s| s)
}

/// Label values across the full escaping surface: backslashes, double
/// quotes, newlines, and ordinary printable ASCII.
fn label_value() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just('\\'),
            Just('"'),
            Just('\n'),
            (32u8..127).prop_map(|b| b as char),
        ],
        0..16,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

/// Inverse of [`dego_middleware::prom::escape_label_value`]: the three
/// escape sequences the exposition format defines, nothing else.
fn unescape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            other => panic!("dangling escape {other:?} in {s:?}"),
        }
    }
    out
}

const KNOWN_VERBS: &[&str] = &[
    "GET",
    "SET",
    "DEL",
    "INCR",
    "ADDUSER",
    "POST",
    "FOLLOW",
    "UNFOLLOW",
    "TIMELINE",
    "ISFOLLOWING",
    "FOLLOWERS",
    "JOIN",
    "LEAVE",
    "INGROUP",
    "PROFILE",
    "PROFILEVER",
    "STATS",
    "PING",
    "HEALTH",
    "READY",
    "QUIT",
    "AUTH",
    "EXPIRE",
    "SLOWLOG",
    "TRACE",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse ∘ render_line = identity over every command frame,
    /// including the new AUTH/EXPIRE ones.
    #[test]
    fn request_lines_round_trip(cmd in command()) {
        let line = cmd.render_line();
        prop_assert_eq!(Command::parse(&line), Ok(cmd.clone()));
        // A trailing \r (telnet-style input) must not change the parse.
        prop_assert_eq!(Command::parse(&format!("{line}\r")), Ok(cmd), "trailing CR tolerated");
    }

    /// Case-insensitivity: lowering the verb never changes the parse.
    #[test]
    fn verbs_are_case_insensitive(cmd in command()) {
        let line = cmd.render_line();
        let verb_len = cmd.verb().len();
        let lowered = format!("{}{}", line[..verb_len].to_ascii_lowercase(), &line[verb_len..]);
        prop_assert_eq!(Command::parse(&lowered), Ok(cmd));
    }

    /// Every command belongs to exactly one class, and the class is
    /// stable across a render/parse cycle.
    #[test]
    fn class_is_parse_stable(cmd in command()) {
        let reparsed = Command::parse(&cmd.render_line()).expect("round trip");
        prop_assert_eq!(reparsed.class(), cmd.class());
        prop_assert!(matches!(
            cmd.class(),
            CommandClass::Read | CommandClass::Write | CommandClass::Control
        ));
    }

    /// Unknown verbs are rejected whatever their arguments look like.
    #[test]
    fn unknown_verbs_are_rejected(
        verb in "[A-Z]{2,12}".prop_filter("not a real verb", |v| !KNOWN_VERBS.contains(&v.as_str())),
        arg in "[a-z0-9 ]{0,20}",
    ) {
        prop_assert!(Command::parse(&format!("{verb} {arg}")).is_err(), "verb {} must be rejected", verb);
    }

    /// Truncated frames (verb present, required arguments missing) are
    /// rejected, never defaulted.
    #[test]
    fn truncated_frames_are_rejected(
        verb in prop_oneof!(
            Just("GET"), Just("SET"), Just("DEL"), Just("AUTH"), Just("EXPIRE"),
            Just("POST"), Just("FOLLOW"), Just("TIMELINE"),
        ),
    ) {
        prop_assert!(Command::parse(verb).is_err(), "truncated {} must be rejected", verb);
    }

    /// Numeric argument positions reject non-numeric junk (and AUTH, a
    /// string position, accepts it — exactly one of the two).
    #[test]
    fn numeric_positions_reject_junk(junk in "[a-z]{1,8}x") {
        prop_assert!(Command::parse(&format!("EXPIRE k {junk}")).is_err(), "bad millis");
        prop_assert!(Command::parse(&format!("ADDUSER {junk}")).is_err(), "bad user");
        prop_assert!(Command::parse(&format!("INCR k {junk}")).is_err(), "bad delta");
        prop_assert!(Command::parse(&format!("AUTH {junk}")).is_ok(), "token is a string position");
    }

    /// The batch law: for any burst, `call_batch` through the full
    /// seven-layer stack produces byte-identical replies, in order, to
    /// the same commands driven through `call` one at a time — across
    /// every decision the layers can take (ACL denials, bucket
    /// exhaustion, armed TTL timers, mid-burst logins).
    #[test]
    fn call_batch_matches_sequential_call(
        burst in 4u64..200,
        cmds in proptest::collection::vec(stable_command(), 1..40),
    ) {
        let mut sequential = equivalence_chain(burst);
        let mut batched = equivalence_chain(burst);
        let want: Vec<(Reply, bool)> = cmds
            .iter()
            .map(|c| {
                let resp = sequential.call(Request::new(c.clone()));
                (resp.reply, resp.close)
            })
            .collect();
        let got: Vec<(Reply, bool)> = batched
            .call_batch(cmds.into_iter().map(Request::new).collect())
            .into_iter()
            .map(|resp| (resp.reply, resp.close))
            .collect();
        prop_assert_eq!(got, want);
    }

    /// The dispatch-plane law: for any burst and tuning (including
    /// every span-sampling phase, which toggles the fused batch-1
    /// fast path on and off mid-stream), the fused (monomorphized)
    /// chain answers byte-identically to the boxed `dyn Service`
    /// onion — singletons through `call_one` vs `call`, then the same
    /// commands again as one `call_batch` burst through each.
    #[test]
    fn fused_stack_matches_dyn_stack(
        burst in 4u64..200,
        sample_every in 0u32..5,
        cmds in proptest::collection::vec(stable_command(), 1..40),
    ) {
        let mut config = equivalence_config(burst);
        config.trace.sample_every = sample_every;
        let session = Session {
            client: "prop:1".into(),
        };
        let fused_stack = Stack::build(&config);
        let mut fused = fused_stack
            .fused_service(&session, MapStore { map: HashMap::new() })
            .expect("full stack fuses");
        let dyn_stack = Stack::build(&config);
        let mut onion = dyn_stack.service(
            &session,
            Box::new(MapStore { map: HashMap::new() }),
        );
        let want: Vec<(Reply, bool)> = cmds
            .iter()
            .map(|c| {
                let resp = onion.call(Request::new(c.clone()));
                (resp.reply, resp.close)
            })
            .collect();
        let got: Vec<(Reply, bool)> = cmds
            .iter()
            .map(|c| {
                let resp = fused.call_one(Request::new(c.clone()));
                (resp.reply, resp.close)
            })
            .collect();
        prop_assert_eq!(got, want, "singleton stream");

        // Both chains advanced through identical state; the same burst
        // again through each batch path must agree too.
        let want: Vec<(Reply, bool)> = onion
            .call_batch(cmds.iter().cloned().map(Request::new).collect())
            .into_iter()
            .map(|resp| (resp.reply, resp.close))
            .collect();
        let got: Vec<(Reply, bool)> = fused
            .call_batch(cmds.into_iter().map(Request::new).collect())
            .into_iter()
            .map(|resp| (resp.reply, resp.close))
            .collect();
        prop_assert_eq!(got, want, "batched burst");
    }

    /// Escaping is lossless: unescape ∘ escape = identity, and the
    /// escaped form never carries a raw newline (which would tear the
    /// line-oriented exposition).
    #[test]
    fn prom_label_escaping_round_trips(v in label_value()) {
        let escaped = dego_middleware::prom::escape_label_value(&v);
        prop_assert!(!escaped.contains('\n'), "no raw newline in {escaped:?}");
        prop_assert_eq!(unescape_label_value(&escaped), v);
    }

    /// Rendered expositions round-trip their family names and values:
    /// the `# TYPE` header, the bare counter sample, and the labelled
    /// gauge sample (label value recovered through unescaping) all
    /// survive a parse of the finished text.
    #[test]
    fn prom_rendering_round_trips(
        name in metric_name(),
        count in any::<u64>(),
        gauge_val in any::<u64>(),
        label in label_value(),
    ) {
        let counter_name = format!("{name}_total");
        let gauge_name = format!("{name}_depth");
        let mut p = PromText::new();
        p.counter(&counter_name, "a counter", count);
        p.gauge_vec(&gauge_name, "a gauge", &[(vec![("l", label.clone())], gauge_val)]);
        let text = p.finish();

        prop_assert!(
            text.lines().any(|l| l == format!("# TYPE {counter_name} counter")),
            "counter TYPE header in {text:?}"
        );
        prop_assert!(
            text.lines().any(|l| l == format!("{counter_name} {count}")),
            "counter sample in {text:?}"
        );
        prop_assert!(
            text.lines().any(|l| l == format!("# TYPE {gauge_name} gauge")),
            "gauge TYPE header in {text:?}"
        );

        // The labelled series: name{l="ESCAPED"} value — recover both.
        let prefix = format!("{gauge_name}{{l=\"");
        let series = text.lines().find(|l| l.starts_with(&prefix));
        prop_assert!(series.is_some(), "labelled gauge series in {text:?}");
        let (sample, value) = series.unwrap().rsplit_once(' ').expect("sample line");
        prop_assert_eq!(value.parse::<u64>().ok(), Some(gauge_val));
        let inner = sample
            .strip_prefix(&prefix)
            .and_then(|rest| rest.strip_suffix("\"}"))
            .expect("label delimiters");
        prop_assert_eq!(unescape_label_value(inner), label);
    }

    /// The window-merge law: when every sample lands within one window
    /// span (epochs covering fewer than the slot count), merging the
    /// live slots reproduces the cumulative lifetime histogram exactly
    /// — windowing drops only expired samples, never live ones, and
    /// counts nothing twice.
    #[test]
    fn window_merge_matches_cumulative_histogram(
        samples in proptest::collection::vec((0u64..100_000_000, 100u64..106), 1..200),
    ) {
        let h = WindowedHistogram::new(60);
        let mut newest = 0u64;
        for &(micros, epoch) in &samples {
            h.record_at(micros, epoch);
            newest = newest.max(epoch);
        }
        let merged = h.windowed_counts_at(newest);
        prop_assert_eq!(merged, h.lifetime().counts());
        prop_assert_eq!(h.count(), samples.len() as u64);
    }

    /// Reply rendering always emits exactly one line per element
    /// (header + n for arrays), each newline-terminated.
    #[test]
    fn replies_render_line_disciplined(
        v in value(),
        n in any::<i64>(),
        items in proptest::collection::vec("[a-z0-9=]{1,12}", 0..6),
    ) {
        for (reply, lines) in [
            (Reply::Status("OK"), 1),
            (Reply::Value(v.clone()), 1),
            (Reply::Nil, 1),
            (Reply::Int(n), 1),
            (Reply::Error(v.clone()), 1),
            (Reply::Array(items.clone()), items.len() + 1),
        ] {
            let mut out = String::new();
            reply.render(&mut out);
            prop_assert!(out.ends_with('\n'));
            prop_assert_eq!(out.lines().count(), lines);
        }
    }
}
