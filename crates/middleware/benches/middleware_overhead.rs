//! Criterion bench: per-request middleware overhead, axum-style.
//!
//! * `layer_overhead` — each of the seven layers in isolation
//!   (monomorphized over a no-op inner) against the bare inner, so a
//!   layer's per-request cost is one subtraction away.
//! * `stack_scaling` — the composed onion at increasing depth (the
//!   boxed `dyn Service` path every partial stack takes), showing how
//!   overhead accumulates per layer.
//! * `stack_dispatch` — full-depth fused vs dyn: the monomorphized
//!   chain's batch-1 `call_one` fast path against the boxed onion's
//!   `call`, plus `call_batch` at 8 and 32 where group-commit
//!   amortization dominates the dispatch mode.
//!
//! Rate limits are tuned effectively off (huge burst) so the A/B
//! compares dispatch cost, not token exhaustion; span sampling stays
//! at the production default (1-in-64) so the numbers include the
//! real sampling duty cycle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dego_middleware::protocol::{Command, Reply};
use dego_middleware::{
    AuthLayer, BreakerLayer, DeadlineLayer, MiddlewareConfig, PipelineMetrics, RateLimitLayer,
    Request, Response, Service, Session, ShedLayer, Stack, TraceLayer, TtlLayer,
};
use std::sync::Arc;
use std::time::Duration;

/// The no-op inner service: the floor every overhead is measured from.
struct Nop;

impl Service for Nop {
    fn call(&mut self, _req: Request) -> Response {
        Response::ok(Reply::Status("OK"))
    }
}

fn session() -> Session {
    Session {
        client: "bench:1".into(),
    }
}

/// A full-depth config with the rate limiter effectively off (the
/// bench loop would drain any realistic bucket) and everything else at
/// production defaults.
fn bench_config(layers: &str) -> MiddlewareConfig {
    let mut config = MiddlewareConfig::full();
    config.layers = MiddlewareConfig::parse_layers(layers).expect("valid layer spec");
    config.rate.burst = 1 << 40;
    config.rate.refill_per_sec = u64::MAX / (1 << 22);
    config
}

fn get_req() -> Request {
    Request::new(Command::Get("bench-key".into()))
}

/// Each layer alone, monomorphized over [`Nop`], against bare [`Nop`].
fn layer_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("middleware_overhead/layer_overhead");
    group.measurement_time(Duration::from_secs(1));

    group.bench_function("baseline/nop", |b| {
        let mut svc = Nop;
        b.iter(|| svc.call(get_req()));
    });

    let config = bench_config("full");
    let metrics = Arc::new(PipelineMetrics::new());

    group.bench_function("trace", |b| {
        let layer = TraceLayer::new(Arc::clone(&metrics), 1, config.trace.sample_every);
        let mut svc = layer.wrap_typed(&session(), Nop);
        b.iter(|| svc.call(get_req()));
    });
    group.bench_function("breaker", |b| {
        // Disarmed, as in the default full stack: the cost measured is
        // the pass-through check every request pays.
        let layer = BreakerLayer::new(config.breaker.clone(), Arc::clone(&metrics));
        let mut svc = layer.wrap_typed(&session(), Nop);
        b.iter(|| svc.call(get_req()));
    });
    group.bench_function("deadline", |b| {
        let layer = DeadlineLayer::new(config.deadline.clone(), Arc::clone(&metrics));
        let mut svc = layer.wrap_typed(&session(), Nop);
        b.iter(|| svc.call(get_req()));
    });
    group.bench_function("auth", |b| {
        let layer = AuthLayer::new(&config.auth, Arc::clone(&metrics));
        let mut svc = layer.wrap_typed(&session(), Nop);
        b.iter(|| svc.call(get_req()));
    });
    group.bench_function("rate_limit", |b| {
        let layer = RateLimitLayer::new(config.rate.clone(), Arc::clone(&metrics));
        let mut svc = layer.wrap_typed(&session(), Nop);
        b.iter(|| svc.call(get_req()));
    });
    group.bench_function("shed", |b| {
        // Unarmed/unseated, as in the default full stack: a pure
        // pass-through — the per-request floor of the admission check.
        let layer = ShedLayer::new(config.shed.clone(), Arc::clone(&metrics));
        let mut svc = layer.wrap_typed(&session(), Nop);
        b.iter(|| svc.call(get_req()));
    });
    group.bench_function("ttl", |b| {
        let layer = TtlLayer::new(Arc::clone(&metrics));
        let mut svc = layer.wrap_typed(&session(), Nop);
        b.iter(|| svc.call(get_req()));
    });
    group.finish();
}

/// The boxed onion at increasing depth: overhead per added layer.
fn stack_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("middleware_overhead/stack_scaling");
    group.measurement_time(Duration::from_secs(1));
    for (depth, layers) in [(1, "trace"), (3, "trace,deadline,auth"), (7, "full")] {
        group.bench_function(BenchmarkId::new("dyn", depth), |b| {
            let stack = Stack::build(&bench_config(layers));
            let mut chain = stack.service(&session(), Box::new(Nop));
            b.iter(|| chain.call(get_req()));
        });
    }
    group.finish();
}

/// Full-depth fused vs dyn, singleton and batched.
fn stack_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("middleware_overhead/stack_dispatch");
    group.measurement_time(Duration::from_secs(1));

    group.bench_function(BenchmarkId::new("fused", 1), |b| {
        let stack = Stack::build(&bench_config("full"));
        let mut chain = stack
            .fused_service(&session(), Nop)
            .expect("full stack fuses");
        b.iter(|| chain.call_one(get_req()));
    });
    group.bench_function(BenchmarkId::new("dyn", 1), |b| {
        let stack = Stack::build(&bench_config("full"));
        let mut chain = stack.service(&session(), Box::new(Nop));
        b.iter(|| chain.call(get_req()));
    });

    for burst in [8usize, 32] {
        group.bench_function(BenchmarkId::new("fused-batch", burst), |b| {
            let stack = Stack::build(&bench_config("full"));
            let mut chain = stack
                .fused_service(&session(), Nop)
                .expect("full stack fuses");
            b.iter(|| chain.call_batch((0..burst).map(|_| get_req()).collect()));
        });
        group.bench_function(BenchmarkId::new("dyn-batch", burst), |b| {
            let stack = Stack::build(&bench_config("full"));
            let mut chain = stack.service(&session(), Box::new(Nop));
            b.iter(|| chain.call_batch((0..burst).map(|_| get_req()).collect()));
        });
    }
    group.finish();
}

criterion_group!(benches, layer_overhead, stack_scaling, stack_dispatch);
criterion_main!(benches);
