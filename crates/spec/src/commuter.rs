//! A Commuter-style specification checker (§7).
//!
//! Clements et al.'s *Commuter* tool checks a sequential specification
//! for non-commuting operation pairs — the SIM-commutativity rule says
//! commuting intervals admit conflict-free implementations, and
//! Proposition 2 makes that exact for deterministic objects: a long-lived
//! object is conflict-free implementable iff every pair of operations is
//! strongly labeling.
//!
//! [`commutativity_matrix`] reproduces that analysis for any
//! [`SpecType`]: for every pair of instantiated operations and every
//! explored state, classify the pair as strongly commuting (conflict-free
//! implementable), weakly interacting (responses agree but states
//! diverge, or vice versa) or conflicting. The `commuter_report` harness
//! binary prints the matrix for the whole Table 1 catalogue.

use crate::dtype::{DataType, Op, SpecType};
use crate::graph::IndistGraph;
use std::collections::BTreeMap;

/// Pairwise classification of two operation instances.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PairVerdict {
    /// Both orders agree on every response *and* the final state: the
    /// pair is strongly labeling (Proposition 2's condition).
    StronglyCommutes,
    /// The pair is connected in the indistinguishability graph but some
    /// label is weak (states diverge) or partial.
    WeaklyInteracts,
    /// No edge: the orders are fully distinguishable.
    Conflicts,
}

impl PairVerdict {
    /// One-character cell for matrix rendering.
    pub fn symbol(self) -> char {
        match self {
            PairVerdict::StronglyCommutes => '+',
            PairVerdict::WeaklyInteracts => '~',
            PairVerdict::Conflicts => 'x',
        }
    }
}

/// Classify one pair from one state.
pub fn classify<T: DataType>(dtype: &T, s: &T::State, c: &T::Op, d: &T::Op) -> PairVerdict {
    let g = IndistGraph::build(dtype, &[c.clone(), d.clone()], s);
    if g.bag_is_strongly_labeling() {
        PairVerdict::StronglyCommutes
    } else if g.edge_count() > 0 {
        PairVerdict::WeaklyInteracts
    } else {
        PairVerdict::Conflicts
    }
}

/// The worst verdict for each method-name pair across all instantiations
/// and states (the conservative, Commuter-style summary).
pub fn commutativity_matrix(
    spec: &SpecType,
    domain: &[i64],
    depth: usize,
) -> BTreeMap<(&'static str, &'static str), PairVerdict> {
    let universe = spec.op_universe(domain);
    let states = spec.reachable_states(&universe, depth);
    let mut matrix: BTreeMap<(&'static str, &'static str), PairVerdict> = BTreeMap::new();
    for (i, c) in universe.iter().enumerate() {
        for d in &universe[i..] {
            let key = ordered(c, d);
            for s in &states {
                let v = classify(spec, s, c, d);
                matrix
                    .entry(key)
                    .and_modify(|cur| {
                        if v > *cur {
                            *cur = v;
                        }
                    })
                    .or_insert(v);
            }
        }
    }
    matrix
}

fn ordered(c: &Op, d: &Op) -> (&'static str, &'static str) {
    if c.name <= d.name {
        (c.name, d.name)
    } else {
        (d.name, c.name)
    }
}

/// Render the matrix as an aligned text table.
pub fn render_matrix(
    spec: &SpecType,
    matrix: &BTreeMap<(&'static str, &'static str), PairVerdict>,
) -> String {
    use std::fmt::Write as _;
    let names = spec.op_names();
    let width = names.iter().map(|n| n.len()).max().unwrap_or(4) + 1;
    let mut out = String::new();
    let _ = write!(out, "{:>width$} ", "");
    for n in &names {
        let _ = write!(out, "{n:>width$}");
    }
    out.push('\n');
    for a in &names {
        let _ = write!(out, "{a:>width$} ");
        for b in &names {
            let key = if a <= b { (*a, *b) } else { (*b, *a) };
            let cell = matrix.get(&key).map(|v| v.symbol()).unwrap_or('?');
            let _ = write!(out, "{cell:>width$}");
        }
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "  (+ strongly commutes, ~ weakly interacts, x conflicts)"
    );
    out
}

/// Whether the whole specification is conflict-free implementable
/// (Proposition 2): every pair strongly commutes.
pub fn is_conflict_free(spec: &SpecType, domain: &[i64], depth: usize) -> bool {
    commutativity_matrix(spec, domain, depth)
        .values()
        .all(|&v| v == PairVerdict::StronglyCommutes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{counter_c1, counter_c3, map_m2, op, set_s1, set_s2};
    use crate::value::Value;

    #[test]
    fn classify_basic_pairs() {
        let c1 = counter_c1();
        // Two incs returning the new value conflict.
        assert_eq!(
            classify(&c1, &Value::Int(0), &op("inc", &[]), &op("inc", &[])),
            PairVerdict::Conflicts
        );
        // get vs get strongly commutes.
        assert_eq!(
            classify(&c1, &Value::Int(0), &op("get", &[]), &op("get", &[])),
            PairVerdict::StronglyCommutes
        );
        // Blind incs strongly commute.
        let c3 = counter_c3();
        assert_eq!(
            classify(&c3, &Value::Int(0), &op("inc", &[]), &op("inc", &[])),
            PairVerdict::StronglyCommutes
        );
    }

    #[test]
    fn s1_adds_conflict_s2_adds_commute() {
        let s1 = set_s1();
        let s2 = set_s2();
        let a = op("add", &[1]);
        assert_eq!(
            classify(&s1, &Value::empty_set(), &a, &a),
            PairVerdict::Conflicts
        );
        assert_eq!(
            classify(&s2, &Value::empty_set(), &a, &a),
            PairVerdict::StronglyCommutes
        );
    }

    #[test]
    fn matrix_is_conservative_across_states() {
        // contains(1) and add(1) commute from {1} (already present) but
        // not from {} — the matrix must keep the worst verdict.
        let s2 = set_s2();
        let m = commutativity_matrix(&s2, &[1], 2);
        let v = m[&("add", "contains")];
        assert_ne!(v, PairVerdict::StronglyCommutes);
    }

    #[test]
    fn m2_same_key_puts_weakly_interact_distinct_keys_commute() {
        let m2 = map_m2();
        let same = classify(
            &m2,
            &Value::empty_map(),
            &op("put", &[0, 1]),
            &op("put", &[0, 2]),
        );
        // Blind puts to one key: responses agree (both ⊥) but final
        // states differ — connected yet weak.
        assert_eq!(same, PairVerdict::WeaklyInteracts);
        let distinct = classify(
            &m2,
            &Value::empty_map(),
            &op("put", &[0, 1]),
            &op("put", &[1, 2]),
        );
        assert_eq!(distinct, PairVerdict::StronglyCommutes);
    }

    #[test]
    fn render_mentions_all_methods() {
        let s2 = set_s2();
        let m = commutativity_matrix(&s2, &[1, 2], 1);
        let txt = render_matrix(&s2, &m);
        for name in ["add", "remove", "contains"] {
            assert!(txt.contains(name), "missing {name} in\n{txt}");
        }
    }

    #[test]
    fn nothing_in_table1_is_fully_conflict_free_under_all_access() {
        // With ALL access, even the blind types have same-item
        // interactions; conflict freedom requires the access restriction
        // (partitioned keys), which is the segmentation's whole point.
        for spec in crate::types::table1() {
            assert!(
                !is_conflict_free(&spec, &[0, 1], 1),
                "{} claimed conflict-free",
                crate::dtype::DataType::name(&spec)
            );
        }
    }
}
