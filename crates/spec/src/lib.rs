//! # dego-spec — formal foundations of adjusted objects
//!
//! This crate is an executable rendition of §§2–4 and Appendices A–B of
//! *"Adjusted Objects: An Efficient and Principled Approach to Scalable
//! Programming"* (Kane & Sutra, Middleware 2025).
//!
//! It provides:
//!
//! * a model of **sequential data types** as deterministic automata with
//!   Hoare-style pre/postconditions ([`DataType`], [`SpecType`], the
//!   Table 1 constructors in [`types`]);
//! * **access-permission maps** restricting which thread may invoke which
//!   operation ([`perm`]);
//! * the **indistinguishability graph** of §3.2 ([`graph`]), together with
//!   labeling / strong-labeling queries, indistinguishability classes and
//!   the `D(k, l)` hierarchy;
//! * **mover analysis** (left-/right-movers, §3.3) and the premises of
//!   Propositions 1–4 ([`movers`]);
//! * **consensus-number estimation** via Theorem 1 and the permissive-type
//!   characterization of Corollary 1 ([`consensus`]);
//! * a **Commuter-style pairwise commutativity checker** ([`commuter`],
//!   the §7 related-work tool, i.e. Proposition 2's sufficiency test);
//! * **Construction 1 executed** ([`construction`]): Theorem 1's weak
//!   consensus protocol driven over every schedule of a simulated
//!   readable object;
//! * **Construction 3 executed** ([`construction3`]): Proposition 4's
//!   invisible right-mover implementation, certified linearizable on
//!   every schedule;
//! * the **adjustment relation** of Definition 1 — narrow subtyping plus
//!   permission restriction — and the Proposition 6 density check
//!   ([`adjust`]), including the full adjustment DAG of Figure 3
//!   ([`figure3`]);
//! * a **linearizability checker** ([`lin`]) used by the rest of the
//!   workspace to validate the concurrent implementations against their
//!   sequential specifications.
//!
//! ## Quick example
//!
//! Build the indistinguishability graph of a counter under three unit
//! increments (the right-hand graph of Figure 2) and verify that it is
//! connected, i.e. that the increment-only counter is `D(3, 1)`:
//!
//! ```
//! use dego_spec::graph::IndistGraph;
//! use dego_spec::types::{counter_c1, op};
//! use dego_spec::value::Value;
//!
//! let counter = counter_c1();
//! let bag = vec![op("inc", &[]), op("inc", &[]), op("inc", &[])];
//! let g = IndistGraph::build(&counter, &bag, &Value::Int(0));
//! assert_eq!(g.class_count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adjust;
pub mod commuter;
pub mod consensus;
pub mod construction;
pub mod construction3;
pub mod dtype;
pub mod figure3;
pub mod graph;
pub mod lin;
pub mod movers;
pub mod perm;
pub mod types;
pub mod value;

pub use adjust::{adjusts, narrow_subtype, AdjustError, SharedObject};
pub use dtype::{DataType, SpecType};
pub use graph::IndistGraph;
pub use perm::{AccessMode, PermissionMap};
pub use value::Value;
