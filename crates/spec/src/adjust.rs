//! The adjustment relation (§4, Definition 1) and its consequences.
//!
//! `O` **adjusts** `O'` when `O'.T` is a *narrow subtype* of `O.T` and
//! `O.m ⊆ O'.m`. Intuitively `O'` is the vanilla, wide-interface object
//! and `O` the specialized one: every behaviour the adjusted object's
//! specification constrains is honoured by the vanilla object, and the
//! adjusted object's permission map only restricts access further.
//!
//! The narrow-subtype check follows Liskov & Wing (via the executable
//! [`SpecType`] encoding): for every operation and every explored state,
//!
//! * **precondition rule** — wherever the supertype (adjusted spec)
//!   allows a call, the subtype (vanilla spec) allows it too;
//! * **postcondition rule** — wherever the supertype *constrains* the
//!   post-state (resp. the response), the subtype produces exactly that
//!   post-state (resp. response). Voided components (`None` in
//!   [`OpSig`](crate::dtype::OpSig)) constrain nothing;
//! * **narrowness** — both types define exactly the same operation names.
//!
//! Proposition 6 — adjusting densifies the graphs — is checked directly by
//! [`prop6_edge_inclusion`].

use crate::dtype::{DataType, Op, SpecType};
use crate::graph::IndistGraph;
use crate::perm::PermissionMap;
use crate::value::Value;
use std::fmt;

/// A shared object: a sequential specification plus a permission map.
#[derive(Clone, Debug)]
pub struct SharedObject {
    /// The data type `O.T`.
    pub spec: SpecType,
    /// The access-permission map `O.m`.
    pub perm: PermissionMap,
}

impl SharedObject {
    /// Bundle a spec and a permission map.
    pub fn new(spec: SpecType, perm: PermissionMap) -> Self {
        SharedObject { spec, perm }
    }

    /// Display name `(T, mode)` as in Figure 3.
    pub fn label(&self) -> String {
        format!("({}, {})", self.spec.name(), self.perm.mode())
    }
}

/// Why an adjustment check failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdjustError {
    /// The operation sets differ (violates narrowness).
    OpSetMismatch {
        /// Ops only in the subtype.
        only_in_sub: Vec<&'static str>,
        /// Ops only in the supertype.
        only_in_sup: Vec<&'static str>,
    },
    /// The subtype rejects a call the supertype allows.
    PreconditionNarrowed {
        /// Offending operation.
        op: Op,
        /// State witnessing the violation.
        state: Value,
    },
    /// The subtype's post-state disagrees with a constrained effect.
    EffectMismatch {
        /// Offending operation.
        op: Op,
        /// State witnessing the violation.
        state: Value,
    },
    /// The subtype's response disagrees with a constrained return.
    ReturnMismatch {
        /// Offending operation.
        op: Op,
        /// State witnessing the violation.
        state: Value,
    },
    /// The candidate's permission map is not included in the vanilla one.
    PermissionNotIncluded,
}

impl fmt::Display for AdjustError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdjustError::OpSetMismatch {
                only_in_sub,
                only_in_sup,
            } => write!(
                f,
                "operation sets differ (sub-only: {only_in_sub:?}, sup-only: {only_in_sup:?})"
            ),
            AdjustError::PreconditionNarrowed { op, state } => {
                write!(f, "subtype rejects {op:?} in state {state:?}")
            }
            AdjustError::EffectMismatch { op, state } => {
                write!(
                    f,
                    "post-state of {op:?} from {state:?} violates the supertype"
                )
            }
            AdjustError::ReturnMismatch { op, state } => {
                write!(
                    f,
                    "response of {op:?} from {state:?} violates the supertype"
                )
            }
            AdjustError::PermissionNotIncluded => {
                write!(f, "permission map is not included in the vanilla object's")
            }
        }
    }
}

impl std::error::Error for AdjustError {}

/// Check that `sub` is a **narrow subtype** of `sup` over the states
/// reachable (to `depth`) under `domain`-instantiated operations.
///
/// `sub` is the vanilla (wide, fully-specified) type; `sup` the adjusted
/// one whose pre/postconditions may be strengthened/voided.
///
/// # Errors
///
/// Returns the first [`AdjustError`] found; `Ok(())` means every explored
/// state satisfies all three subtype rules.
pub fn narrow_subtype(
    sub: &SpecType,
    sup: &SpecType,
    domain: &[i64],
    depth: usize,
) -> Result<(), AdjustError> {
    // Narrowness: identical operation name sets.
    let mut only_in_sub: Vec<&'static str> = sub
        .op_names()
        .into_iter()
        .filter(|n| sup.sig(n).is_none())
        .collect();
    let mut only_in_sup: Vec<&'static str> = sup
        .op_names()
        .into_iter()
        .filter(|n| sub.sig(n).is_none())
        .collect();
    if !only_in_sub.is_empty() || !only_in_sup.is_empty() {
        only_in_sub.sort_unstable();
        only_in_sup.sort_unstable();
        return Err(AdjustError::OpSetMismatch {
            only_in_sub,
            only_in_sup,
        });
    }

    // Explore the union of both types' reachable states so strengthened
    // preconditions cannot hide states from the check.
    let universe = sub.op_universe(domain);
    let mut states = sub.reachable_states(&universe, depth);
    states.extend(sup.reachable_states(&universe, depth));
    states.sort();
    states.dedup();

    for op in &universe {
        let sup_sig = sup.sig(op.name).expect("checked narrowness");
        for s in &states {
            if !(sup_sig.pre)(s, &op.args) {
                continue; // supertype does not allow the call here
            }
            let sub_sig = sub.sig(op.name).expect("checked narrowness");
            if !(sub_sig.pre)(s, &op.args) {
                return Err(AdjustError::PreconditionNarrowed {
                    op: op.clone(),
                    state: s.clone(),
                });
            }
            let (sub_state, sub_ret) = sub.apply(s, op);
            if let Some(effect) = sup_sig.effect {
                if sub_state != effect(s, &op.args) {
                    return Err(AdjustError::EffectMismatch {
                        op: op.clone(),
                        state: s.clone(),
                    });
                }
            }
            if let Some(ret) = sup_sig.ret {
                if sub_ret != ret(s, &op.args) {
                    return Err(AdjustError::ReturnMismatch {
                        op: op.clone(),
                        state: s.clone(),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Definition 1: does `adjusted` adjust `vanilla`?
///
/// Checks that `vanilla.spec` is a narrow subtype of `adjusted.spec` and
/// that `adjusted.perm ⊆ vanilla.perm` over the instantiated universe.
///
/// # Errors
///
/// Returns the witnessing [`AdjustError`] when the relation does not hold.
pub fn adjusts(
    adjusted: &SharedObject,
    vanilla: &SharedObject,
    domain: &[i64],
    depth: usize,
) -> Result<(), AdjustError> {
    narrow_subtype(&vanilla.spec, &adjusted.spec, domain, depth)?;
    let universe = vanilla.spec.op_universe(domain);
    if !adjusted.perm.included_in(&vanilla.perm, &universe) {
        return Err(AdjustError::PermissionNotIncluded);
    }
    Ok(())
}

/// Proposition 6: if `O` adjusts `O'` then for every common state and
/// compliant bag, `G_{O'.T}(B, s) ⊆ G_{O.T}(B, s)` — every edge of the
/// vanilla graph appears (with at least the same labels) in the adjusted
/// graph. Returns `true` when the inclusion holds for the given bag and
/// state.
///
/// Reproduction note: for *postcondition*-voiding adjustments the
/// inclusion holds unconditionally (voiding only erases distinctions).
/// For *precondition*-strengthening adjustments (e.g. `R2`'s write-once
/// `set`), the executable "fails silently" semantics makes runs of the
/// two types diverge on bags that violate the strengthened precondition,
/// so the inclusion is only meaningful on bags within the strengthened
/// domain — the same proviso under which Liskov substitution applies in
/// the paper's proof.
pub fn prop6_edge_inclusion(
    adjusted: &SpecType,
    vanilla: &SpecType,
    bag: &[Op],
    state: &Value,
) -> bool {
    let ga = IndistGraph::build(adjusted, bag, state);
    let gv = IndistGraph::build(vanilla, bag, state);
    gv.edges()
        .iter()
        .all(|ev| ev.labels.iter().all(|&c| ga.labels_edge(c, ev.a, ev.b)))
}

/// Density gain from adjusting: `(adjusted density) - (vanilla density)`
/// for one bag/state. Non-negative whenever Proposition 6 applies.
pub fn density_gain(adjusted: &SpecType, vanilla: &SpecType, bag: &[Op], state: &Value) -> f64 {
    let ga = IndistGraph::build(adjusted, bag, state);
    let gv = IndistGraph::build(vanilla, bag, state);
    ga.density() - gv.density()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perm::AccessMode;
    use crate::types::{
        counter_c1, counter_c2, counter_c3, map_m1, map_m2, op, reference_r1, reference_r2, set_s1,
        set_s2, set_s3,
    };

    const D: &[i64] = &[0, 1];

    #[test]
    fn r1_is_narrow_subtype_of_r2() {
        // R2 strengthens set's precondition: vanilla R1 is a subtype.
        assert_eq!(
            narrow_subtype(&reference_r1(), &reference_r2(), D, 2),
            Ok(())
        );
        // The converse fails: R2 rejects a second set that R1 allows…
        // (R1's pre is weaker, so checking R2 as the *sub* must fail).
        let err = narrow_subtype(&reference_r2(), &reference_r1(), D, 2).unwrap_err();
        assert!(matches!(
            err,
            AdjustError::EffectMismatch { .. } | AdjustError::PreconditionNarrowed { .. }
        ));
    }

    #[test]
    fn s1_subtypes_s2_subtypes_s3() {
        assert_eq!(narrow_subtype(&set_s1(), &set_s2(), D, 2), Ok(()));
        assert_eq!(narrow_subtype(&set_s2(), &set_s3(), D, 2), Ok(()));
        assert_eq!(narrow_subtype(&set_s1(), &set_s3(), D, 2), Ok(()));
        // Not the other way: S2 does not honour S1's return spec.
        assert!(matches!(
            narrow_subtype(&set_s2(), &set_s1(), D, 2),
            Err(AdjustError::ReturnMismatch { .. })
        ));
    }

    #[test]
    fn c1_subtypes_c2_subtypes_c3() {
        assert_eq!(narrow_subtype(&counter_c1(), &counter_c2(), D, 2), Ok(()));
        assert_eq!(narrow_subtype(&counter_c2(), &counter_c3(), D, 2), Ok(()));
        // C2 deleted reset (pre=false) so checking C2 under C1 must fail
        // on reset's effect…
        // …or on rmw's now-unhonoured effect/return, whichever the state
        // sweep hits first.
        let err = narrow_subtype(&counter_c2(), &counter_c1(), D, 2).unwrap_err();
        assert!(matches!(
            err,
            AdjustError::PreconditionNarrowed { .. }
                | AdjustError::EffectMismatch { .. }
                | AdjustError::ReturnMismatch { .. }
        ));
    }

    #[test]
    fn m1_subtypes_m2() {
        assert_eq!(narrow_subtype(&map_m1(), &map_m2(), D, 2), Ok(()));
        assert!(narrow_subtype(&map_m2(), &map_m1(), D, 2).is_err());
    }

    #[test]
    fn op_set_mismatch_detected() {
        let err = narrow_subtype(&set_s1(), &counter_c1(), D, 1).unwrap_err();
        assert!(matches!(err, AdjustError::OpSetMismatch { .. }));
        let msg = err.to_string();
        assert!(msg.contains("operation sets differ"));
    }

    fn obj(spec: SpecType, mode: AccessMode) -> SharedObject {
        let (writes, reads): (Vec<&'static str>, Vec<&'static str>) = match spec.name() {
            n if n.starts_with('C') => (vec!["inc", "rmw", "reset"], vec!["get"]),
            n if n.starts_with('S') => (vec!["add", "remove"], vec!["contains"]),
            n if n.starts_with('R') => (vec!["set"], vec!["get"]),
            n if n.starts_with('M') => (vec!["put", "remove"], vec!["contains"]),
            _ => (vec![], vec![]),
        };
        let perm = PermissionMap::new(3, mode, &writes, &reads);
        SharedObject::new(spec, perm)
    }

    #[test]
    fn definition1_examples_from_figure3() {
        // (R2, ALL) adjusts (R1, ALL): subtype via precondition.
        assert_eq!(
            adjusts(
                &obj(reference_r2(), AccessMode::All),
                &obj(reference_r1(), AccessMode::All),
                D,
                2
            ),
            Ok(())
        );
        // (R1, SWMR) adjusts (R1, ALL): permission restriction only.
        assert_eq!(
            adjusts(
                &obj(reference_r1(), AccessMode::Swmr),
                &obj(reference_r1(), AccessMode::All),
                D,
                2
            ),
            Ok(())
        );
        // But (R1, ALL) does not adjust (R1, SWMR): permissions widen.
        assert_eq!(
            adjusts(
                &obj(reference_r1(), AccessMode::All),
                &obj(reference_r1(), AccessMode::Swmr),
                D,
                2
            ),
            Err(AdjustError::PermissionNotIncluded)
        );
    }

    #[test]
    fn prop6_holds_for_catalogue_pairs() {
        let cases: Vec<(SpecType, SpecType, Vec<Op>, Value)> = vec![
            (
                set_s2(),
                set_s1(),
                vec![op("add", &[1]), op("add", &[1]), op("contains", &[1])],
                Value::empty_set(),
            ),
            (
                counter_c3(),
                counter_c1(),
                vec![op("inc", &[]), op("inc", &[]), op("get", &[])],
                Value::Int(0),
            ),
            (
                // Single write: within R2's strengthened domain.
                reference_r2(),
                reference_r1(),
                vec![op("set", &[1]), op("get", &[]), op("get", &[])],
                Value::Bottom,
            ),
            (
                map_m2(),
                map_m1(),
                vec![op("put", &[0, 1]), op("put", &[0, 0]), op("contains", &[0])],
                Value::empty_map(),
            ),
        ];
        for (adj, van, bag, s) in cases {
            assert!(
                prop6_edge_inclusion(&adj, &van, &bag, &s),
                "Prop 6 fails for {} vs {}",
                adj.name(),
                van.name()
            );
            assert!(
                density_gain(&adj, &van, &bag, &s) >= -1e-12,
                "density must not decrease for {}",
                adj.name()
            );
        }
    }

    #[test]
    fn density_gain_is_strictly_positive_for_blind_sets() {
        let bag = vec![op("add", &[1]), op("add", &[1])];
        let gain = density_gain(&set_s2(), &set_s1(), &bag, &Value::empty_set());
        assert!(
            gain > 0.0,
            "voiding add's return must add edges, gain={gain}"
        );
    }

    #[test]
    fn shared_object_label_format() {
        let o = obj(counter_c3(), AccessMode::Cwsr);
        assert_eq!(o.label(), "(C3, CWSR)");
    }
}
