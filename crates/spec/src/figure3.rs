//! The adjustment DAG of Figure 3.
//!
//! Nodes are shared objects `(T, mode)`; edges are elementary adjustments:
//!
//! * `p` — stronger precondition (e.g. `R1 → R2`);
//! * `r` — weaker postcondition / voided return (e.g. `S1 → S2`);
//! * `d` — deleted operation (e.g. `C1 → C2`'s `reset`);
//! * `c` — commuting-writes access restriction (`ALL → CWMR`);
//! * `m` — asymmetric access restriction (`ALL → SWMR`, `CWMR → CWSR`, …).
//!
//! [`figure3_dag`] reconstructs the figure; [`verify_dag`] replays every
//! edge through the Definition 1 checker, which is how the `fig3`
//! harness binary regenerates (and certifies) the figure.

use crate::adjust::{adjusts, AdjustError, SharedObject};
use crate::perm::{AccessMode, PermissionMap};
use crate::types;

/// The kind of elementary adjustment an edge applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdjustKind {
    /// Stronger precondition (`p`).
    Precondition,
    /// Weaker postcondition / voided return (`r`).
    Return,
    /// Operation deletion (`d`).
    Deletion,
    /// Commuting-writes restriction (`c`).
    Commuting,
    /// Asymmetric-access restriction (`m`).
    Asymmetric,
}

impl AdjustKind {
    /// The one-letter arrow label used in Figure 3.
    pub fn letter(self) -> char {
        match self {
            AdjustKind::Precondition => 'p',
            AdjustKind::Return => 'r',
            AdjustKind::Deletion => 'd',
            AdjustKind::Commuting => 'c',
            AdjustKind::Asymmetric => 'm',
        }
    }
}

/// An edge of the adjustment DAG: `from --kind--> to`, meaning `to`
/// adjusts `from`.
#[derive(Clone, Debug)]
pub struct AdjustEdge {
    /// Index of the vanilla end.
    pub from: usize,
    /// Index of the adjusted end.
    pub to: usize,
    /// Elementary adjustment applied.
    pub kind: AdjustKind,
}

/// The adjustment DAG: objects plus directed edges.
#[derive(Debug)]
pub struct AdjustDag {
    /// The shared objects (nodes).
    pub nodes: Vec<SharedObject>,
    /// The adjustment edges.
    pub edges: Vec<AdjustEdge>,
}

const N_THREADS: usize = 3;

fn counter_obj(spec: crate::dtype::SpecType, mode: AccessMode) -> SharedObject {
    SharedObject::new(
        spec,
        PermissionMap::new(N_THREADS, mode, &["inc", "rmw", "reset"], &["get"]),
    )
}

fn set_obj(spec: crate::dtype::SpecType, mode: AccessMode) -> SharedObject {
    SharedObject::new(
        spec,
        PermissionMap::new(N_THREADS, mode, &["add", "remove"], &["contains"]),
    )
}

fn ref_obj(spec: crate::dtype::SpecType, mode: AccessMode) -> SharedObject {
    SharedObject::new(
        spec,
        PermissionMap::new(N_THREADS, mode, &["set"], &["get"]),
    )
}

/// Build the DAG of Figure 3.
///
/// Three families:
///
/// * references — `(R1,ALL) →p (R2,ALL) →m (R2,SWMR)` and
///   `(R1,ALL) →m (R1,SWMR) →p (R2,SWMR)`;
/// * sets — `(S1,ALL) →r (S2,ALL) →d (S3,ALL) →c (S3,CWMR) →m (S3,CWSR)`;
/// * counters — `(C1,ALL) →d (C2,ALL) →r (C3,ALL) →m (C3,CWSR)`.
pub fn figure3_dag() -> AdjustDag {
    use AccessMode::*;
    use AdjustKind::*;
    let nodes = vec![
        ref_obj(types::reference_r1(), All),    // 0
        ref_obj(types::reference_r2(), All),    // 1
        ref_obj(types::reference_r2(), Swmr),   // 2
        ref_obj(types::reference_r1(), Swmr),   // 3
        set_obj(types::set_s1(), All),          // 4
        set_obj(types::set_s2(), All),          // 5
        set_obj(types::set_s3(), All),          // 6
        set_obj(types::set_s3(), Cwmr),         // 7
        set_obj(types::set_s3(), Cwsr),         // 8
        counter_obj(types::counter_c1(), All),  // 9
        counter_obj(types::counter_c2(), All),  // 10
        counter_obj(types::counter_c3(), All),  // 11
        counter_obj(types::counter_c3(), Cwsr), // 12
    ];
    let edges = vec![
        AdjustEdge {
            from: 0,
            to: 1,
            kind: Precondition,
        },
        AdjustEdge {
            from: 1,
            to: 2,
            kind: Asymmetric,
        },
        AdjustEdge {
            from: 0,
            to: 3,
            kind: Asymmetric,
        },
        AdjustEdge {
            from: 3,
            to: 2,
            kind: Precondition,
        },
        AdjustEdge {
            from: 4,
            to: 5,
            kind: Return,
        },
        AdjustEdge {
            from: 5,
            to: 6,
            kind: Deletion,
        },
        AdjustEdge {
            from: 6,
            to: 7,
            kind: Commuting,
        },
        AdjustEdge {
            from: 7,
            to: 8,
            kind: Asymmetric,
        },
        AdjustEdge {
            from: 9,
            to: 10,
            kind: Deletion,
        },
        AdjustEdge {
            from: 10,
            to: 11,
            kind: Return,
        },
        AdjustEdge {
            from: 11,
            to: 12,
            kind: Asymmetric,
        },
    ];
    AdjustDag { nodes, edges }
}

/// A verified edge report.
#[derive(Debug)]
pub struct EdgeReport {
    /// Rendered `(T, mode) --k--> (T', mode')`.
    pub description: String,
    /// Result of the Definition 1 check.
    pub result: Result<(), AdjustError>,
}

/// Replay every edge through [`adjusts`], returning one report per edge.
pub fn verify_dag(dag: &AdjustDag) -> Vec<EdgeReport> {
    dag.edges
        .iter()
        .map(|e| {
            let from = &dag.nodes[e.from];
            let to = &dag.nodes[e.to];
            let description = format!("{} --{}--> {}", from.label(), e.kind.letter(), to.label());
            let result = adjusts(to, from, &[0, 1], 2);
            EdgeReport {
                description,
                result,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dag_shape_matches_figure3() {
        let dag = figure3_dag();
        assert_eq!(dag.nodes.len(), 13);
        assert_eq!(dag.edges.len(), 11);
        // All five elementary adjustments appear.
        for k in [
            AdjustKind::Precondition,
            AdjustKind::Return,
            AdjustKind::Deletion,
            AdjustKind::Commuting,
            AdjustKind::Asymmetric,
        ] {
            assert!(dag.edges.iter().any(|e| e.kind == k), "missing {k:?}");
        }
    }

    #[test]
    fn every_edge_satisfies_definition1() {
        let dag = figure3_dag();
        for report in verify_dag(&dag) {
            assert!(
                report.result.is_ok(),
                "{} failed: {:?}",
                report.description,
                report.result
            );
        }
    }

    #[test]
    fn dag_is_acyclic() {
        let dag = figure3_dag();
        // Kahn's algorithm.
        let n = dag.nodes.len();
        let mut indeg = vec![0usize; n];
        for e in &dag.edges {
            indeg[e.to] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(u) = queue.pop() {
            seen += 1;
            for e in dag.edges.iter().filter(|e| e.from == u) {
                indeg[e.to] -= 1;
                if indeg[e.to] == 0 {
                    queue.push(e.to);
                }
            }
        }
        assert_eq!(seen, n, "adjustment graph must be acyclic (§4.2)");
    }

    #[test]
    fn letters_match_figure() {
        assert_eq!(AdjustKind::Precondition.letter(), 'p');
        assert_eq!(AdjustKind::Return.letter(), 'r');
        assert_eq!(AdjustKind::Deletion.letter(), 'd');
        assert_eq!(AdjustKind::Commuting.letter(), 'c');
        assert_eq!(AdjustKind::Asymmetric.letter(), 'm');
    }
}
