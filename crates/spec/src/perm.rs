//! Access-permission maps (§2, §4.2).
//!
//! Each shared object `O` carries a permission map `O.m` describing which
//! operations each thread may invoke. The paper's named modes are:
//!
//! * `ALL` — every thread may call every operation;
//! * `SWMR` — a single writer, every other thread reads;
//! * `MWSR` — many writers, a single reader;
//! * `CWMR` — writers issue only *commuting* writes, everyone reads;
//! * `CWSR` — commuting writers, single reader.
//!
//! In this executable model, "commuting writes" is expressed by
//! partitioning write arguments across threads: thread `p` may only issue
//! a write whose first argument hashes to `p` (distinct threads touch
//! distinct items, so their writes commute — the same discipline the
//! benchmarks in §6.2 use).

use crate::dtype::Op;
use std::collections::BTreeSet;
use std::fmt;

/// The named access modes of Figure 3.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum AccessMode {
    /// Full access for every thread.
    All,
    /// Single writer, multiple readers.
    Swmr,
    /// Multiple writers, single reader.
    Mwsr,
    /// Commuting writers, multiple readers.
    Cwmr,
    /// Commuting writers, single reader.
    Cwsr,
}

impl fmt::Display for AccessMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessMode::All => "ALL",
            AccessMode::Swmr => "SWMR",
            AccessMode::Mwsr => "MWSR",
            AccessMode::Cwmr => "CWMR",
            AccessMode::Cwsr => "CWSR",
        };
        f.write_str(s)
    }
}

/// Which role a thread plays for an asymmetric mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Role {
    Writer,
    Reader,
    Both,
}

/// An access-permission map `O.m` for `n` threads.
///
/// The map distinguishes *write* operations (listed in `write_ops`) from
/// *read* operations (everything else) and enforces the chosen
/// [`AccessMode`]. For the commuting modes it additionally pins each
/// write's first argument to the issuing thread's partition.
#[derive(Clone, Debug)]
pub struct PermissionMap {
    n_threads: usize,
    mode: AccessMode,
    write_ops: BTreeSet<&'static str>,
    read_ops: BTreeSet<&'static str>,
}

impl PermissionMap {
    /// Build a permission map.
    ///
    /// `write_ops` are the mutating operations of the type; `read_ops` the
    /// rest. For `SWMR`/`CWSR`-style modes, thread 0 is the distinguished
    /// single writer (resp. single reader).
    ///
    /// # Panics
    ///
    /// Panics if `n_threads == 0`.
    pub fn new(
        n_threads: usize,
        mode: AccessMode,
        write_ops: &[&'static str],
        read_ops: &[&'static str],
    ) -> Self {
        assert!(n_threads > 0, "permission map needs at least one thread");
        PermissionMap {
            n_threads,
            mode,
            write_ops: write_ops.iter().copied().collect(),
            read_ops: read_ops.iter().copied().collect(),
        }
    }

    /// Number of threads the map covers.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// The access mode.
    pub fn mode(&self) -> AccessMode {
        self.mode
    }

    /// The declared write operations.
    pub fn write_ops(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.write_ops.iter().copied()
    }

    fn role(&self, thread: usize) -> Role {
        match self.mode {
            AccessMode::All | AccessMode::Cwmr => Role::Both,
            AccessMode::Swmr => {
                if thread == 0 {
                    Role::Writer
                } else {
                    Role::Reader
                }
            }
            AccessMode::Mwsr => {
                if thread == 0 {
                    Role::Reader
                } else {
                    Role::Writer
                }
            }
            AccessMode::Cwsr => {
                if thread == 0 {
                    Role::Both
                } else {
                    Role::Writer
                }
            }
        }
    }

    /// Whether `thread` may invoke `op` under this map.
    ///
    /// For the commuting modes (`CWMR`, `CWSR`), a write is allowed only if
    /// its first argument falls in the thread's partition
    /// (`arg % n_threads == thread`), or if it takes no argument (blind
    /// self-commuting updates such as `inc`).
    pub fn allows(&self, thread: usize, op: &Op) -> bool {
        if thread >= self.n_threads {
            return false;
        }
        let is_write = self.write_ops.contains(op.name);
        let is_read = self.read_ops.contains(op.name);
        if !is_write && !is_read {
            return false;
        }
        let role_ok = match (self.role(thread), is_write) {
            (Role::Both, _) => true,
            (Role::Writer, w) => w,
            (Role::Reader, w) => !w,
        };
        if !role_ok {
            return false;
        }
        if is_write && matches!(self.mode, AccessMode::Cwmr | AccessMode::Cwsr) {
            match op.args.first() {
                Some(a) => (a.rem_euclid(self.n_threads as i64)) as usize == thread,
                None => true,
            }
        } else {
            true
        }
    }

    /// Whether a bag complies with this map: instance `i` (thread `i`'s
    /// operation) must be allowed for thread `i`.
    pub fn complies(&self, bag: &[Op]) -> bool {
        bag.len() <= self.n_threads && bag.iter().enumerate().all(|(i, op)| self.allows(i, op))
    }

    /// Permission inclusion `O.m ⊆ O'.m` (Definition 1): everything a
    /// thread may do under `self` is also allowed under `other`, checked
    /// over the given operation universe.
    pub fn included_in(&self, other: &PermissionMap, universe: &[Op]) -> bool {
        if self.n_threads != other.n_threads {
            return false;
        }
        (0..self.n_threads).all(|t| {
            universe
                .iter()
                .all(|op| !self.allows(t, op) || other.allows(t, op))
        })
    }

    /// Enumerate all compliant bags of exactly `k` operations drawn from
    /// `universe` (thread `i` gets the `i`-th element). Used by the bounded
    /// analyses; `k` must not exceed `n_threads`.
    pub fn compliant_bags(&self, universe: &[Op], k: usize) -> Vec<Vec<Op>> {
        assert!(k <= self.n_threads, "bag larger than the thread count");
        let mut out = Vec::new();
        let mut current: Vec<Op> = Vec::with_capacity(k);
        self.rec_bags(universe, k, &mut current, &mut out);
        out
    }

    fn rec_bags(&self, universe: &[Op], k: usize, cur: &mut Vec<Op>, out: &mut Vec<Vec<Op>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        let t = cur.len();
        for op in universe {
            if self.allows(t, op) {
                cur.push(op.clone());
                self.rec_bags(universe, k, cur, out);
                cur.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::op;

    fn counter_perm(mode: AccessMode, n: usize) -> PermissionMap {
        PermissionMap::new(n, mode, &["inc", "rmw", "reset"], &["get"])
    }

    #[test]
    fn all_mode_allows_everything_in_range() {
        let p = counter_perm(AccessMode::All, 3);
        assert!(p.allows(0, &op("inc", &[])));
        assert!(p.allows(2, &op("get", &[])));
        assert!(!p.allows(3, &op("get", &[]))); // out of range
        assert!(!p.allows(0, &op("unknown", &[])));
    }

    #[test]
    fn swmr_pins_writes_to_thread_zero() {
        let p = counter_perm(AccessMode::Swmr, 3);
        assert!(p.allows(0, &op("inc", &[])));
        assert!(!p.allows(0, &op("get", &[])));
        assert!(!p.allows(1, &op("inc", &[])));
        assert!(p.allows(1, &op("get", &[])));
    }

    #[test]
    fn mwsr_pins_reads_to_thread_zero() {
        let p = counter_perm(AccessMode::Mwsr, 3);
        assert!(p.allows(0, &op("get", &[])));
        assert!(!p.allows(0, &op("inc", &[])));
        assert!(p.allows(1, &op("inc", &[])));
        assert!(!p.allows(1, &op("get", &[])));
    }

    #[test]
    fn cwmr_partitions_write_arguments() {
        let p = PermissionMap::new(2, AccessMode::Cwmr, &["add", "remove"], &["contains"]);
        assert!(p.allows(0, &op("add", &[2])));
        assert!(!p.allows(0, &op("add", &[3])));
        assert!(p.allows(1, &op("add", &[3])));
        // Reads are unrestricted.
        assert!(p.allows(0, &op("contains", &[3])));
        assert!(p.allows(1, &op("contains", &[2])));
    }

    #[test]
    fn cwsr_single_reader_is_thread_zero() {
        let p = counter_perm(AccessMode::Cwsr, 3);
        assert!(p.allows(0, &op("get", &[])));
        assert!(!p.allows(1, &op("get", &[])));
        assert!(p.allows(1, &op("inc", &[])));
        assert!(p.allows(2, &op("inc", &[])));
    }

    #[test]
    fn complies_checks_positionally() {
        let p = counter_perm(AccessMode::Swmr, 2);
        assert!(p.complies(&[op("inc", &[]), op("get", &[])]));
        assert!(!p.complies(&[op("get", &[]), op("inc", &[])]));
        assert!(!p.complies(&[op("inc", &[]), op("get", &[]), op("get", &[])]));
    }

    #[test]
    fn inclusion_all_contains_swmr() {
        let all = counter_perm(AccessMode::All, 3);
        let swmr = counter_perm(AccessMode::Swmr, 3);
        let universe = [op("inc", &[]), op("get", &[]), op("reset", &[])];
        assert!(swmr.included_in(&all, &universe));
        assert!(!all.included_in(&swmr, &universe));
    }

    #[test]
    fn compliant_bag_enumeration() {
        let p = counter_perm(AccessMode::Swmr, 2);
        let universe = [op("inc", &[]), op("get", &[])];
        let bags = p.compliant_bags(&universe, 2);
        // thread 0 must write, thread 1 must read => exactly one bag
        assert_eq!(bags, vec![vec![op("inc", &[]), op("get", &[])]]);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = PermissionMap::new(0, AccessMode::All, &[], &[]);
    }
}
