//! Sequential data types as deterministic automata (Appendix A).
//!
//! A data type is an automaton `A = (S, s0, C, V, τ)`. All operations are
//! total and deterministic: applying an operation whose Hoare precondition
//! fails leaves the state unchanged and returns `⊥` (the paper's "fails
//! silently" convention).
//!
//! Two layers are provided:
//!
//! * [`DataType`], a generic trait for user-defined types — the
//!   indistinguishability-graph machinery and the linearizability checker
//!   are generic over it;
//! * [`SpecType`], a *dynamic* data type assembled from Hoare-style
//!   operation signatures ([`OpSig`]) over the [`crate::value::Value`]
//!   universe. All Table 1 objects are `SpecType` values (see
//!   [`types`](crate::types)); keeping them in one dynamic universe is what
//!   lets the adjustment checker relate different specifications.

use crate::value::Value;
use std::fmt;
use std::hash::Hash;

/// An operation instance: a named method plus its integer arguments.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Op {
    /// Method name, e.g. `"add"`.
    pub name: &'static str,
    /// Argument list (all arguments are integers in the spec universe).
    pub args: Vec<i64>,
}

impl fmt::Debug for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A sequential data type: deterministic, total transition function.
///
/// `apply` must be a pure function of `(state, op)` — this determinism is
/// assumed throughout §3 (and required by Proposition 1's necessity
/// direction).
pub trait DataType {
    /// Object states.
    type State: Clone + Eq + Ord + Hash + fmt::Debug;
    /// Operation instances.
    type Op: Clone + Eq + Ord + Hash + fmt::Debug;
    /// Response values.
    type Ret: Clone + Eq + Ord + fmt::Debug;

    /// The transition function `τ(s, c) = (s', r)`.
    fn apply(&self, state: &Self::State, op: &Self::Op) -> (Self::State, Self::Ret);

    /// Human-readable name of the type (used in reports).
    fn name(&self) -> &str {
        "anonymous"
    }

    /// Apply a whole sequence, returning the final state and the response
    /// of every operation (the paper's `τ⁺`).
    fn apply_all(&self, state: &Self::State, ops: &[Self::Op]) -> (Self::State, Vec<Self::Ret>) {
        let mut s = state.clone();
        let mut rets = Vec::with_capacity(ops.len());
        for op in ops {
            let (s2, r) = self.apply(&s, op);
            s = s2;
            rets.push(r);
        }
        (s, rets)
    }
}

/// Precondition predicate: `pre(state, args)`.
pub type PreFn = fn(&Value, &[i64]) -> bool;
/// State-transformer component of a postcondition: `effect(state, args) = state'`.
pub type EffectFn = fn(&Value, &[i64]) -> Value;
/// Response component of a postcondition: `ret(state, args) = r`
/// (evaluated in the *pre*-state, matching Table 1's `r = x ∉ s` style).
pub type RetFn = fn(&Value, &[i64]) -> Value;

/// A Hoare-style operation signature `[P] c [Q]`.
///
/// The postcondition `Q` is split into its state component (`effect`) and
/// response component (`ret`). A `None` component is *unconstrained* in
/// the specification sense — crucial for the subtype checks of
/// Definition 1 — and is executed with the paper's defaults: unchanged
/// state, `⊥` response.
#[derive(Clone)]
pub struct OpSig {
    /// Method name.
    pub name: &'static str,
    /// Number of integer arguments the method takes.
    pub arity: usize,
    /// Precondition `P`.
    pub pre: PreFn,
    /// State component of `Q`; `None` = unconstrained (executes as no-op).
    pub effect: Option<EffectFn>,
    /// Response component of `Q`; `None` = unconstrained / blind
    /// (executes as `⊥`).
    pub ret: Option<RetFn>,
}

impl fmt::Debug for OpSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OpSig")
            .field("name", &self.name)
            .field("arity", &self.arity)
            .field("effect", &self.effect.map(|_| "…"))
            .field("ret", &self.ret.map(|_| "…"))
            .finish()
    }
}

/// A dynamic sequential data type built from [`OpSig`]s.
///
/// This is the representation used for every Table 1 object. The
/// executable semantics follow Appendix A:
///
/// * precondition fails ⇒ state unchanged, response `⊥` ("fails silently");
/// * voided state postcondition ⇒ state unchanged;
/// * voided response postcondition (blind write) ⇒ response `⊥`.
#[derive(Clone, Debug)]
pub struct SpecType {
    name: String,
    sigs: Vec<OpSig>,
    initial: Value,
}

impl SpecType {
    /// Create a new spec with the given name, initial state and signatures.
    ///
    /// # Panics
    ///
    /// Panics if two signatures share a name — operation names must be
    /// unique within a type.
    pub fn new(name: impl Into<String>, initial: Value, sigs: Vec<OpSig>) -> Self {
        let name = name.into();
        for (i, a) in sigs.iter().enumerate() {
            for b in &sigs[i + 1..] {
                assert!(a.name != b.name, "duplicate operation name {}", a.name);
            }
        }
        SpecType {
            name,
            sigs,
            initial,
        }
    }

    /// The initial state `s0`.
    pub fn initial(&self) -> &Value {
        &self.initial
    }

    /// All operation signatures.
    pub fn sigs(&self) -> &[OpSig] {
        &self.sigs
    }

    /// Look up a signature by method name.
    pub fn sig(&self, name: &str) -> Option<&OpSig> {
        self.sigs.iter().find(|s| s.name == name)
    }

    /// The set of operation names this type defines.
    pub fn op_names(&self) -> Vec<&'static str> {
        self.sigs.iter().map(|s| s.name).collect()
    }

    /// Instantiate every operation over a small argument domain, producing
    /// the finite operation universe used by the bounded analyses.
    ///
    /// An operation of arity `a` is instantiated with every tuple in
    /// `domain^a`; zero-arity operations yield one instance.
    pub fn op_universe(&self, domain: &[i64]) -> Vec<Op> {
        let mut out = Vec::new();
        for sig in &self.sigs {
            let mut tuples: Vec<Vec<i64>> = vec![Vec::new()];
            for _ in 0..sig.arity {
                let mut next = Vec::new();
                for t in &tuples {
                    for d in domain {
                        let mut t2 = t.clone();
                        t2.push(*d);
                        next.push(t2);
                    }
                }
                tuples = next;
            }
            for args in tuples {
                out.push(Op {
                    name: sig.name,
                    args,
                });
            }
        }
        out
    }

    /// Explore all states reachable from `initial` by sequences of at most
    /// `depth` operations from `universe`. Used by the bounded subtype and
    /// permissiveness checks.
    pub fn reachable_states(&self, universe: &[Op], depth: usize) -> Vec<Value> {
        let mut seen = std::collections::BTreeSet::new();
        let mut frontier = vec![self.initial.clone()];
        seen.insert(self.initial.clone());
        for _ in 0..depth {
            let mut next = Vec::new();
            for s in &frontier {
                for op in universe {
                    let (s2, _) = self.apply(s, op);
                    if seen.insert(s2.clone()) {
                        next.push(s2);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        seen.into_iter().collect()
    }
}

impl DataType for SpecType {
    type State = Value;
    type Op = Op;
    type Ret = Value;

    fn apply(&self, state: &Value, op: &Op) -> (Value, Value) {
        let Some(sig) = self.sig(op.name) else {
            // Unknown operation: fails silently (models a deleted method).
            return (state.clone(), Value::Bottom);
        };
        debug_assert_eq!(sig.arity, op.args.len(), "arity mismatch for {}", op.name);
        if !(sig.pre)(state, &op.args) {
            return (state.clone(), Value::Bottom);
        }
        let ret = sig.ret.map(|f| f(state, &op.args)).unwrap_or(Value::Bottom);
        let state2 = sig
            .effect
            .map(|f| f(state, &op.args))
            .unwrap_or_else(|| state.clone());
        (state2, ret)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{counter_c1, op, reference_r2, set_s1};

    #[test]
    fn apply_all_threads_state() {
        let c = counter_c1();
        let (s, rets) = c.apply_all(&Value::Int(0), &[op("inc", &[]), op("inc", &[])]);
        assert_eq!(s, Value::Int(2));
        assert_eq!(rets, vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn failed_precondition_fails_silently() {
        let r2 = reference_r2();
        // Second set violates the write-once precondition.
        let (s, rets) = r2.apply_all(&Value::Bottom, &[op("set", &[5]), op("set", &[9])]);
        assert_eq!(s, Value::Int(5));
        assert_eq!(rets[1], Value::Bottom);
    }

    #[test]
    fn unknown_operation_is_a_silent_noop() {
        let c = counter_c1();
        let (s, r) = c.apply(&Value::Int(3), &op("frobnicate", &[]));
        assert_eq!(s, Value::Int(3));
        assert_eq!(r, Value::Bottom);
    }

    #[test]
    fn op_universe_respects_arity() {
        let s1 = set_s1();
        let u = s1.op_universe(&[1, 2]);
        // add(1), add(2), remove(1), remove(2), contains(1), contains(2)
        assert_eq!(u.len(), 6);
        assert!(u.iter().all(|o| o.args.len() == 1));
    }

    #[test]
    fn reachable_states_bounded_exploration() {
        let s1 = set_s1();
        let u = s1.op_universe(&[1, 2]);
        let states = s1.reachable_states(&u, 2);
        // {}, {1}, {2}, {1,2} all reachable within two ops.
        assert_eq!(states.len(), 4);
    }

    #[test]
    #[should_panic(expected = "duplicate operation name")]
    fn duplicate_names_rejected() {
        fn t(_: &Value, _: &[i64]) -> bool {
            true
        }
        let sig = OpSig {
            name: "x",
            arity: 0,
            pre: t,
            effect: None,
            ret: None,
        };
        let _ = SpecType::new("bad", Value::Bottom, vec![sig.clone(), sig]);
    }

    #[test]
    fn op_debug_format() {
        assert_eq!(format!("{:?}", op("put", &[1, 2])), "put(1,2)");
        assert_eq!(format!("{}", op("get", &[])), "get()");
    }
}
