//! Mover analysis and scalability predictions (§3.3).
//!
//! * An instance `cᵢ` **left-moves** in a permutation `x = c₁…cₘ` when it
//!   strongly labels the edge `(x, x')` where `x'` swaps `cᵢ` with its
//!   immediate predecessor. It left-moves in a graph when it left-moves in
//!   every permutation, and is a *left-mover* for an object when it
//!   left-moves in every indistinguishability graph.
//!   Left-movers are implementable **without update conflicts**
//!   (Proposition 3) — provided they have no consensus power.
//! * `cᵢ` **right-moves** when its *predecessor* strongly labels that same
//!   swapped edge. Right-movers are implementable **invisibly**
//!   (Proposition 4). Reads are the canonical right-movers.
//! * Proposition 1: a one-shot object has a conflict-free implementation
//!   iff its whole bag is labeling in every graph.
//! * Proposition 2: a long-lived object has a conflict-free implementation
//!   iff every pair of operations is strongly labeling (they commute).
//!
//! All checks here are *bounded*: they quantify over the bags and states
//! you supply (typically compliant bags over a small argument domain and
//! the states reachable within a few steps). That is exactly how the paper
//! uses these notions — to audit a finite adjustment catalogue, not to
//! decide them for unbounded state spaces.

use crate::dtype::{DataType, Op, SpecType};
use crate::graph::IndistGraph;
use crate::perm::PermissionMap;
use crate::value::Value;

/// Whether instance `c` left-moves in every permutation of the graph.
///
/// For each permutation in which `c` is not first, swapping `c` with its
/// immediate predecessor must give an edge strongly labeled by `c`.
pub fn left_moves_in_graph<T: DataType>(g: &IndistGraph<T>, c: usize) -> bool {
    moves_in_graph(g, c, Mover::Left)
}

/// Whether instance `c` right-moves in every permutation of the graph.
pub fn right_moves_in_graph<T: DataType>(g: &IndistGraph<T>, c: usize) -> bool {
    moves_in_graph(g, c, Mover::Right)
}

#[derive(Clone, Copy)]
enum Mover {
    Left,
    Right,
}

fn moves_in_graph<T: DataType>(g: &IndistGraph<T>, c: usize, dir: Mover) -> bool {
    let orders: Vec<Vec<usize>> = g.permutations().map(|o| o.to_vec()).collect();
    for order in &orders {
        let pos = order.iter().position(|&i| i == c).expect("instance in bag");
        if pos == 0 {
            continue; // first: nothing to move past
        }
        let mut swapped = order.clone();
        swapped.swap(pos, pos - 1);
        let a = g.node_of(order).expect("node");
        let b = g.node_of(&swapped).expect("node");
        let label = match dir {
            // cᵢ left-moves when *it* strongly labels the swapped edge.
            Mover::Left => c,
            // cᵢ right-moves when its *predecessor* strongly labels it.
            Mover::Right => order[pos - 1],
        };
        if !g.strongly_labels_edge(label, a, b) {
            return false;
        }
    }
    true
}

/// Report of a bounded mover/labeling audit for one operation name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MoverReport {
    /// The operation name audited.
    pub op_name: &'static str,
    /// Left-moves in every examined graph (Proposition 3 premise: the
    /// operation is implementable without update conflicts).
    pub left_mover: bool,
    /// Right-moves in every examined graph (Proposition 4 premise: the
    /// operation is implementable invisibly).
    pub right_mover: bool,
    /// Labeling in every examined graph.
    pub labeling: bool,
}

/// A bounded audit driver over compliant bags.
///
/// `k` is the bag size, `domain` the argument domain, `depth` the state
/// exploration depth. Bags are the compliant ones of the permission map.
pub struct Audit<'a> {
    spec: &'a SpecType,
    perm: &'a PermissionMap,
    bags: Vec<Vec<Op>>,
    states: Vec<Value>,
}

impl<'a> Audit<'a> {
    /// Prepare an audit of `spec` under `perm`.
    pub fn new(
        spec: &'a SpecType,
        perm: &'a PermissionMap,
        k: usize,
        domain: &[i64],
        depth: usize,
    ) -> Self {
        let universe = spec.op_universe(domain);
        let bags = perm.compliant_bags(&universe, k);
        let states = spec.reachable_states(&universe, depth);
        Audit {
            spec,
            perm,
            bags,
            states,
        }
    }

    /// The compliant bags examined.
    pub fn bags(&self) -> &[Vec<Op>] {
        &self.bags
    }

    /// The states examined.
    pub fn states(&self) -> &[Value] {
        &self.states
    }

    /// Audit one operation name across all bags/states.
    pub fn mover_report(&self, op_name: &'static str) -> MoverReport {
        let mut left = true;
        let mut right = true;
        let mut labeling = true;
        for bag in &self.bags {
            let instances: Vec<usize> = bag
                .iter()
                .enumerate()
                .filter(|(_, o)| o.name == op_name)
                .map(|(i, _)| i)
                .collect();
            if instances.is_empty() {
                continue;
            }
            for s in &self.states {
                let g = IndistGraph::build(self.spec, bag, s);
                for &c in &instances {
                    left &= left_moves_in_graph(&g, c);
                    right &= right_moves_in_graph(&g, c);
                    labeling &= g.is_labeling(c);
                }
                if !left && !right && !labeling {
                    return MoverReport {
                        op_name,
                        left_mover: false,
                        right_mover: false,
                        labeling: false,
                    };
                }
            }
        }
        MoverReport {
            op_name,
            left_mover: left,
            right_mover: right,
            labeling,
        }
    }

    /// Proposition 1 premise for one-shot objects: every compliant bag is
    /// labeling in every graph.
    pub fn one_shot_conflict_free(&self) -> bool {
        self.bags.iter().all(|bag| {
            self.states
                .iter()
                .all(|s| IndistGraph::build(self.spec, bag, s).bag_is_labeling())
        })
    }

    /// Proposition 2 premise for long-lived objects: every compliant
    /// *pair* is strongly labeling in every graph.
    pub fn long_lived_conflict_free(&self) -> bool {
        let universe = self.spec.op_universe(&collect_domain(&self.bags));
        let pairs = self
            .perm
            .compliant_bags(&universe, 2.min(self.perm.n_threads()));
        pairs.iter().all(|bag| {
            self.states
                .iter()
                .all(|s| IndistGraph::build(self.spec, bag, s).bag_is_strongly_labeling())
        })
    }
}

fn collect_domain(bags: &[Vec<Op>]) -> Vec<i64> {
    let mut d: Vec<i64> = bags
        .iter()
        .flat_map(|b| b.iter().flat_map(|o| o.args.iter().copied()))
        .collect();
    d.sort_unstable();
    d.dedup();
    if d.is_empty() {
        d.push(1);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perm::AccessMode;
    use crate::types::{counter_c1, counter_c3, op, queue_q1, reference_r1, set_s1, set_s2};

    #[test]
    fn blind_add_left_moves_with_prior_adds() {
        // §3.3: "if add is blind (object S2), it left-moves with prior add
        // operations."
        let s2 = set_s2();
        let bag = vec![op("add", &[1]), op("add", &[2])];
        let g = IndistGraph::build(&s2, &bag, &Value::empty_set());
        assert!(left_moves_in_graph(&g, 0));
        assert!(left_moves_in_graph(&g, 1));
    }

    #[test]
    fn add_with_return_value_does_not_left_move() {
        let s1 = set_s1();
        let bag = vec![op("add", &[1]), op("add", &[1])];
        let g = IndistGraph::build(&s1, &bag, &Value::empty_set());
        // add returns "was absent": order matters for the response.
        assert!(!left_moves_in_graph(&g, 0));
    }

    #[test]
    fn offer_left_moves_past_poll_when_queue_nonempty() {
        // §3.3: "when the queue is not empty, offer left-moves with poll."
        let q = queue_q1();
        let bag = vec![op("poll", &[]), op("offer", &[9])];
        let nonempty = Value::seq_of(&[1, 2]);
        let g = IndistGraph::build(&q, &bag, &nonempty);
        assert!(left_moves_in_graph(&g, 1)); // offer is instance 1
                                             // On the empty queue it does not: poll's answer changes.
        let g = IndistGraph::build(&q, &bag, &Value::empty_seq());
        assert!(!left_moves_in_graph(&g, 1));
    }

    #[test]
    fn reads_are_right_movers() {
        let c = counter_c1();
        let bag = vec![op("inc", &[]), op("get", &[])];
        let g = IndistGraph::build(&c, &bag, &Value::Int(0));
        assert!(right_moves_in_graph(&g, 1)); // get
        assert!(!right_moves_in_graph(&g, 0)); // inc changes get's view
    }

    #[test]
    fn blind_increments_are_both_movers() {
        let c = counter_c3();
        let bag = vec![op("inc", &[]), op("inc", &[]), op("inc", &[])];
        let g = IndistGraph::build(&c, &bag, &Value::Int(0));
        for i in 0..3 {
            assert!(left_moves_in_graph(&g, i));
            assert!(right_moves_in_graph(&g, i));
        }
    }

    #[test]
    fn audit_counter_c3_inc_is_left_mover() {
        let spec = counter_c3();
        let perm = PermissionMap::new(3, AccessMode::Cwsr, &["inc", "rmw", "reset"], &["get"]);
        let audit = Audit::new(&spec, &perm, 3, &[1], 2);
        let rep = audit.mover_report("inc");
        assert!(rep.left_mover, "blind inc must be a left-mover");
    }

    #[test]
    fn audit_counter_c1_inc_is_not_left_mover() {
        let spec = counter_c1();
        let perm = PermissionMap::new(2, AccessMode::All, &["inc", "rmw", "reset"], &["get"]);
        let audit = Audit::new(&spec, &perm, 2, &[1], 1);
        let rep = audit.mover_report("inc");
        assert!(!rep.left_mover, "inc returning the new value orders itself");
    }

    #[test]
    fn one_shot_conflict_freedom_blind_counter() {
        // All-blind increments: Proposition 1 premise holds.
        let spec = counter_c3();
        let perm = PermissionMap::new(2, AccessMode::Mwsr, &["inc"], &["get"]);
        // Only writers in the bag (thread 0 = reader excluded via MWSR
        // would break; use a writers-only map instead).
        let wperm = PermissionMap::new(2, AccessMode::All, &["inc"], &[]);
        let audit = Audit::new(&spec, &wperm, 2, &[1], 1);
        assert!(audit.one_shot_conflict_free());
        let _ = perm;
    }

    #[test]
    fn long_lived_conflict_freedom_requires_commutation() {
        // A read/write reference is not conflict-free long-lived.
        let spec = reference_r1();
        let perm = PermissionMap::new(2, AccessMode::All, &["set"], &["get"]);
        let audit = Audit::new(&spec, &perm, 2, &[1, 2], 1);
        assert!(!audit.long_lived_conflict_free());
        // Blind adds to *distinct* elements (CWMR partitioning) commute.
        let s2 = set_s2();
        let cperm = PermissionMap::new(2, AccessMode::Cwmr, &["add", "remove"], &[]);
        let audit = Audit::new(&s2, &cperm, 2, &[2, 3], 1);
        assert!(audit.long_lived_conflict_free());
    }
}
