//! Dynamic values: the state/response universe of the executable specs.
//!
//! Table 1 of the paper specifies counters, sets, queues, references and
//! maps. Their states and responses all fit in the small algebraic type
//! [`Value`]. A single dynamic universe (rather than one Rust type per
//! object) lets the adjustment checker compare *different* specifications
//! over a *common* state space, which is exactly what Definition 1 and
//! Proposition 6 require.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A value in the specification universe: an object state or a response.
///
/// `Bottom` is the paper's `⊥` — the response of an operation whose
/// precondition failed, of a blind (void) operation, and the content of an
/// unset reference or absent map key.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Value {
    /// The undefined/empty value `⊥`.
    #[default]
    Bottom,
    /// A boolean response (e.g. from `contains`).
    Bool(bool),
    /// An integer state or response (counters, references to addresses).
    Int(i64),
    /// A set state (the `Set` data types `S1..S3`).
    Set(BTreeSet<i64>),
    /// A sequence state (the `Queue` data type `Q1`).
    Seq(Vec<i64>),
    /// A map state (the `Map` data types `M1, M2`).
    Map(BTreeMap<i64, i64>),
}

impl Value {
    /// An empty set state.
    pub fn empty_set() -> Self {
        Value::Set(BTreeSet::new())
    }

    /// An empty sequence state.
    pub fn empty_seq() -> Self {
        Value::Seq(Vec::new())
    }

    /// An empty map state.
    pub fn empty_map() -> Self {
        Value::Map(BTreeMap::new())
    }

    /// A set state holding `items`.
    pub fn set_of(items: &[i64]) -> Self {
        Value::Set(items.iter().copied().collect())
    }

    /// A sequence state holding `items` in order.
    pub fn seq_of(items: &[i64]) -> Self {
        Value::Seq(items.to_vec())
    }

    /// A map state holding `pairs`.
    pub fn map_of(pairs: &[(i64, i64)]) -> Self {
        Value::Map(pairs.iter().copied().collect())
    }

    /// Whether this value is `⊥`.
    pub fn is_bottom(&self) -> bool {
        matches!(self, Value::Bottom)
    }

    /// The integer inside, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The boolean inside, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bottom => write!(f, "⊥"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Set(s) => {
                write!(f, "{{")?;
                for (i, x) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "}}")
            }
            Value::Seq(s) => write!(f, "{s:?}"),
            Value::Map(m) => {
                write!(f, "[")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{k}→{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bottom_is_default_and_detectable() {
        assert!(Value::default().is_bottom());
        assert!(!Value::Int(0).is_bottom());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Bool(false).as_bool(), Some(false));
        assert_eq!(Value::Bottom.as_int(), None);
        assert_eq!(Value::Bottom.as_bool(), None);
    }

    #[test]
    fn constructors_build_expected_shapes() {
        assert_eq!(Value::set_of(&[2, 1, 2]), Value::set_of(&[1, 2]));
        assert_eq!(Value::seq_of(&[1, 2]), Value::Seq(vec![1, 2]));
        assert_eq!(
            Value::map_of(&[(1, 10), (2, 20)]),
            Value::map_of(&[(2, 20), (1, 10)])
        );
        assert_eq!(Value::empty_set(), Value::set_of(&[]));
        assert_eq!(Value::empty_map(), Value::map_of(&[]));
        assert_eq!(Value::empty_seq(), Value::seq_of(&[]));
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut vs = [
            Value::Int(3),
            Value::Bottom,
            Value::Bool(true),
            Value::Int(1),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Bottom);
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", Value::Bottom), "⊥");
        assert_eq!(format!("{:?}", Value::set_of(&[1, 2])), "{1,2}");
        assert_eq!(format!("{:?}", Value::map_of(&[(1, 5)])), "[1→5]");
        assert_eq!(format!("{}", Value::Int(4)), "4");
    }
}
