//! The indistinguishability graph (§3.2).
//!
//! Given a data type `T`, a state `s` and a bag `B` of operation
//! *instances* (one per thread), the graph `G_T(B, s)` has one node per
//! permutation of `B`. There is an edge `(x, x')` labeled with instance
//! `c` iff `x` and `x'` are indistinguishable from `s` for `c`:
//!
//! 1. `c` obtains the same response in both permutations, and
//! 2. a common state is attainable after `c` in both (any point of the
//!    suffix following `c`, including the final state).
//!
//! A label is *strong* when applying `x` and `x'` from `s` reaches the
//! same final state. Connected components of the edge relation are the
//! *indistinguishability classes*; the denser the graph, the more scalable
//! the object.
//!
//! Bag elements are instances, not method names: two threads both calling
//! `inc()` contribute two distinguishable nodes' worth of orderings. This
//! is what makes the increment-only counter `D(2,2)` but `D(3,1)` (§3.2).

use crate::dtype::DataType;
use std::collections::BTreeSet;

/// One permutation's evaluation record.
#[derive(Clone, Debug)]
struct PermEval<T: DataType> {
    /// Ordering of instance indices.
    order: Vec<usize>,
    /// `responses[i]` = response of instance `i` in this permutation.
    responses: Vec<T::Ret>,
    /// `after[i]` = set of states attainable after instance `i`
    /// (the state right after `c` and every later prefix state).
    after: Vec<BTreeSet<T::State>>,
    /// Final state of the permutation.
    final_state: T::State,
}

/// An edge of the indistinguishability graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Edge {
    /// Indices (into [`IndistGraph::permutations`]) of the endpoints,
    /// with `a < b`.
    pub a: usize,
    /// Second endpoint.
    pub b: usize,
    /// Instance indices labeling the edge.
    pub labels: BTreeSet<usize>,
    /// Whether the label is strong (equal final states).
    pub strong: bool,
}

/// The indistinguishability graph `G_T(B, s)`.
#[derive(Clone, Debug)]
pub struct IndistGraph<T: DataType> {
    bag: Vec<T::Op>,
    evals: Vec<PermEval<T>>,
    edges: Vec<Edge>,
}

fn permutations(k: usize) -> Vec<Vec<usize>> {
    fn rec(cur: &mut Vec<usize>, used: &mut Vec<bool>, k: usize, out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in 0..k {
            if !used[i] {
                used[i] = true;
                cur.push(i);
                rec(cur, used, k, out);
                cur.pop();
                used[i] = false;
            }
        }
    }
    let mut out = Vec::new();
    rec(&mut Vec::new(), &mut vec![false; k], k, &mut out);
    out
}

impl<T: DataType> IndistGraph<T> {
    /// Build the graph for `bag` applied from `state`.
    ///
    /// # Panics
    ///
    /// Panics if the bag holds more than 7 instances (8! permutations and
    /// the quadratic pair scan make larger bags impractical; the paper's
    /// analyses never need more).
    pub fn build(dtype: &T, bag: &[T::Op], state: &T::State) -> Self {
        assert!(bag.len() <= 7, "bags larger than 7 are impractical");
        let k = bag.len();
        let evals: Vec<PermEval<T>> = permutations(k)
            .into_iter()
            .map(|order| {
                let mut s = state.clone();
                let mut responses: Vec<Option<T::Ret>> = vec![None; k];
                let mut prefix_states = Vec::with_capacity(k + 1);
                for &i in &order {
                    let (s2, r) = dtype.apply(&s, &bag[i]);
                    s = s2;
                    responses[i] = Some(r);
                    prefix_states.push(s.clone());
                }
                // after[i] = all states from the point right after instance i
                // to the end of the permutation.
                let mut after: Vec<BTreeSet<T::State>> = vec![BTreeSet::new(); k];
                for (pos, &i) in order.iter().enumerate() {
                    after[i] = prefix_states[pos..].iter().cloned().collect();
                }
                PermEval {
                    order,
                    responses: responses.into_iter().map(Option::unwrap).collect(),
                    after,
                    final_state: s,
                }
            })
            .collect();

        let mut edges = Vec::new();
        for a in 0..evals.len() {
            for b in a + 1..evals.len() {
                let (ea, eb) = (&evals[a], &evals[b]);
                let mut labels = BTreeSet::new();
                for c in 0..k {
                    if ea.responses[c] == eb.responses[c] && !ea.after[c].is_disjoint(&eb.after[c])
                    {
                        labels.insert(c);
                    }
                }
                if !labels.is_empty() {
                    edges.push(Edge {
                        a,
                        b,
                        labels,
                        strong: ea.final_state == eb.final_state,
                    });
                }
            }
        }
        IndistGraph {
            bag: bag.to_vec(),
            evals,
            edges,
        }
    }

    /// The bag the graph was built from.
    pub fn bag(&self) -> &[T::Op] {
        &self.bag
    }

    /// Number of nodes (`|B|!`).
    pub fn node_count(&self) -> usize {
        self.evals.len()
    }

    /// The permutations, as orderings of instance indices.
    pub fn permutations(&self) -> impl Iterator<Item = &[usize]> + '_ {
        self.evals.iter().map(|e| e.order.as_slice())
    }

    /// The edges of the graph.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Density: `edges / possible pairs` in `[0, 1]`. §3 argues that the
    /// denser the graph, the more scalable the object.
    pub fn density(&self) -> f64 {
        let n = self.node_count();
        if n < 2 {
            return 1.0;
        }
        let pairs = (n * (n - 1) / 2) as f64;
        self.edges.len() as f64 / pairs
    }

    /// Whether instance `c` labels the edge between permutation nodes
    /// `a` and `b` (order irrelevant).
    pub fn labels_edge(&self, c: usize, a: usize, b: usize) -> bool {
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        self.edges
            .iter()
            .any(|e| e.a == a && e.b == b && e.labels.contains(&c))
    }

    /// Whether instance `c` *strongly* labels the edge `(a, b)`.
    pub fn strongly_labels_edge(&self, c: usize, a: usize, b: usize) -> bool {
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        self.edges
            .iter()
            .any(|e| e.a == a && e.b == b && e.strong && e.labels.contains(&c))
    }

    /// Whether instance `c` is **labeling**: it labels every pair of
    /// distinct permutations (hence the graph is complete and has a single
    /// class). Lemma 2 then applies: `c`'s response is its response from
    /// the initial state in every permutation.
    pub fn is_labeling(&self, c: usize) -> bool {
        let n = self.node_count();
        let mut count = 0usize;
        for e in &self.edges {
            if e.labels.contains(&c) {
                count += 1;
            }
        }
        count == n * (n - 1) / 2
    }

    /// Whether instance `c` is **strongly labeling** (labeling with all
    /// labels strong).
    pub fn is_strongly_labeling(&self, c: usize) -> bool {
        let n = self.node_count();
        let mut count = 0usize;
        for e in &self.edges {
            if e.strong && e.labels.contains(&c) {
                count += 1;
            }
        }
        count == n * (n - 1) / 2
    }

    /// Whether the whole bag is labeling (every instance labels every
    /// edge) — the premise of Proposition 1.
    pub fn bag_is_labeling(&self) -> bool {
        (0..self.bag.len()).all(|c| self.is_labeling(c))
    }

    /// Whether the whole bag is strongly labeling — the premise of
    /// Proposition 2 (with `|B| = 2`).
    pub fn bag_is_strongly_labeling(&self) -> bool {
        (0..self.bag.len()).all(|c| self.is_strongly_labeling(c))
    }

    /// The indistinguishability classes: connected components of the edge
    /// relation (transitive closure of `∼`). Each class is a sorted list
    /// of node indices.
    pub fn classes(&self) -> Vec<Vec<usize>> {
        let n = self.node_count();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        for e in &self.edges {
            let (ra, rb) = (find(&mut parent, e.a), find(&mut parent, e.b));
            if ra != rb {
                parent[ra] = rb;
            }
        }
        let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for i in 0..n {
            let r = find(&mut parent, i);
            groups.entry(r).or_default().push(i);
        }
        groups.into_values().collect()
    }

    /// Number of indistinguishability classes (the `l` of `D(k, l)`).
    pub fn class_count(&self) -> usize {
        self.classes().len()
    }

    /// Find the node index of a given ordering of instance indices.
    pub fn node_of(&self, order: &[usize]) -> Option<usize> {
        self.evals.iter().position(|e| e.order == order)
    }

    /// The response of instance `c` in permutation node `p`.
    pub fn response(&self, p: usize, c: usize) -> &T::Ret {
        &self.evals[p].responses[c]
    }

    /// The final state of permutation node `p`.
    pub fn final_state(&self, p: usize) -> &T::State {
        &self.evals[p].final_state
    }

    /// Render the graph in a compact textual form (used by the Figure 2
    /// harness binary).
    pub fn render(&self, op_names: &[String]) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, e) in self.evals.iter().enumerate() {
            let seq: Vec<&str> = e.order.iter().map(|&j| op_names[j].as_str()).collect();
            let _ = writeln!(out, "  x{} = {}", i + 1, seq.join(" "));
        }
        for e in &self.edges {
            let labels: Vec<&str> = e.labels.iter().map(|&c| op_names[c].as_str()).collect();
            let _ = writeln!(
                out,
                "  (x{}, x{}) labels={{{}}}{}",
                e.a + 1,
                e.b + 1,
                labels.join(","),
                if e.strong { " strong" } else { "" }
            );
        }
        let _ = writeln!(
            out,
            "  nodes={} edges={} classes={} density={:.2}",
            self.node_count(),
            self.edge_count(),
            self.class_count(),
            self.density()
        );
        out
    }
}

/// Compute the maximal number of classes any size-`k` compliant bag can
/// produce — the `l` in "`T` is `D(k, l)`" (§3.2). Bags are drawn from
/// `universe` (with repetition), states from `states`.
pub fn max_classes<T: DataType>(
    dtype: &T,
    universe: &[T::Op],
    states: &[T::State],
    k: usize,
) -> usize {
    let mut best = 1;
    let mut bag: Vec<T::Op> = Vec::with_capacity(k);
    fn rec<T: DataType>(
        dtype: &T,
        universe: &[T::Op],
        states: &[T::State],
        k: usize,
        start: usize,
        bag: &mut Vec<T::Op>,
        best: &mut usize,
    ) {
        if bag.len() == k {
            for s in states {
                let g = IndistGraph::build(dtype, bag, s);
                let c = g.class_count();
                if c > *best {
                    *best = c;
                }
            }
            return;
        }
        // Bags are multisets: enumerate non-decreasing index sequences.
        for i in start..universe.len() {
            bag.push(universe[i].clone());
            rec(dtype, universe, states, k, i, bag, best);
            bag.pop();
        }
    }
    rec(dtype, universe, states, k, 0, &mut bag, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{counter_c1, op, reference_r1, set_s1};
    use crate::value::Value;

    /// Figure 2 (left): reference with a = set(1), b = set(2), c = get().
    #[test]
    fn figure2_reference_graph_is_complete() {
        let r = reference_r1();
        let bag = vec![op("set", &[1]), op("set", &[2]), op("get", &[])];
        let g = IndistGraph::build(&r, &bag, &Value::Bottom);
        assert_eq!(g.node_count(), 6);
        // Complete: 15 edges, one class.
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.class_count(), 1);
        // The blind sets label every edge (the "default label {a, b}").
        assert!(g.is_labeling(0));
        assert!(g.is_labeling(1));
        // get is NOT labeling: its response depends on the last set.
        assert!(!g.is_labeling(2));
    }

    /// Figure 2 (left): c = get labels exactly the permutation pairs where
    /// the same set immediately precedes it… checked via x1=abc, x4=bca.
    #[test]
    fn figure2_reference_get_labels_expected_edges() {
        let r = reference_r1();
        let bag = vec![op("set", &[1]), op("set", &[2]), op("get", &[])];
        let g = IndistGraph::build(&r, &bag, &Value::Bottom);
        // x1 = abc = [0,1,2]; x4 = bca = [1,2,0]
        let x1 = g.node_of(&[0, 1, 2]).unwrap();
        let x4 = g.node_of(&[1, 2, 0]).unwrap();
        assert!(g.labels_edge(2, x1, x4));
        // x2 = acb = [0,2,1]; x3 = bac = [1,0,2]
        let x2 = g.node_of(&[0, 2, 1]).unwrap();
        let x3 = g.node_of(&[1, 0, 2]).unwrap();
        assert!(g.labels_edge(2, x2, x3));
        // x5 = cab = [2,0,1]; x6 = cba = [2,1,0]
        let x5 = g.node_of(&[2, 0, 1]).unwrap();
        let x6 = g.node_of(&[2, 1, 0]).unwrap();
        assert!(g.labels_edge(2, x5, x6));
        // but get does not label x1-x2 (it returns 2 vs 1).
        assert!(!g.labels_edge(2, x1, x2));
    }

    /// Figure 2 (middle): set with a = add(1), b = add(1), c = contains(1).
    /// All labels are strong (same final state everywhere).
    #[test]
    fn figure2_set_graph_all_labels_strong() {
        let s = set_s1();
        let bag = vec![op("add", &[1]), op("add", &[1]), op("contains", &[1])];
        let g = IndistGraph::build(&s, &bag, &Value::empty_set());
        assert!(g.edges().iter().all(|e| e.strong));
        assert_eq!(g.class_count(), 1);
        // contains labels when not first: pairs where it is first in both
        // or not-first in both are connected via it.
        let x1 = g.node_of(&[0, 1, 2]).unwrap();
        let x3 = g.node_of(&[1, 0, 2]).unwrap();
        assert!(g.labels_edge(2, x1, x3));
    }

    /// Figure 2 (right): counter with increments returning the new value.
    /// Permuting the first two operations leaves the third's response
    /// unchanged; the graph is connected.
    #[test]
    fn figure2_counter_graph_connected() {
        let c = counter_c1();
        // inc-with-amount modelled by rmw(1), rmw(3), rmw(5).
        let bag = vec![op("rmw", &[1]), op("rmw", &[3]), op("rmw", &[5])];
        let g = IndistGraph::build(&c, &bag, &Value::Int(0));
        assert_eq!(g.class_count(), 1);
        // abc vs bac: c returns 9 in both.
        let x1 = g.node_of(&[0, 1, 2]).unwrap();
        let x3 = g.node_of(&[1, 0, 2]).unwrap();
        assert!(g.labels_edge(2, x1, x3));
        // abc vs acb: only a (instance 0) labels.
        let x2 = g.node_of(&[0, 2, 1]).unwrap();
        assert!(g.labels_edge(0, x1, x2));
        assert!(!g.labels_edge(1, x1, x2));
        assert!(!g.labels_edge(2, x1, x2));
    }

    /// Two unit increments that return the new value cannot be ordered
    /// consistently: D(2,2).
    #[test]
    fn counter_with_returns_is_d_2_2() {
        let c = counter_c1();
        let bag = vec![op("inc", &[]), op("inc", &[])];
        let g = IndistGraph::build(&c, &bag, &Value::Int(0));
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.class_count(), 2);
    }

    /// …but a third operation cannot tell how the first two were ordered:
    /// D(3,1) (the "transition to D(k,1)" of Theorem 1 with k = 2).
    #[test]
    fn counter_with_returns_is_d_3_1() {
        let c = counter_c1();
        let bag = vec![op("inc", &[]), op("inc", &[]), op("inc", &[])];
        let g = IndistGraph::build(&c, &bag, &Value::Int(0));
        assert_eq!(g.class_count(), 1);
    }

    #[test]
    fn max_classes_matches_d_hierarchy() {
        let c = counter_c1();
        let universe = vec![op("inc", &[]), op("get", &[])];
        let states = vec![Value::Int(0)];
        assert_eq!(max_classes(&c, &universe, &states, 2), 2);
        assert_eq!(max_classes(&c, &universe, &states, 3), 1);
    }

    #[test]
    fn blind_counter_is_always_one_class() {
        let c = crate::types::counter_c3();
        for k in 2..=4 {
            let bag: Vec<_> = (0..k).map(|_| op("inc", &[])).collect();
            let g = IndistGraph::build(&c, &bag, &Value::Int(0));
            assert_eq!(g.class_count(), 1, "k={k}");
            assert!(g.bag_is_strongly_labeling());
        }
    }

    #[test]
    fn singleton_bag_graph() {
        let c = counter_c1();
        let g = IndistGraph::build(&c, &[op("inc", &[])], &Value::Int(0));
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.class_count(), 1);
        assert!((g.density() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn classes_never_exceed_bag_size() {
        // §3.2: at most |B| classes, because permutations sharing the
        // first element are always connected.
        let s = set_s1();
        let bag = vec![op("add", &[1]), op("remove", &[1]), op("contains", &[1])];
        let g = IndistGraph::build(&s, &bag, &Value::empty_set());
        assert!(g.class_count() <= bag.len());
    }

    #[test]
    fn render_mentions_all_nodes() {
        let r = reference_r1();
        let bag = vec![op("set", &[1]), op("get", &[])];
        let g = IndistGraph::build(&r, &bag, &Value::Bottom);
        let txt = g.render(&["a".into(), "b".into()]);
        assert!(txt.contains("x1"));
        assert!(txt.contains("x2"));
        assert!(txt.contains("classes="));
    }
}
