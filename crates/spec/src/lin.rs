//! A linearizability checker (Appendix A's correctness criterion).
//!
//! The concurrent structures of `dego-core` and `dego-juc` are validated
//! against their sequential [`DataType`] specifications by recording
//! concurrent histories and searching for a linearization: a legal
//! sequential order of the completed operations that respects real time
//! (Herlihy & Wing). The search is the classic Wing–Gong DFS with
//! memoization on `(pending-set, state)`.
//!
//! Histories are bounded to 63 operations (a bitmask encodes the pending
//! set); the workspace tests check many small windows rather than one
//! giant history, which is both faster and a stronger discriminator.

use crate::dtype::DataType;
use std::collections::HashSet;

/// A completed operation in a concurrent history.
#[derive(Clone, Debug)]
pub struct Completed<T: DataType> {
    /// The operation invoked.
    pub op: T::Op,
    /// The response observed.
    pub ret: T::Ret,
    /// Invocation timestamp (any monotone clock).
    pub invoke: u64,
    /// Response timestamp; must be `>= invoke`.
    pub response: u64,
}

impl<T: DataType> Completed<T> {
    /// Convenience constructor.
    pub fn new(op: T::Op, ret: T::Ret, invoke: u64, response: u64) -> Self {
        assert!(invoke <= response, "response precedes invocation");
        Completed {
            op,
            ret,
            invoke,
            response,
        }
    }
}

/// Search for a linearization of `history` against `dtype` from `init`.
///
/// Returns `true` iff some permutation of the operations is legal for the
/// sequential specification *and* respects the happens-before order
/// (`a.response < b.invoke ⇒ a before b`).
///
/// # Panics
///
/// Panics if the history holds more than 63 operations.
pub fn is_linearizable<T: DataType>(dtype: &T, init: &T::State, history: &[Completed<T>]) -> bool {
    assert!(
        history.len() <= 63,
        "history too long for the bitmask search"
    );
    let n = history.len();
    if n == 0 {
        return true;
    }
    let full: u64 = (1u64 << n) - 1;
    let mut memo: HashSet<(u64, T::State)> = HashSet::new();
    dfs(dtype, history, init, 0, full, &mut memo)
}

fn dfs<T: DataType>(
    dtype: &T,
    hist: &[Completed<T>],
    state: &T::State,
    done: u64,
    full: u64,
    memo: &mut HashSet<(u64, T::State)>,
) -> bool {
    if done == full {
        return true;
    }
    if !memo.insert((done, state.clone())) {
        return false;
    }
    // An op is a candidate next linearization point iff it is not done and
    // no other not-done op completed strictly before it was invoked.
    for (i, c) in hist.iter().enumerate() {
        if done & (1 << i) != 0 {
            continue;
        }
        let blocked = hist
            .iter()
            .enumerate()
            .any(|(j, d)| j != i && done & (1 << j) == 0 && d.response < c.invoke);
        if blocked {
            continue;
        }
        let (next, ret) = dtype.apply(state, &c.op);
        if ret == c.ret && dfs(dtype, hist, &next, done | (1 << i), full, memo) {
            return true;
        }
    }
    false
}

/// Check a *sequential* history: every response must match the
/// specification applied in order. Returns the index of the first
/// mismatch, if any.
pub fn check_sequential<T: DataType>(
    dtype: &T,
    init: &T::State,
    ops: &[(T::Op, T::Ret)],
) -> Option<usize> {
    let mut s = init.clone();
    for (i, (op, expected)) in ops.iter().enumerate() {
        let (next, ret) = dtype.apply(&s, op);
        if ret != *expected {
            return Some(i);
        }
        s = next;
    }
    None
}

/// A recorder that assigns invocation/response timestamps from a logical
/// clock, for building histories in tests.
#[derive(Debug, Default)]
pub struct HistoryBuilder<T: DataType> {
    clock: u64,
    ops: Vec<Completed<T>>,
}

impl<T: DataType> HistoryBuilder<T> {
    /// New empty history.
    pub fn new() -> Self {
        HistoryBuilder {
            clock: 0,
            ops: Vec::new(),
        }
    }

    /// Record an operation that occupied `[start, end]` in logical time.
    pub fn record(&mut self, op: T::Op, ret: T::Ret, start: u64, end: u64) {
        self.ops.push(Completed::new(op, ret, start, end));
        self.clock = self.clock.max(end);
    }

    /// Record an operation as atomic at the next clock tick.
    pub fn record_sequential(&mut self, op: T::Op, ret: T::Ret) {
        self.clock += 1;
        let t = self.clock;
        self.ops.push(Completed::new(op, ret, t, t));
    }

    /// The recorded history.
    pub fn history(&self) -> &[Completed<T>] {
        &self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{counter_c1, op, queue_q1, register};
    use crate::value::Value;

    type C = Completed<crate::dtype::SpecType>;

    #[test]
    fn empty_history_is_linearizable() {
        let c = counter_c1();
        assert!(is_linearizable(&c, &Value::Int(0), &[]));
    }

    #[test]
    fn sequential_counter_history() {
        let c = counter_c1();
        let h = vec![
            C::new(op("inc", &[]), Value::Int(1), 1, 2),
            C::new(op("inc", &[]), Value::Int(2), 3, 4),
            C::new(op("get", &[]), Value::Int(2), 5, 6),
        ];
        assert!(is_linearizable(&c, &Value::Int(0), &h));
    }

    #[test]
    fn wrong_response_is_rejected() {
        let c = counter_c1();
        let h = vec![
            C::new(op("inc", &[]), Value::Int(1), 1, 2),
            C::new(op("get", &[]), Value::Int(0), 3, 4), // stale read
        ];
        assert!(!is_linearizable(&c, &Value::Int(0), &h));
    }

    #[test]
    fn concurrent_overlap_permits_reordering() {
        let c = counter_c1();
        // Two overlapping incs: responses 2 then 1 are fine because the
        // operations are concurrent.
        let h = vec![
            C::new(op("inc", &[]), Value::Int(2), 1, 10),
            C::new(op("inc", &[]), Value::Int(1), 2, 9),
        ];
        assert!(is_linearizable(&c, &Value::Int(0), &h));
    }

    #[test]
    fn real_time_order_is_enforced() {
        let c = counter_c1();
        // inc completing before the second begins cannot observe 2 then 1.
        let h = vec![
            C::new(op("inc", &[]), Value::Int(2), 1, 2),
            C::new(op("inc", &[]), Value::Int(1), 3, 4),
        ];
        assert!(!is_linearizable(&c, &Value::Int(0), &h));
    }

    #[test]
    fn register_new_old_inversion_detected() {
        let r = register();
        // w(1) ends; then two sequential reads see 1 then 0: not
        // linearizable (stale read after fresh read).
        let h = vec![
            C::new(op("write", &[1]), Value::Bottom, 1, 2),
            C::new(op("read", &[]), Value::Int(1), 3, 4),
            C::new(op("read", &[]), Value::Int(0), 5, 6),
        ];
        assert!(!is_linearizable(&r, &Value::Int(0), &h));
        // …but if the write overlaps both reads, 0 then 1 is fine.
        let h = vec![
            C::new(op("write", &[1]), Value::Bottom, 1, 10),
            C::new(op("read", &[]), Value::Int(0), 2, 3),
            C::new(op("read", &[]), Value::Int(1), 4, 5),
        ];
        assert!(is_linearizable(&r, &Value::Int(0), &h));
    }

    #[test]
    fn queue_fifo_violation_detected() {
        let q = queue_q1();
        let h = vec![
            C::new(op("offer", &[1]), Value::Bottom, 1, 2),
            C::new(op("offer", &[2]), Value::Bottom, 3, 4),
            C::new(op("poll", &[]), Value::Int(2), 5, 6), // must be 1
        ];
        assert!(!is_linearizable(&q, &Value::empty_seq(), &h));
        let ok = vec![
            C::new(op("offer", &[1]), Value::Bottom, 1, 2),
            C::new(op("offer", &[2]), Value::Bottom, 3, 4),
            C::new(op("poll", &[]), Value::Int(1), 5, 6),
        ];
        assert!(is_linearizable(&q, &Value::empty_seq(), &ok));
    }

    #[test]
    fn check_sequential_reports_first_mismatch() {
        let c = counter_c1();
        let ops = vec![
            (op("inc", &[]), Value::Int(1)),
            (op("inc", &[]), Value::Int(3)), // wrong
        ];
        assert_eq!(check_sequential(&c, &Value::Int(0), &ops), Some(1));
        let ok = vec![
            (op("inc", &[]), Value::Int(1)),
            (op("get", &[]), Value::Int(1)),
        ];
        assert_eq!(check_sequential(&c, &Value::Int(0), &ok), None);
    }

    #[test]
    fn history_builder_sequential_clock() {
        let mut b: HistoryBuilder<crate::dtype::SpecType> = HistoryBuilder::new();
        b.record_sequential(op("inc", &[]), Value::Int(1));
        b.record_sequential(op("get", &[]), Value::Int(1));
        assert_eq!(b.history().len(), 2);
        assert!(b.history()[0].response < b.history()[1].invoke);
    }

    #[test]
    #[should_panic(expected = "response precedes invocation")]
    fn bad_timestamps_rejected() {
        let _: C = Completed::new(op("inc", &[]), Value::Int(1), 5, 4);
    }
}
