//! Construction 1 — Theorem 1's (≥) direction, executable.
//!
//! The proof of Theorem 1 builds a *weak consensus* protocol from any
//! readable object whose indistinguishability graph has at least two
//! classes: each indistinguishability class is mapped (surjectively)
//! onto `{0, 1}`; a thread applies its assigned operation, reads the
//! object's state, locates a permutation consistent with its response
//! and the observed state, and decides the value of that permutation's
//! class. Agreement holds because every thread's consistent permutation
//! lies in the class of the actual linearization.
//!
//! This module runs the construction for real: the shared object is a
//! linearizable simulation of the data type, threads are driven through
//! **every schedule** of apply/read steps, and the tests check agreement
//! on all of them plus weak validity (both values decided on some
//! schedule) — a mechanical certification of the theorem's constructive
//! half on concrete objects.

use crate::dtype::DataType;
use crate::graph::IndistGraph;

/// The outcome of driving Construction 1 over every schedule.
#[derive(Clone, Debug)]
pub struct ConsensusRuns {
    /// Per schedule: the value each thread decided.
    pub decisions_per_schedule: Vec<Vec<u8>>,
}

impl ConsensusRuns {
    /// Every schedule reached agreement.
    pub fn all_agree(&self) -> bool {
        self.decisions_per_schedule
            .iter()
            .all(|ds| ds.windows(2).all(|w| w[0] == w[1]))
    }

    /// The set of decided values across schedules (weak validity needs
    /// both 0 and 1 to appear).
    pub fn decided_values(&self) -> Vec<u8> {
        let mut vs: Vec<u8> = self
            .decisions_per_schedule
            .iter()
            .filter_map(|ds| ds.first().copied())
            .collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }
}

/// Errors of the construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConstructionError {
    /// The graph has a single class: the object cannot distinguish the
    /// orders, so Theorem 1 gives no protocol.
    SingleClass,
    /// A thread could not locate any permutation consistent with its
    /// observation — would indicate a broken simulation.
    NoConsistentPermutation,
}

impl std::fmt::Display for ConstructionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConstructionError::SingleClass => {
                write!(f, "indistinguishability graph has a single class")
            }
            ConstructionError::NoConsistentPermutation => {
                write!(f, "no permutation consistent with an observation")
            }
        }
    }
}

impl std::error::Error for ConstructionError {}

/// Enumerate every interleaving of the threads' `apply` then `read`
/// steps (each thread contributes the two steps in order).
fn schedules(k: usize) -> Vec<Vec<usize>> {
    // A schedule is a sequence over thread ids where each id appears
    // exactly twice; the first occurrence is its apply, the second its
    // read.
    let mut out = Vec::new();
    let mut remaining = vec![2u8; k];
    let mut cur = Vec::with_capacity(2 * k);
    fn rec(remaining: &mut [u8], cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if remaining.iter().all(|&r| r == 0) {
            out.push(cur.clone());
            return;
        }
        for t in 0..remaining.len() {
            if remaining[t] > 0 {
                remaining[t] -= 1;
                cur.push(t);
                rec(remaining, cur, out);
                cur.pop();
                remaining[t] += 1;
            }
        }
    }
    rec(&mut remaining, &mut cur, &mut out);
    out
}

/// Run Construction 1 for `bag` (instance `i` = thread `i`'s operation)
/// from `state`, across every apply/read schedule.
///
/// # Errors
///
/// [`ConstructionError::SingleClass`] when the graph cannot distinguish
/// the orders (the premise of Theorem 1's (≥) direction fails);
/// [`ConstructionError::NoConsistentPermutation`] would indicate an
/// unsound simulation.
pub fn run_weak_consensus<T: DataType>(
    dtype: &T,
    bag: &[T::Op],
    state: &T::State,
) -> Result<ConsensusRuns, ConstructionError> {
    let k = bag.len();
    let g = IndistGraph::build(dtype, bag, state);
    let classes = g.classes();
    if classes.len() < 2 {
        return Err(ConstructionError::SingleClass);
    }
    // Surjective map class → {0, 1}.
    let mut class_of_node = vec![0usize; g.node_count()];
    for (ci, class) in classes.iter().enumerate() {
        for &node in class {
            class_of_node[node] = ci;
        }
    }
    let decision_of_class = |ci: usize| -> u8 { (ci % 2) as u8 };

    let perms: Vec<Vec<usize>> = g.permutations().map(|p| p.to_vec()).collect();
    let mut decisions_per_schedule = Vec::new();

    for schedule in schedules(k) {
        // Drive the linearizable object: a plain sequential simulation —
        // the mutex-linearized object behaves exactly like this under
        // the chosen schedule.
        let mut s = state.clone();
        let mut responses: Vec<Option<T::Ret>> = vec![None; k];
        let mut observed: Vec<Option<T::State>> = vec![None; k];
        let mut applied = vec![false; k];
        for &t in &schedule {
            if !applied[t] {
                let (s2, r) = dtype.apply(&s, &bag[t]);
                s = s2;
                responses[t] = Some(r);
                applied[t] = true;
            } else {
                // The read step: retrieve the current state (readable
                // object assumption).
                observed[t] = Some(s.clone());
            }
        }

        // Each thread locates a consistent permutation and decides.
        let mut decisions = Vec::with_capacity(k);
        for t in 0..k {
            let r = responses[t].as_ref().expect("applied");
            let s_obs = observed[t].as_ref().expect("read");
            let found = perms.iter().enumerate().find(|(pi, _)| {
                g.response(*pi, t) == r && {
                    // `s_obs` must be attainable after t in this perm:
                    // replay the permutation and collect suffix states.
                    let order = &perms[*pi];
                    let mut st = state.clone();
                    let mut after = false;
                    let mut ok = false;
                    for &i in order {
                        let (s2, _) = dtype.apply(&st, &bag[i]);
                        st = s2;
                        if i == t {
                            after = true;
                        }
                        if after && st == *s_obs {
                            ok = true;
                        }
                    }
                    ok
                }
            });
            match found {
                Some((pi, _)) => {
                    decisions.push(decision_of_class(class_of_node[pi]));
                }
                None => return Err(ConstructionError::NoConsistentPermutation),
            }
        }
        decisions_per_schedule.push(decisions);
    }
    Ok(ConsensusRuns {
        decisions_per_schedule,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{compare_and_swap, counter_c1, counter_c3, op, test_and_set};
    use crate::value::Value;

    #[test]
    fn schedule_enumeration_counts() {
        // 2 threads: (2k)! / 2^k = 4!/4 = 6 schedules.
        assert_eq!(schedules(2).len(), 6);
        // 3 threads: 6!/8 = 90.
        assert_eq!(schedules(3).len(), 90);
    }

    #[test]
    fn counter_with_returns_solves_2_consensus() {
        // C1's inc returns the new value: D(2,2), so two threads agree.
        let c1 = counter_c1();
        let runs = run_weak_consensus(&c1, &[op("inc", &[]), op("inc", &[])], &Value::Int(0))
            .expect("two classes");
        assert!(runs.all_agree(), "{:?}", runs.decisions_per_schedule);
        // Weak validity: both outcomes occur across schedules.
        assert_eq!(runs.decided_values(), vec![0, 1]);
    }

    #[test]
    fn test_and_set_solves_2_consensus() {
        let tas = test_and_set();
        let runs = run_weak_consensus(
            &tas,
            &[op("test_and_set", &[]), op("test_and_set", &[])],
            &Value::Bool(false),
        )
        .expect("two classes");
        assert!(runs.all_agree());
        assert_eq!(runs.decided_values(), vec![0, 1]);
    }

    #[test]
    fn cas_solves_3_consensus() {
        let cas = compare_and_swap();
        let bag = vec![op("cas", &[0, 1]), op("cas", &[0, 2]), op("cas", &[0, 3])];
        let runs = run_weak_consensus(&cas, &bag, &Value::Int(0)).expect("≥2 classes");
        assert!(runs.all_agree(), "a schedule disagreed");
        assert_eq!(runs.decided_values(), vec![0, 1]);
        // All 90 schedules ran.
        assert_eq!(runs.decisions_per_schedule.len(), 90);
    }

    #[test]
    fn blind_counter_cannot_distinguish() {
        // C3 is D(k,1): the construction must refuse.
        let c3 = counter_c3();
        let err =
            run_weak_consensus(&c3, &[op("inc", &[]), op("inc", &[])], &Value::Int(0)).unwrap_err();
        assert_eq!(err, ConstructionError::SingleClass);
    }

    #[test]
    fn counter_three_threads_is_single_class() {
        // Theorem 1: CN(C1) = 2, so three unit increments cannot solve
        // consensus — exactly one class.
        let c1 = counter_c1();
        let bag = vec![op("inc", &[]), op("inc", &[]), op("inc", &[])];
        assert_eq!(
            run_weak_consensus(&c1, &bag, &Value::Int(0)).unwrap_err(),
            ConstructionError::SingleClass
        );
    }
}
