//! Consensus-number analysis (§3.1, Theorem 1, Corollary 1).
//!
//! Theorem 1: for a *readable* data type `T`,
//! `CN(T) = max {k : ∃ l ≥ 2, T ∈ D(k, l)} ∪ {1}` —
//! the consensus number is the largest bag size for which some
//! indistinguishability graph has at least two classes.
//!
//! Corollary 1: a readable type is in `CN₁` iff it is *permissive*:
//! every pair of write operations is either overwriting or
//! weakly-commuting.
//!
//! Both are implemented as **bounded** decision procedures over a supplied
//! operation universe and state set, which is how the paper itself deploys
//! them (the data types of Table 1 are finite once the argument domain
//! is).

use crate::dtype::{DataType, Op, SpecType};
use crate::graph::max_classes;
use crate::value::Value;

/// Estimate the consensus number of `dtype` via Theorem 1.
///
/// Searches bag sizes `k = 2..=max_k` over multisets of `universe` and all
/// `states`; returns the largest `k` whose best graph has ≥ 2 classes, or
/// 1 if none does. The result is exact provided the universe/states are
/// rich enough to witness the distinguishing bags (for Table 1 objects a
/// two-value argument domain and depth-2 states suffice).
pub fn consensus_number_bounded<T: DataType>(
    dtype: &T,
    universe: &[T::Op],
    states: &[T::State],
    max_k: usize,
) -> usize {
    let mut cn = 1;
    for k in 2..=max_k {
        if max_classes(dtype, universe, states, k) >= 2 {
            cn = k;
        }
    }
    cn
}

/// Whether an operation *has consensus power*: the type restricted to just
/// that operation (plus reads via the graph criterion) has consensus
/// number > 1, i.e. some bag of two instances of `c` yields two classes.
///
/// Used as the necessary condition of Proposition 3: a left-mover is
/// implementable without update conflicts *only if* it has no consensus
/// power.
pub fn has_consensus_power<T: DataType>(
    dtype: &T,
    instances_of_c: &[T::Op],
    states: &[T::State],
) -> bool {
    max_classes(dtype, instances_of_c, states, 2) >= 2
}

/// Classification of a pair of write operations (Corollary 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PairKind {
    /// `τ(s, c) = τ(s.d, c)` or symmetrically — one overwrites the other.
    Overwriting,
    /// Same state either order, and at least one does not notice the other.
    WeaklyCommuting,
    /// Neither: the pair gives the type consensus power.
    Interfering,
}

/// Classify a pair of operations in a given state per the Corollary 1
/// proof's case analysis.
pub fn classify_pair(spec: &SpecType, s: &Value, c: &Op, d: &Op) -> PairKind {
    let (s_c, r_c) = spec.apply(s, c);
    let (s_d, r_d) = spec.apply(s, d);
    let (s_cd, r_d_after_c) = spec.apply(&s_c, d);
    let (s_dc, r_c_after_d) = spec.apply(&s_d, c);

    // Overwriting: applying c after d is the same as applying c directly
    // (d's effect is overwritten), or symmetrically.
    let c_overwrites_d = s_dc == s_c && r_c_after_d == r_c;
    let d_overwrites_c = s_cd == s_d && r_d_after_c == r_d;
    if c_overwrites_d || d_overwrites_c {
        return PairKind::Overwriting;
    }

    // Weakly commuting: both orders reach the same state, and one of the
    // two operations does not notice the other (same response either way).
    let same_state = s_cd == s_dc;
    let c_blind_to_d = r_c_after_d == r_c;
    let d_blind_to_c = r_d_after_c == r_d;
    if same_state && (c_blind_to_d || d_blind_to_c) {
        return PairKind::WeaklyCommuting;
    }

    PairKind::Interfering
}

/// Whether `op` is a *write* in some reachable state: it changes the state.
pub fn is_write(spec: &SpecType, states: &[Value], op: &Op) -> bool {
    states.iter().any(|s| {
        let (s2, _) = spec.apply(s, op);
        s2 != *s
    })
}

/// Corollary 1 check: the type is **permissive** iff every pair of write
/// operations is overwriting or weakly-commuting in every state.
pub fn is_permissive(spec: &SpecType, universe: &[Op], states: &[Value]) -> bool {
    let writes: Vec<&Op> = universe
        .iter()
        .filter(|o| is_write(spec, states, o))
        .collect();
    for (i, c) in writes.iter().enumerate() {
        for d in &writes[i..] {
            for s in states {
                if classify_pair(spec, s, c, d) == PairKind::Interfering {
                    return false;
                }
            }
        }
    }
    true
}

/// A standard argument domain + exploration used by the report binaries.
///
/// The domain includes `0` so that operations interacting with the
/// numeric initial states (counters at 0, CAS expecting 0) are reachable.
pub fn default_analysis(spec: &SpecType) -> (Vec<Op>, Vec<Value>) {
    let universe = spec.op_universe(&[0, 1]);
    let states = spec.reachable_states(&universe, 2);
    (universe, states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{
        compare_and_swap, counter_c1, counter_c3, fetch_and_add, max_register, op, queue_q1,
        reference_r1, register, set_s1, set_s2, test_and_set,
    };

    fn cn(spec: &SpecType, max_k: usize) -> usize {
        let (u, s) = default_analysis(spec);
        consensus_number_bounded(spec, &u, &s, max_k)
    }

    #[test]
    fn registers_have_consensus_number_one() {
        assert_eq!(cn(&register(), 3), 1);
    }

    #[test]
    fn max_register_is_cn1() {
        // §3.1: the max-register is in CN₁ despite being update-heavy.
        assert_eq!(cn(&max_register(), 3), 1);
    }

    #[test]
    fn test_and_set_is_cn2() {
        assert_eq!(cn(&test_and_set(), 4), 2);
    }

    #[test]
    fn fetch_and_add_is_cn2() {
        assert_eq!(cn(&fetch_and_add(), 4), 2);
    }

    #[test]
    fn readable_queue_saturates_consensus_bounds() {
        // Theorem 1 presumes a *readable* type: its construction lets a
        // thread read the whole object state after its operation. A
        // readable queue solves consensus among any number of threads
        // (everyone offers, the head is the winner), so the bounded
        // estimate saturates max_k. Herlihy's classic CN(queue) = 2 is
        // for the non-readable enqueue/dequeue interface.
        assert_eq!(cn(&queue_q1(), 4), 4);
    }

    #[test]
    fn two_polls_distinguish_two_classes() {
        // The enqueue/dequeue core alone still reaches CN >= 2: two polls
        // on a non-empty queue cannot be ordered consistently.
        let q = queue_q1();
        let g = crate::graph::IndistGraph::build(
            &q,
            &[op("poll", &[]), op("poll", &[])],
            &Value::seq_of(&[1, 2]),
        );
        assert_eq!(g.class_count(), 2);
    }

    #[test]
    fn cas_exceeds_small_bounds() {
        // CAS has infinite consensus number: with k distinct proposals
        // (cas(0, 1..k)) every bound is saturated. The universe supplies
        // one distinct written value per potential winner.
        let cas = compare_and_swap();
        let states = vec![Value::Int(0)];
        for k in 2..=4 {
            let universe: Vec<Op> = (1..=k as i64).map(|v| op("cas", &[0, v])).collect();
            assert_eq!(
                consensus_number_bounded(&cas, &universe, &states, k),
                k,
                "k = {k}"
            );
        }
    }

    #[test]
    fn full_counter_is_cn2_blind_counter_is_cn1() {
        assert_eq!(cn(&counter_c1(), 4), 2);
        assert_eq!(cn(&counter_c3(), 3), 1);
    }

    #[test]
    fn set_s1_has_consensus_power_s2_does_not() {
        // §4.1: "S2 is in CN₁. On the contrary, the write operations of S1
        // both have consensus power."
        assert_eq!(cn(&set_s1(), 3), 2);
        assert_eq!(cn(&set_s2(), 3), 1);
    }

    #[test]
    fn add_of_s1_has_consensus_power() {
        let s1 = set_s1();
        let states = vec![Value::empty_set()];
        assert!(has_consensus_power(&s1, &[op("add", &[1])], &states));
        let s2 = set_s2();
        assert!(!has_consensus_power(&s2, &[op("add", &[1])], &states));
    }

    #[test]
    fn register_writes_are_overwriting() {
        let r = register();
        let k = classify_pair(&r, &Value::Int(0), &op("write", &[1]), &op("write", &[2]));
        assert_eq!(k, PairKind::Overwriting);
    }

    #[test]
    fn max_register_writes_weakly_commute_or_overwrite() {
        let mr = max_register();
        let k = classify_pair(
            &mr,
            &Value::Int(0),
            &op("write_max", &[1]),
            &op("write_max", &[2]),
        );
        assert!(matches!(
            k,
            PairKind::Overwriting | PairKind::WeaklyCommuting
        ));
    }

    #[test]
    fn tas_pair_is_interfering_free_but_permissive_overall() {
        // test_and_set pairs: the winner notices order, but the state is
        // the same and the *second* application is overwritten… classify:
        let t = test_and_set();
        let k = classify_pair(
            &t,
            &Value::Bool(false),
            &op("test_and_set", &[]),
            &op("test_and_set", &[]),
        );
        // TAS responses depend on the order, states agree, neither is
        // blind to the other => interfering (CN 2), as expected.
        assert_eq!(k, PairKind::Interfering);
    }

    #[test]
    fn permissiveness_matches_cn1() {
        let cases: Vec<(SpecType, bool)> = vec![
            (register(), true),
            (max_register(), true),
            (counter_c3(), true),
            (set_s2(), true),
            (counter_c1(), false),
            (set_s1(), false),
            (queue_q1(), false),
            (test_and_set(), false),
            (compare_and_swap(), false),
            (reference_r1(), true),
        ];
        for (spec, expect) in cases {
            let (u, s) = default_analysis(&spec);
            assert_eq!(
                is_permissive(&spec, &u, &s),
                expect,
                "permissiveness of {}",
                crate::dtype::DataType::name(&spec)
            );
        }
    }

    #[test]
    fn corollary1_agreement() {
        // Corollary 1: readable T is CN₁ iff permissive. Cross-check the
        // two independent procedures on the whole catalogue.
        for spec in crate::types::table1() {
            let (u, s) = default_analysis(&spec);
            let perm = is_permissive(&spec, &u, &s);
            let one = consensus_number_bounded(&spec, &u, &s, 3) == 1;
            assert_eq!(
                perm,
                one,
                "Corollary 1 violated for {}",
                crate::dtype::DataType::name(&spec)
            );
        }
    }
}
