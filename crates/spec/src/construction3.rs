//! Construction 3 — Proposition 4's invisible right-movers, executable.
//!
//! The proof of Proposition 4 implements an object over a shared
//! announce queue: an operation that is **not** a right-mover announces
//! itself by appending to the queue and computes its response from the
//! prefix before it; a **right-mover** announces nothing — it observes
//! the queue's current end, replays that prefix on a local copy, applies
//! itself locally and returns. Right-movers are thereby *invisible*
//! (they never write shared state), and the construction is linearizable:
//! announcers linearize at their append, right-movers at their
//! observation.
//!
//! This module executes the construction across **every schedule** of
//! the announce/observe and compute steps, records the resulting
//! concurrent history, and (in tests) certifies it against the
//! sequential specification with the Wing–Gong checker — a mechanical
//! verification of the proposition's constructive half on concrete
//! objects.

use crate::dtype::DataType;
use crate::lin::Completed;

/// How an operation participates in Construction 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Not a right-mover: appends itself to the shared announce queue.
    Announcer,
    /// A right-mover: reads the queue's end, stays invisible.
    RightMover,
}

/// One thread's operation with its role.
#[derive(Clone, Debug)]
pub struct Assigned<O> {
    /// The operation.
    pub op: O,
    /// Its role (derive it from a mover audit; see the tests).
    pub role: Role,
}

/// The histories produced by running the construction over every
/// schedule.
#[derive(Clone, Debug)]
pub struct ConstructionRuns<T: DataType> {
    /// One concurrent history per schedule.
    pub histories: Vec<Vec<Completed<T>>>,
    /// Number of shared-queue writes per schedule (must equal the number
    /// of announcers — right-movers are invisible).
    pub shared_writes: usize,
}

/// Enumerate every interleaving of the per-thread step pairs
/// (announce/observe first, compute second).
fn schedules(k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut remaining = vec![2u8; k];
    let mut cur = Vec::with_capacity(2 * k);
    fn rec(remaining: &mut [u8], cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if remaining.iter().all(|&r| r == 0) {
            out.push(cur.clone());
            return;
        }
        for t in 0..remaining.len() {
            if remaining[t] > 0 {
                remaining[t] -= 1;
                cur.push(t);
                rec(remaining, cur, out);
                cur.pop();
                remaining[t] += 1;
            }
        }
    }
    rec(&mut remaining, &mut cur, &mut out);
    out
}

/// Run Construction 3 for one operation per thread from `state`, over
/// every schedule of the announce/observe and compute steps.
pub fn run_invisible_readers<T: DataType>(
    dtype: &T,
    bag: &[Assigned<T::Op>],
    state: &T::State,
) -> ConstructionRuns<T> {
    let k = bag.len();
    let mut histories = Vec::new();
    for schedule in schedules(k) {
        // The shared announce queue (indices into `bag`).
        let mut queue: Vec<usize> = Vec::new();
        // Per-thread bookkeeping.
        let mut my_prefix: Vec<Option<usize>> = vec![None; k]; // ops before me / observed end
        let mut step_done = vec![0u8; k];
        let mut invoke = vec![0u64; k];
        let mut respond = vec![0u64; k];
        let mut responses: Vec<Option<T::Ret>> = vec![None; k];

        for (time, &t) in schedule.iter().enumerate() {
            let time = time as u64 + 1;
            if step_done[t] == 0 {
                // Step 1: announce or observe.
                invoke[t] = time;
                match bag[t].role {
                    Role::Announcer => {
                        my_prefix[t] = Some(queue.len());
                        queue.push(t);
                    }
                    Role::RightMover => {
                        my_prefix[t] = Some(queue.len());
                    }
                }
                step_done[t] = 1;
            } else {
                // Step 2: compute from the frozen prefix.
                let prefix = my_prefix[t].expect("step 1 ran");
                let mut s = state.clone();
                for &announced in &queue[..prefix] {
                    let (s2, _) = dtype.apply(&s, &bag[announced].op);
                    s = s2;
                }
                let (_, r) = dtype.apply(&s, &bag[t].op);
                responses[t] = Some(r);
                respond[t] = time;
                step_done[t] = 2;
            }
        }

        let history: Vec<Completed<T>> = (0..k)
            .map(|t| {
                Completed::new(
                    bag[t].op.clone(),
                    responses[t].clone().expect("computed"),
                    invoke[t],
                    respond[t],
                )
            })
            .collect();
        histories.push(history);
    }
    ConstructionRuns {
        histories,
        shared_writes: bag.iter().filter(|a| a.role == Role::Announcer).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::IndistGraph;
    use crate::lin::is_linearizable;
    use crate::movers::right_moves_in_graph;
    use crate::types::{counter_c1, counter_c3, op, register};
    use crate::value::Value;
    use crate::SpecType;

    /// Derive roles with the bounded mover audit: right-mover iff the
    /// instance right-moves against every other bag member from `state`.
    fn assign(
        spec: &SpecType,
        bag: &[crate::dtype::Op],
        state: &Value,
    ) -> Vec<Assigned<crate::dtype::Op>> {
        bag.iter()
            .enumerate()
            .map(|(i, o)| {
                let mut mover = true;
                for (j, other) in bag.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let pair = vec![o.clone(), other.clone()];
                    let g = IndistGraph::build(spec, &pair, state);
                    mover &= right_moves_in_graph(&g, 0);
                }
                Assigned {
                    op: o.clone(),
                    role: if mover {
                        Role::RightMover
                    } else {
                        Role::Announcer
                    },
                }
            })
            .collect()
    }

    fn certify(spec: &SpecType, bag: &[crate::dtype::Op], state: &Value) -> usize {
        let assigned = assign(spec, bag, state);
        let runs = run_invisible_readers(spec, &assigned, state);
        for h in &runs.histories {
            assert!(
                is_linearizable(spec, state, h),
                "history not linearizable: {h:?}"
            );
        }
        // Invisibility: right-movers never wrote shared state.
        assigned
            .iter()
            .filter(|a| a.role == Role::RightMover)
            .count()
    }

    #[test]
    fn counter_with_returning_incs_and_reads() {
        // C1: inc returns the new value → announcer; get → right-mover.
        let c1 = counter_c1();
        let bag = vec![op("inc", &[]), op("inc", &[]), op("get", &[])];
        let invisible = certify(&c1, &bag, &Value::Int(0));
        assert_eq!(invisible, 1, "get must be classified invisible");
    }

    #[test]
    fn blind_counter_reads_are_invisible_incs_still_announce() {
        // Blind incs are left-movers, not right-movers: they change what
        // later reads see, so they announce; only the read is invisible.
        let c3 = counter_c3();
        let bag = vec![op("inc", &[]), op("inc", &[]), op("get", &[])];
        let assigned = assign(&c3, &bag, &Value::Int(0));
        assert_eq!(
            assigned
                .iter()
                .filter(|a| a.role == Role::RightMover)
                .count(),
            1,
            "only get is a right-mover"
        );
        let runs = run_invisible_readers(&c3, &assigned, &Value::Int(0));
        assert_eq!(runs.shared_writes, 2);
        for h in &runs.histories {
            assert!(is_linearizable(&c3, &Value::Int(0), h));
        }
    }

    #[test]
    fn all_reads_bag_runs_with_zero_shared_writes() {
        // A read-only bag is entirely invisible (Prop. 4's ideal case).
        let c3 = counter_c3();
        let bag = vec![op("get", &[]), op("get", &[]), op("get", &[])];
        let assigned = assign(&c3, &bag, &Value::Int(0));
        let runs = run_invisible_readers(&c3, &assigned, &Value::Int(0));
        assert_eq!(runs.shared_writes, 0);
        for h in &runs.histories {
            assert!(is_linearizable(&c3, &Value::Int(0), h));
        }
    }

    #[test]
    fn register_write_announces_read_does_not() {
        let r = register();
        let bag = vec![op("write", &[5]), op("read", &[]), op("read", &[])];
        let invisible = certify(&r, &bag, &Value::Int(0));
        assert_eq!(invisible, 2, "both reads invisible");
    }

    #[test]
    fn two_writers_one_reader_register() {
        // Blind overwriting writes are NOT right-movers against each
        // other (the final state differs), so both announce; the read
        // stays invisible and every schedule linearizes.
        let r = register();
        let bag = vec![op("write", &[1]), op("write", &[2]), op("read", &[])];
        let invisible = certify(&r, &bag, &Value::Int(0));
        assert_eq!(invisible, 1);
    }

    #[test]
    fn schedules_cover_all_interleavings() {
        assert_eq!(schedules(2).len(), 6);
        assert_eq!(schedules(3).len(), 90);
    }
}
