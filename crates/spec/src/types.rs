//! The adjusted data types of Table 1, plus classic synchronization
//! objects used in §3.1 (registers, max-registers, test-and-set,
//! fetch-and-add, compare-and-swap).
//!
//! Naming follows the paper:
//!
//! * counters `C1` (full), `C2` (`rmw` voided, `reset` deleted),
//!   `C3` (`C2` with blind `inc`);
//! * sets `S1` (full), `S2` (blind `add`/`remove`), `S3` (`remove` voided);
//! * queue `Q1` (`offer`/`poll`/`contains`);
//! * references `R1` (read/write), `R2` (write-once);
//! * maps `M1` (full), `M2` (blind `put`/`remove`).

use crate::dtype::{Op, OpSig, SpecType};
use crate::value::Value;
use std::collections::BTreeMap;

/// Convenience constructor for an operation instance.
pub fn op(name: &'static str, args: &[i64]) -> Op {
    Op {
        name,
        args: args.to_vec(),
    }
}

fn pre_true(_: &Value, _: &[i64]) -> bool {
    true
}

fn pre_false(_: &Value, _: &[i64]) -> bool {
    false
}

// ---------------------------------------------------------------- counters

fn ctr_inc_effect(s: &Value, _: &[i64]) -> Value {
    Value::Int(s.as_int().unwrap_or(0) + 1)
}

fn ctr_inc_ret(s: &Value, _: &[i64]) -> Value {
    Value::Int(s.as_int().unwrap_or(0) + 1)
}

fn ctr_get_ret(s: &Value, _: &[i64]) -> Value {
    s.clone()
}

fn ctr_reset_effect(_: &Value, _: &[i64]) -> Value {
    Value::Int(0)
}

/// `rmw(f, x)` from Table 1, modelled as `f(s, x) = s + x` (a
/// fetch-and-add-style read-modify-write, the canonical representative).
fn ctr_rmw_effect(s: &Value, a: &[i64]) -> Value {
    Value::Int(s.as_int().unwrap_or(0) + a[0])
}

fn ctr_rmw_ret(s: &Value, a: &[i64]) -> Value {
    Value::Int(s.as_int().unwrap_or(0) + a[0])
}

/// Counter `C1`: the full interface.
///
/// `[true] rmw(f,x) [s' = f(s,x) ∧ r = s']`, `[true] inc() [s' = s+1 ∧ r = s']`,
/// `[true] get() [r = s]`, `[true] reset() [s' = 0]`.
pub fn counter_c1() -> SpecType {
    SpecType::new(
        "C1",
        Value::Int(0),
        vec![
            OpSig {
                name: "rmw",
                arity: 1,
                pre: pre_true,
                effect: Some(ctr_rmw_effect),
                ret: Some(ctr_rmw_ret),
            },
            OpSig {
                name: "inc",
                arity: 0,
                pre: pre_true,
                effect: Some(ctr_inc_effect),
                ret: Some(ctr_inc_ret),
            },
            OpSig {
                name: "get",
                arity: 0,
                pre: pre_true,
                effect: None,
                ret: Some(ctr_get_ret),
            },
            OpSig {
                name: "reset",
                arity: 0,
                pre: pre_true,
                effect: Some(ctr_reset_effect),
                ret: None,
            },
        ],
    )
}

/// Counter `C2`: `rmw`'s postcondition is voided and `reset` is deleted
/// (precondition `false`); `inc` still returns the new value.
pub fn counter_c2() -> SpecType {
    SpecType::new(
        "C2",
        Value::Int(0),
        vec![
            OpSig {
                name: "rmw",
                arity: 1,
                pre: pre_true,
                effect: None,
                ret: None,
            },
            OpSig {
                name: "inc",
                arity: 0,
                pre: pre_true,
                effect: Some(ctr_inc_effect),
                ret: Some(ctr_inc_ret),
            },
            OpSig {
                name: "get",
                arity: 0,
                pre: pre_true,
                effect: None,
                ret: Some(ctr_get_ret),
            },
            OpSig {
                name: "reset",
                arity: 0,
                pre: pre_false,
                effect: Some(ctr_reset_effect),
                ret: None,
            },
        ],
    )
}

/// Counter `C3`: like `C2` but `inc` is blind (return value voided).
/// This is the increment-only counter implemented by
/// `CounterIncrementOnly` in the DEGO library.
pub fn counter_c3() -> SpecType {
    SpecType::new(
        "C3",
        Value::Int(0),
        vec![
            OpSig {
                name: "rmw",
                arity: 1,
                pre: pre_true,
                effect: None,
                ret: None,
            },
            OpSig {
                name: "inc",
                arity: 0,
                pre: pre_true,
                effect: Some(ctr_inc_effect),
                ret: None,
            },
            OpSig {
                name: "get",
                arity: 0,
                pre: pre_true,
                effect: None,
                ret: Some(ctr_get_ret),
            },
            OpSig {
                name: "reset",
                arity: 0,
                pre: pre_false,
                effect: Some(ctr_reset_effect),
                ret: None,
            },
        ],
    )
}

// -------------------------------------------------------------------- sets

fn set_add_effect(s: &Value, a: &[i64]) -> Value {
    match s {
        Value::Set(set) => {
            let mut set = set.clone();
            set.insert(a[0]);
            Value::Set(set)
        }
        _ => Value::set_of(&[a[0]]),
    }
}

fn set_add_ret(s: &Value, a: &[i64]) -> Value {
    match s {
        Value::Set(set) => Value::Bool(!set.contains(&a[0])),
        _ => Value::Bool(true),
    }
}

fn set_remove_effect(s: &Value, a: &[i64]) -> Value {
    match s {
        Value::Set(set) => {
            let mut set = set.clone();
            set.remove(&a[0]);
            Value::Set(set)
        }
        _ => Value::empty_set(),
    }
}

fn set_remove_ret(s: &Value, a: &[i64]) -> Value {
    match s {
        Value::Set(set) => Value::Bool(set.contains(&a[0])),
        _ => Value::Bool(false),
    }
}

fn set_contains_ret(s: &Value, a: &[i64]) -> Value {
    match s {
        Value::Set(set) => Value::Bool(set.contains(&a[0])),
        _ => Value::Bool(false),
    }
}

/// Set `S1`: the full interface — `add`/`remove` report whether they
/// changed the set, `contains` reads.
pub fn set_s1() -> SpecType {
    SpecType::new(
        "S1",
        Value::empty_set(),
        vec![
            OpSig {
                name: "add",
                arity: 1,
                pre: pre_true,
                effect: Some(set_add_effect),
                ret: Some(set_add_ret),
            },
            OpSig {
                name: "remove",
                arity: 1,
                pre: pre_true,
                effect: Some(set_remove_effect),
                ret: Some(set_remove_ret),
            },
            OpSig {
                name: "contains",
                arity: 1,
                pre: pre_true,
                effect: None,
                ret: Some(set_contains_ret),
            },
        ],
    )
}

/// Set `S2`: `add` and `remove` are blind (return values voided).
pub fn set_s2() -> SpecType {
    SpecType::new(
        "S2",
        Value::empty_set(),
        vec![
            OpSig {
                name: "add",
                arity: 1,
                pre: pre_true,
                effect: Some(set_add_effect),
                ret: None,
            },
            OpSig {
                name: "remove",
                arity: 1,
                pre: pre_true,
                effect: Some(set_remove_effect),
                ret: None,
            },
            OpSig {
                name: "contains",
                arity: 1,
                pre: pre_true,
                effect: None,
                ret: Some(set_contains_ret),
            },
        ],
    )
}

/// Set `S3`: like `S2` with `remove` additionally voided (its whole
/// postcondition is `true`, i.e. the method is effectively deleted).
pub fn set_s3() -> SpecType {
    SpecType::new(
        "S3",
        Value::empty_set(),
        vec![
            OpSig {
                name: "add",
                arity: 1,
                pre: pre_true,
                effect: Some(set_add_effect),
                ret: None,
            },
            OpSig {
                name: "remove",
                arity: 1,
                pre: pre_true,
                effect: None,
                ret: None,
            },
            OpSig {
                name: "contains",
                arity: 1,
                pre: pre_true,
                effect: None,
                ret: Some(set_contains_ret),
            },
        ],
    )
}

// ------------------------------------------------------------------ queues

fn q_offer_effect(s: &Value, a: &[i64]) -> Value {
    match s {
        Value::Seq(q) => {
            let mut q = q.clone();
            q.push(a[0]);
            Value::Seq(q)
        }
        _ => Value::seq_of(&[a[0]]),
    }
}

fn q_poll_effect(s: &Value, _: &[i64]) -> Value {
    match s {
        Value::Seq(q) if !q.is_empty() => Value::Seq(q[1..].to_vec()),
        _ => s.clone(),
    }
}

fn q_poll_ret(s: &Value, _: &[i64]) -> Value {
    match s {
        Value::Seq(q) if !q.is_empty() => Value::Int(q[0]),
        _ => Value::Bottom,
    }
}

fn q_contains_ret(s: &Value, a: &[i64]) -> Value {
    match s {
        Value::Seq(q) => Value::Bool(q.contains(&a[0])),
        _ => Value::Bool(false),
    }
}

/// Queue `Q1`: `offer` is blind, `poll` returns/removes the head (`⊥` on
/// empty), `contains` reads.
pub fn queue_q1() -> SpecType {
    SpecType::new(
        "Q1",
        Value::empty_seq(),
        vec![
            OpSig {
                name: "offer",
                arity: 1,
                pre: pre_true,
                effect: Some(q_offer_effect),
                ret: None,
            },
            OpSig {
                name: "poll",
                arity: 0,
                pre: pre_true,
                effect: Some(q_poll_effect),
                ret: Some(q_poll_ret),
            },
            OpSig {
                name: "contains",
                arity: 1,
                pre: pre_true,
                effect: None,
                ret: Some(q_contains_ret),
            },
        ],
    )
}

// -------------------------------------------------------------- references

fn ref_set_effect(_: &Value, a: &[i64]) -> Value {
    Value::Int(a[0])
}

fn ref_get_ret(s: &Value, _: &[i64]) -> Value {
    s.clone()
}

fn ref_set_once_pre(s: &Value, _: &[i64]) -> bool {
    s.is_bottom()
}

/// Reference `R1`: plain read/write register over addresses.
pub fn reference_r1() -> SpecType {
    SpecType::new(
        "R1",
        Value::Bottom,
        vec![
            OpSig {
                name: "set",
                arity: 1,
                pre: pre_true,
                effect: Some(ref_set_effect),
                ret: None,
            },
            OpSig {
                name: "get",
                arity: 0,
                pre: pre_true,
                effect: None,
                ret: Some(ref_get_ret),
            },
        ],
    )
}

/// Reference `R2`: write-once — `set` has the strengthened precondition
/// `s = ⊥`. This is the type of `AtomicWriteOnceReference` (Listing 1).
pub fn reference_r2() -> SpecType {
    SpecType::new(
        "R2",
        Value::Bottom,
        vec![
            OpSig {
                name: "set",
                arity: 1,
                pre: ref_set_once_pre,
                effect: Some(ref_set_effect),
                ret: None,
            },
            OpSig {
                name: "get",
                arity: 0,
                pre: pre_true,
                effect: None,
                ret: Some(ref_get_ret),
            },
        ],
    )
}

// -------------------------------------------------------------------- maps

fn map_state(s: &Value) -> BTreeMap<i64, i64> {
    match s {
        Value::Map(m) => m.clone(),
        _ => BTreeMap::new(),
    }
}

fn map_put_effect(s: &Value, a: &[i64]) -> Value {
    let mut m = map_state(s);
    m.insert(a[0], a[1]);
    Value::Map(m)
}

fn map_put_ret(s: &Value, a: &[i64]) -> Value {
    map_state(s)
        .get(&a[0])
        .map(|v| Value::Int(*v))
        .unwrap_or(Value::Bottom)
}

fn map_remove_effect(s: &Value, a: &[i64]) -> Value {
    let mut m = map_state(s);
    m.remove(&a[0]);
    Value::Map(m)
}

fn map_remove_ret(s: &Value, a: &[i64]) -> Value {
    map_state(s)
        .get(&a[0])
        .map(|v| Value::Int(*v))
        .unwrap_or(Value::Bottom)
}

fn map_contains_ret(s: &Value, a: &[i64]) -> Value {
    Value::Bool(map_state(s).contains_key(&a[0]))
}

/// Map `M1`: full interface — `put`/`remove` return the previous value.
pub fn map_m1() -> SpecType {
    SpecType::new(
        "M1",
        Value::empty_map(),
        vec![
            OpSig {
                name: "put",
                arity: 2,
                pre: pre_true,
                effect: Some(map_put_effect),
                ret: Some(map_put_ret),
            },
            OpSig {
                name: "remove",
                arity: 1,
                pre: pre_true,
                effect: Some(map_remove_effect),
                ret: Some(map_remove_ret),
            },
            OpSig {
                name: "contains",
                arity: 1,
                pre: pre_true,
                effect: None,
                ret: Some(map_contains_ret),
            },
        ],
    )
}

/// Map `M2`: `put` and `remove` are blind. Implemented in DEGO by the
/// extended-segmentation maps.
pub fn map_m2() -> SpecType {
    SpecType::new(
        "M2",
        Value::empty_map(),
        vec![
            OpSig {
                name: "put",
                arity: 2,
                pre: pre_true,
                effect: Some(map_put_effect),
                ret: None,
            },
            OpSig {
                name: "remove",
                arity: 1,
                pre: pre_true,
                effect: Some(map_remove_effect),
                ret: None,
            },
            OpSig {
                name: "contains",
                arity: 1,
                pre: pre_true,
                effect: None,
                ret: Some(map_contains_ret),
            },
        ],
    )
}

// --------------------------------------- classic synchronization objects

fn reg_write_effect(_: &Value, a: &[i64]) -> Value {
    Value::Int(a[0])
}

fn reg_read_ret(s: &Value, _: &[i64]) -> Value {
    s.clone()
}

/// A plain read/write register (consensus number 1).
pub fn register() -> SpecType {
    SpecType::new(
        "Register",
        Value::Int(0),
        vec![
            OpSig {
                name: "write",
                arity: 1,
                pre: pre_true,
                effect: Some(reg_write_effect),
                ret: None,
            },
            OpSig {
                name: "read",
                arity: 0,
                pre: pre_true,
                effect: None,
                ret: Some(reg_read_ret),
            },
        ],
    )
}

fn maxreg_write_effect(s: &Value, a: &[i64]) -> Value {
    Value::Int(s.as_int().unwrap_or(0).max(a[0]))
}

/// A max-register: `write_max(x)` raises the state to `max(s, x)`;
/// `read` returns the maximum so far. In `CN₁` (§3.1) yet cheap to scale,
/// unlike snapshots — the motivating example for why the consensus number
/// is a poor scalability indicator.
pub fn max_register() -> SpecType {
    SpecType::new(
        "MaxRegister",
        Value::Int(0),
        vec![
            OpSig {
                name: "write_max",
                arity: 1,
                pre: pre_true,
                effect: Some(maxreg_write_effect),
                ret: None,
            },
            OpSig {
                name: "read",
                arity: 0,
                pre: pre_true,
                effect: None,
                ret: Some(reg_read_ret),
            },
        ],
    )
}

fn tas_effect(_: &Value, _: &[i64]) -> Value {
    Value::Bool(true)
}

fn tas_ret(s: &Value, _: &[i64]) -> Value {
    // Returns the *previous* value: false exactly for the winner.
    match s {
        Value::Bool(b) => Value::Bool(*b),
        _ => Value::Bool(false),
    }
}

/// Test-and-set (consensus number 2).
pub fn test_and_set() -> SpecType {
    SpecType::new(
        "TestAndSet",
        Value::Bool(false),
        vec![
            OpSig {
                name: "test_and_set",
                arity: 0,
                pre: pre_true,
                effect: Some(tas_effect),
                ret: Some(tas_ret),
            },
            OpSig {
                name: "read",
                arity: 0,
                pre: pre_true,
                effect: None,
                ret: Some(reg_read_ret),
            },
        ],
    )
}

fn faa_effect(s: &Value, a: &[i64]) -> Value {
    Value::Int(s.as_int().unwrap_or(0) + a[0])
}

fn faa_ret(s: &Value, _: &[i64]) -> Value {
    s.clone()
}

/// Fetch-and-add (consensus number 2).
pub fn fetch_and_add() -> SpecType {
    SpecType::new(
        "FetchAndAdd",
        Value::Int(0),
        vec![
            OpSig {
                name: "faa",
                arity: 1,
                pre: pre_true,
                effect: Some(faa_effect),
                ret: Some(faa_ret),
            },
            OpSig {
                name: "read",
                arity: 0,
                pre: pre_true,
                effect: None,
                ret: Some(reg_read_ret),
            },
        ],
    )
}

fn cas_effect(s: &Value, a: &[i64]) -> Value {
    if s.as_int() == Some(a[0]) {
        Value::Int(a[1])
    } else {
        s.clone()
    }
}

fn cas_ret(s: &Value, a: &[i64]) -> Value {
    Value::Bool(s.as_int() == Some(a[0]))
}

/// Compare-and-swap (infinite consensus number).
pub fn compare_and_swap() -> SpecType {
    SpecType::new(
        "CompareAndSwap",
        Value::Int(0),
        vec![
            OpSig {
                name: "cas",
                arity: 2,
                pre: pre_true,
                effect: Some(cas_effect),
                ret: Some(cas_ret),
            },
            OpSig {
                name: "read",
                arity: 0,
                pre: pre_true,
                effect: None,
                ret: Some(reg_read_ret),
            },
        ],
    )
}

/// All Table 1 specs, by name, for driving sweeps in tests and reports.
pub fn table1() -> Vec<SpecType> {
    vec![
        counter_c1(),
        counter_c2(),
        counter_c3(),
        set_s1(),
        set_s2(),
        set_s3(),
        queue_q1(),
        reference_r1(),
        reference_r2(),
        map_m1(),
        map_m2(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DataType;

    #[test]
    fn counter_c1_semantics() {
        let c = counter_c1();
        let (s, r) = c.apply(&Value::Int(4), &op("inc", &[]));
        assert_eq!((s, r), (Value::Int(5), Value::Int(5)));
        let (s, r) = c.apply(&Value::Int(4), &op("get", &[]));
        assert_eq!((s, r), (Value::Int(4), Value::Int(4)));
        let (s, r) = c.apply(&Value::Int(4), &op("reset", &[]));
        assert_eq!((s, r), (Value::Int(0), Value::Bottom));
        let (s, r) = c.apply(&Value::Int(4), &op("rmw", &[3]));
        assert_eq!((s, r), (Value::Int(7), Value::Int(7)));
    }

    #[test]
    fn counter_c2_voids_rmw_and_deletes_reset() {
        let c = counter_c2();
        let (s, r) = c.apply(&Value::Int(4), &op("rmw", &[3]));
        assert_eq!((s, r), (Value::Int(4), Value::Bottom));
        let (s, r) = c.apply(&Value::Int(4), &op("reset", &[]));
        assert_eq!((s, r), (Value::Int(4), Value::Bottom));
        // inc still returns the new value in C2.
        let (_, r) = c.apply(&Value::Int(4), &op("inc", &[]));
        assert_eq!(r, Value::Int(5));
    }

    #[test]
    fn counter_c3_inc_is_blind() {
        let c = counter_c3();
        let (s, r) = c.apply(&Value::Int(4), &op("inc", &[]));
        assert_eq!((s, r), (Value::Int(5), Value::Bottom));
    }

    #[test]
    fn set_s1_reports_membership_changes() {
        let s1 = set_s1();
        let (s, r) = s1.apply(&Value::empty_set(), &op("add", &[7]));
        assert_eq!(r, Value::Bool(true));
        let (s, r) = s1.apply(&s, &op("add", &[7]));
        assert_eq!(r, Value::Bool(false));
        let (s, r) = s1.apply(&s, &op("remove", &[7]));
        assert_eq!(r, Value::Bool(true));
        assert_eq!(s, Value::empty_set());
        let (_, r) = s1.apply(&s, &op("remove", &[7]));
        assert_eq!(r, Value::Bool(false));
    }

    #[test]
    fn set_s3_remove_is_a_noop() {
        let s3 = set_s3();
        let st = Value::set_of(&[1, 2]);
        let (s, r) = s3.apply(&st, &op("remove", &[1]));
        assert_eq!(s, st);
        assert_eq!(r, Value::Bottom);
    }

    #[test]
    fn queue_is_fifo_and_poll_on_empty_is_bottom() {
        let q = queue_q1();
        let (s, _) = q.apply_all(&Value::empty_seq(), &[op("offer", &[1]), op("offer", &[2])]);
        let (s, r) = q.apply(&s, &op("poll", &[]));
        assert_eq!(r, Value::Int(1));
        let (s, r) = q.apply(&s, &op("poll", &[]));
        assert_eq!(r, Value::Int(2));
        let (_, r) = q.apply(&s, &op("poll", &[]));
        assert_eq!(r, Value::Bottom);
    }

    #[test]
    fn queue_contains_sees_queued_items() {
        let q = queue_q1();
        let (s, _) = q.apply(&Value::empty_seq(), &op("offer", &[9]));
        let (_, r) = q.apply(&s, &op("contains", &[9]));
        assert_eq!(r, Value::Bool(true));
        let (_, r) = q.apply(&s, &op("contains", &[4]));
        assert_eq!(r, Value::Bool(false));
    }

    #[test]
    fn reference_r2_is_write_once() {
        let r2 = reference_r2();
        let (s, _) = r2.apply(&Value::Bottom, &op("set", &[5]));
        assert_eq!(s, Value::Int(5));
        let (s2, r) = r2.apply(&s, &op("set", &[6]));
        assert_eq!(s2, Value::Int(5));
        assert_eq!(r, Value::Bottom);
        let (_, r) = r2.apply(&s, &op("get", &[]));
        assert_eq!(r, Value::Int(5));
    }

    #[test]
    fn map_m1_put_returns_previous_value() {
        let m = map_m1();
        let (s, r) = m.apply(&Value::empty_map(), &op("put", &[1, 10]));
        assert_eq!(r, Value::Bottom);
        let (s, r) = m.apply(&s, &op("put", &[1, 20]));
        assert_eq!(r, Value::Int(10));
        let (_, r) = m.apply(&s, &op("remove", &[1]));
        assert_eq!(r, Value::Int(20));
    }

    #[test]
    fn map_m2_is_blind() {
        let m = map_m2();
        let (s, r) = m.apply(&Value::empty_map(), &op("put", &[1, 10]));
        assert_eq!(r, Value::Bottom);
        assert_eq!(s, Value::map_of(&[(1, 10)]));
        let (s, r) = m.apply(&s, &op("remove", &[1]));
        assert_eq!(r, Value::Bottom);
        assert_eq!(s, Value::empty_map());
    }

    #[test]
    fn max_register_is_monotone() {
        let mr = max_register();
        let (s, _) = mr.apply_all(
            &Value::Int(0),
            &[op("write_max", &[5]), op("write_max", &[3])],
        );
        assert_eq!(s, Value::Int(5));
    }

    #[test]
    fn test_and_set_has_a_single_winner() {
        let t = test_and_set();
        let (s, r) = t.apply(&Value::Bool(false), &op("test_and_set", &[]));
        assert_eq!(r, Value::Bool(false)); // winner sees previous=false
        let (_, r) = t.apply(&s, &op("test_and_set", &[]));
        assert_eq!(r, Value::Bool(true)); // loser
    }

    #[test]
    fn cas_succeeds_only_on_match() {
        let c = compare_and_swap();
        let (s, r) = c.apply(&Value::Int(0), &op("cas", &[0, 5]));
        assert_eq!((s.clone(), r), (Value::Int(5), Value::Bool(true)));
        let (s2, r) = c.apply(&s, &op("cas", &[0, 9]));
        assert_eq!((s2, r), (Value::Int(5), Value::Bool(false)));
    }

    #[test]
    fn fetch_and_add_returns_previous() {
        let f = fetch_and_add();
        let (s, r) = f.apply(&Value::Int(3), &op("faa", &[2]));
        assert_eq!((s, r), (Value::Int(5), Value::Int(3)));
    }

    #[test]
    fn table1_is_complete() {
        let t = table1();
        let names: Vec<String> = t.iter().map(|x| x.name().to_string()).collect();
        for expected in [
            "C1", "C2", "C3", "S1", "S2", "S3", "Q1", "R1", "R2", "M1", "M2",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
    }
}
