//! Property-based tests of the DEGO structures against sequential
//! oracles and concurrency invariants.

use dego_core::{mpsc, CounterIncrementOnly, SegmentationKind, SegmentedHashMap, WriteOnceRef};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A scripted map operation.
#[derive(Clone, Debug)]
enum MapOp {
    Put(u8, u16),
    Remove(u8),
    Get(u8),
}

fn map_op() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (any::<u8>(), any::<u16>()).prop_map(|(k, v)| MapOp::Put(k, v)),
        any::<u8>().prop_map(MapOp::Remove),
        any::<u8>().prop_map(MapOp::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The SWMR hash map agrees with a BTreeMap oracle over any script.
    #[test]
    fn swmr_hash_map_matches_oracle(ops in proptest::collection::vec(map_op(), 1..200)) {
        let (mut w, r) = dego_core::swmr_hash::swmr_hash_map::<u8, u16>(4);
        let mut oracle = BTreeMap::new();
        for op in &ops {
            match *op {
                MapOp::Put(k, v) => {
                    prop_assert_eq!(w.insert(k, v), oracle.insert(k, v));
                }
                MapOp::Remove(k) => {
                    prop_assert_eq!(w.remove(&k), oracle.remove(&k));
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(r.get(&k), oracle.get(&k).copied());
                }
            }
        }
        prop_assert_eq!(w.len(), oracle.len());
        let mut seen = 0;
        r.for_each(|k, v| {
            assert_eq!(oracle.get(k), Some(v));
            seen += 1;
        });
        prop_assert_eq!(seen, oracle.len());
    }

    /// The SWMR skip list agrees with the oracle *and* iterates in key
    /// order.
    #[test]
    fn swmr_skip_list_matches_oracle(ops in proptest::collection::vec(map_op(), 1..200)) {
        let (mut w, r) = dego_core::swmr_skiplist::swmr_skip_list_map::<u8, u16>();
        let mut oracle = BTreeMap::new();
        for op in &ops {
            match *op {
                MapOp::Put(k, v) => {
                    prop_assert_eq!(w.insert(k, v), oracle.insert(k, v));
                }
                MapOp::Remove(k) => {
                    prop_assert_eq!(w.remove(&k), oracle.remove(&k));
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(r.get(&k), oracle.get(&k).copied());
                }
            }
        }
        prop_assert_eq!(r.first_key(), oracle.keys().next().copied());
        let mut keys = Vec::new();
        r.for_each(|k, v| {
            assert_eq!(oracle.get(k), Some(v));
            keys.push(*k);
        });
        let oracle_keys: Vec<u8> = oracle.keys().copied().collect();
        prop_assert_eq!(keys, oracle_keys);
    }

    /// The segmented map with partitioned scripts equals the union of
    /// per-partition oracles (single-threaded replay through real
    /// writers; the concurrent path is exercised by the loom-style
    /// multithread tests in the crate).
    #[test]
    fn segmented_map_matches_partitioned_oracle(
        ops in proptest::collection::vec(map_op(), 1..150),
    ) {
        let map = SegmentedHashMap::new(1, 64, SegmentationKind::Extended);
        let mut w = map.writer();
        let mut oracle: BTreeMap<u8, u16> = BTreeMap::new();
        for op in &ops {
            match *op {
                MapOp::Put(k, v) => {
                    w.put(k, v);
                    oracle.insert(k, v);
                }
                MapOp::Remove(k) => {
                    w.remove(&k);
                    oracle.remove(&k);
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(map.get(&k), oracle.get(&k).copied());
                }
            }
        }
        prop_assert_eq!(map.len(), oracle.len());
    }

    /// MPSC queue: any multiset of per-producer sequences is delivered
    /// exactly once, per-producer FIFO.
    #[test]
    fn mpsc_delivers_exactly_once_in_order(
        counts in proptest::collection::vec(1usize..60, 1..4),
    ) {
        let (p, mut c) = mpsc::queue::<(usize, usize)>();
        std::thread::scope(|s| {
            for (producer, &n) in counts.iter().enumerate() {
                let p = p.clone();
                s.spawn(move || {
                    for i in 0..n {
                        p.offer((producer, i));
                    }
                });
            }
        });
        let total: usize = counts.iter().sum();
        let mut last = vec![None::<usize>; counts.len()];
        let mut seen = 0;
        while let Some((producer, i)) = c.poll() {
            if let Some(prev) = last[producer] {
                prop_assert!(i > prev, "producer {} reordered", producer);
            }
            last[producer] = Some(i);
            seen += 1;
        }
        prop_assert_eq!(seen, total);
    }

    /// Write-once: whatever the race, exactly one proposal wins and it
    /// is one of the proposed values.
    #[test]
    fn write_once_single_winner(proposals in proptest::collection::vec(any::<u32>(), 2..8)) {
        let r = Arc::new(WriteOnceRef::new());
        let wins = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for &v in &proposals {
                let r = Arc::clone(&r);
                let wins = &wins;
                s.spawn(move || {
                    if r.try_set(v) {
                        wins.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        prop_assert_eq!(wins.load(std::sync::atomic::Ordering::Relaxed), 1);
        let winner = *r.get().expect("someone won");
        prop_assert!(proposals.contains(&winner));
    }

    /// The counter is exact for any vector of per-thread increments.
    #[test]
    fn counter_is_exact(counts in proptest::collection::vec(0u64..2_000, 1..6)) {
        let c = CounterIncrementOnly::new(counts.len());
        std::thread::scope(|s| {
            for &n in &counts {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    let cell = c.cell();
                    for _ in 0..n {
                        cell.inc();
                    }
                });
            }
        });
        prop_assert_eq!(c.get(), counts.iter().sum::<u64>());
    }
}
