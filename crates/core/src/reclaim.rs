//! Epoch-reclamation helpers.
//!
//! The concurrent structures retire removed nodes and replaced values
//! through `crossbeam-epoch`. Where the JVM collects that garbage on
//! dedicated GC threads, epoch reclamation piggybacks on later pinning
//! operations — including those of a *subsequent* benchmark trial, which
//! would then be charged for its predecessor's garbage. Benchmarks call
//! [`drain`] between trials to settle outstanding deferred destructions.

use crossbeam_epoch as epoch;

/// Advance the epoch and collect deferred garbage, `rounds` times.
///
/// Each round pins the current thread and flushes/collects a batch of
/// retired objects from the global queue. A few thousand rounds reclaim
/// millions of small deferred items in a few milliseconds.
pub fn drain(rounds: usize) {
    for _ in 0..rounds {
        epoch::pin().flush();
    }
}

/// A writer-local bin of retired raw pointers, reclaimed through the
/// epoch in batches.
///
/// `defer_destroy` per retired object seals an epoch bag every ~62
/// retirements and hammers the global garbage queue, which measurably
/// throttles write-heavy workloads. A single-writer structure can
/// instead collect its retired pointers locally and issue **one**
/// deferred destruction per batch: the epoch guarantee is identical
/// (every pointer was unlinked before the flush's pin, so any reader
/// still using it pinned earlier and blocks the batch's epoch).
#[derive(Debug)]
pub struct RetireBin<T> {
    retired: Vec<*mut T>,
    batch: usize,
}

struct Batch<T>(Vec<*mut T>);

impl<T> Drop for Batch<T> {
    fn drop(&mut self) {
        for &p in &self.0 {
            // SAFETY: owned, unlinked, allocated by Box (see `retire`).
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

impl<T> RetireBin<T> {
    /// A bin flushing every `batch` retirements.
    pub fn new(batch: usize) -> Self {
        RetireBin {
            retired: Vec::with_capacity(batch),
            batch: batch.max(1),
        }
    }

    /// Number of pointers currently parked.
    pub fn len(&self) -> usize {
        self.retired.len()
    }

    /// Whether the bin is empty.
    pub fn is_empty(&self) -> bool {
        self.retired.is_empty()
    }

    /// Park an unlinked pointer; flushes when the batch fills.
    ///
    /// # Safety
    ///
    /// `ptr` must come from `Box::into_raw`, be unreachable for *new*
    /// readers (unlinked before this call), be retired exactly once, and
    /// `T`'s destructor must be safe to run on another thread (the same
    /// contract as [`epoch::Guard::defer_destroy`]).
    pub unsafe fn retire(&mut self, ptr: *mut T, guard: &epoch::Guard) {
        self.retired.push(ptr);
        if self.retired.len() >= self.batch {
            // SAFETY: forwarded from this function's contract.
            unsafe { self.flush(guard) };
        }
    }

    /// Defer destruction of everything parked so far.
    ///
    /// # Safety
    ///
    /// As for [`RetireBin::retire`].
    pub unsafe fn flush(&mut self, guard: &epoch::Guard) {
        if self.retired.is_empty() {
            return;
        }
        let batch = Batch(std::mem::take(&mut self.retired));
        self.retired.reserve(self.batch);
        // SAFETY: the pointers are unlinked and owned (retire's
        // contract); defer_unchecked type-erases exactly like
        // defer_destroy does.
        unsafe { guard.defer_unchecked(move || drop(batch)) };
    }
}

impl<T> Drop for RetireBin<T> {
    fn drop(&mut self) {
        if !self.retired.is_empty() {
            // Final flush under a fresh pin; readers that might still
            // hold these pointers pinned earlier.
            let guard = epoch::pin();
            let batch = Batch(std::mem::take(&mut self.retired));
            // SAFETY: as in `flush`.
            unsafe { guard.defer_unchecked(move || drop(batch)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swmr_hash::swmr_hash_map;

    #[test]
    fn drain_runs_and_reclaims() {
        // Produce a pile of deferred garbage (overwrites retire values).
        let (mut w, _r) = swmr_hash_map::<u64, u64>(64);
        for round in 0..200u64 {
            for k in 0..64 {
                w.insert(k, round);
            }
        }
        // Must not panic, deadlock or corrupt the epoch state.
        drain(1024);
        assert_eq!(w.len(), 64);
    }

    #[test]
    fn retire_bin_batches_and_flushes() {
        let mut bin: RetireBin<u64> = RetireBin::new(4);
        let guard = epoch::pin();
        for i in 0..3u64 {
            // SAFETY: fresh boxes, never linked anywhere.
            unsafe { bin.retire(Box::into_raw(Box::new(i)), &guard) };
        }
        assert_eq!(bin.len(), 3);
        unsafe { bin.retire(Box::into_raw(Box::new(3)), &guard) };
        assert_eq!(bin.len(), 0, "batch flushed at capacity");
        unsafe { bin.retire(Box::into_raw(Box::new(4)), &guard) };
        drop(guard);
        drop(bin); // final flush must not leak or double-free
        drain(256);
    }

    #[test]
    fn retire_bin_respects_readers() {
        // A reader pinned before retirement must still be able to read
        // the value until it unpins (no premature free). We can't observe
        // the free directly, but ASAN/valgrind-style runs would catch a
        // violation; here we exercise the interleaving.
        let value = Box::into_raw(Box::new(77u64));
        let reader_guard = epoch::pin();
        let mut bin: RetireBin<u64> = RetireBin::new(1);
        {
            let writer_guard = epoch::pin();
            // SAFETY: `value` is unlinked (never published) and retired once.
            unsafe { bin.retire(value, &writer_guard) };
        }
        // SAFETY: the reader pinned before the retirement flush.
        assert_eq!(unsafe { *value }, 77);
        drop(reader_guard);
        drain(256);
    }
}
