//! `CounterIncrementOnly`: the adjusted counter `(C3, CWSR)`.
//!
//! Each writing thread owns a cache-line-padded segment holding a plain
//! `u64`; `inc` is an owner-only load/store pair with `Relaxed` ordering
//! (no lock prefix, no read-modify-write — "CounterIncrementOnly
//! exclusively relies on longs", §6.2). A read sums the segments; with
//! unitary increments such a read is linearizable (§5.2).
//!
//! Single-ownership of a segment is enforced by the [`CounterCell`]
//! handle: one per thread, obtained from the registry.

use crate::registry::ThreadRegistry;
use crossbeam_utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The shared state of an increment-only counter.
#[derive(Debug)]
pub struct CounterIncrementOnly {
    segments: Vec<CachePadded<AtomicU64>>,
    registry: ThreadRegistry,
}

impl CounterIncrementOnly {
    /// A counter supporting up to `max_threads` incrementing threads.
    pub fn new(max_threads: usize) -> Arc<Self> {
        Arc::new(CounterIncrementOnly {
            segments: (0..max_threads)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            registry: ThreadRegistry::new(max_threads),
        })
    }

    /// A per-thread increment handle (the calling thread's segment).
    ///
    /// # Panics
    ///
    /// Panics when more than `max_threads` distinct threads ask for one.
    pub fn cell(self: &Arc<Self>) -> CounterCell {
        let slot = self.registry.slot();
        CounterCell {
            shared: Arc::clone(self),
            slot,
        }
    }

    /// Read the counter: sums every segment.
    ///
    /// For unitary increments the sum is a linearizable read (each
    /// segment is monotone and single-writer).
    pub fn get(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| s.load(Ordering::Acquire))
            .sum()
    }

    /// Number of segments (= supported threads).
    pub fn segments(&self) -> usize {
        self.segments.len()
    }

    #[inline]
    fn bump(&self, slot: usize, delta: u64) {
        let cell = &self.segments[slot];
        // Owner-exclusive: plain load + plain store, no RMW.
        let cur = cell.load(Ordering::Relaxed);
        cell.store(cur + delta, Ordering::Release);
    }
}

/// A single thread's increment handle. Not `Clone`: exactly one owner per
/// segment, which is what makes the plain-store increment sound.
#[derive(Debug)]
pub struct CounterCell {
    shared: Arc<CounterIncrementOnly>,
    slot: usize,
}

impl CounterCell {
    /// Increment by one (blind: no return value — the `C3` adjustment).
    #[inline]
    pub fn inc(&self) {
        self.shared.bump(self.slot, 1);
    }

    /// Add `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.shared.bump(self.slot, delta);
    }

    /// Read the whole counter (sums all segments).
    pub fn get(&self) -> u64 {
        self.shared.get()
    }

    /// The underlying shared counter.
    pub fn shared(&self) -> &Arc<CounterIncrementOnly> {
        &self.shared
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_counting() {
        let c = CounterIncrementOnly::new(2);
        let cell = c.cell();
        cell.inc();
        cell.inc();
        cell.add(3);
        assert_eq!(c.get(), 5);
        assert_eq!(cell.get(), 5);
    }

    #[test]
    fn cell_is_stable_per_thread() {
        let c = CounterIncrementOnly::new(2);
        let a = c.cell();
        let b = c.cell(); // same thread: same slot, still fine
        a.inc();
        b.inc();
        assert_eq!(c.get(), 2);
        assert_eq!(c.segments(), 2);
    }

    #[test]
    fn concurrent_increments_sum_exactly() {
        let c = CounterIncrementOnly::new(8);
        let per = 50_000u64;
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    let cell = c.cell();
                    for _ in 0..per {
                        cell.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8 * per);
    }

    #[test]
    fn reads_are_monotone_under_concurrent_increments() {
        let c = CounterIncrementOnly::new(4);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    let cell = c.cell();
                    for _ in 0..20_000 {
                        cell.inc();
                    }
                });
            }
            let c = Arc::clone(&c);
            s.spawn(move || {
                let mut last = 0;
                for _ in 0..10_000 {
                    let v = c.get();
                    assert!(v >= last, "counter went backwards: {last} -> {v}");
                    last = v;
                }
            });
        });
        assert_eq!(c.get(), 60_000);
    }

    #[test]
    #[should_panic(expected = "registry exhausted")]
    fn too_many_threads_rejected() {
        let c = CounterIncrementOnly::new(1);
        let _mine = c.cell();
        let c2 = Arc::clone(&c);
        let res = std::thread::spawn(move || {
            let _ = c2.cell();
        })
        .join();
        if let Err(e) = res {
            std::panic::resume_unwind(e);
        }
    }
}
