//! `SwmrHashMap`: a single-writer multi-reader hash table (§5.3).
//!
//! The map is built the way DEGO builds its segments: start from a
//! sequential chained hash table, then make it safe for concurrent
//! readers with publication stores:
//!
//! * updating an existing key swaps the value pointer with a
//!   `SeqCst`-class store (`setVolatile` in the paper);
//! * a new node is linked at the head of its bin with a Release store;
//! * `resize` never re-orders nodes in place ("nodes cannot be re-ordered
//!   on the fly due to potential readers"): it builds a fresh de-duplicated
//!   table and swaps the table pointer.
//!
//! The single-writer permission is a type: [`SwmrHashWriter`] is unique
//! and its mutators take `&mut self`; [`SwmrHashReader`] is `Clone` and
//! fully lock-free — a reader never executes an atomic RMW.

use crate::reclaim::RetireBin;
use crossbeam_epoch::{self as epoch, Atomic, Guard, Owned};
use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn hash_of<K: Hash>(key: &K) -> u64 {
    dego_metrics::rng::hash_key(key)
}

struct Entry<K, V> {
    key: K,
    value: Atomic<V>,
    next: Atomic<Entry<K, V>>,
}

impl<K, V> Drop for Entry<K, V> {
    fn drop(&mut self) {
        let value = std::mem::replace(&mut self.value, Atomic::null());
        // SAFETY: the entry is being reclaimed; its value goes with it.
        unsafe {
            let _ = value.try_into_owned();
        }
    }
}

struct Table<K, V> {
    mask: usize,
    bins: Box<[Atomic<Entry<K, V>>]>,
}

impl<K, V> Table<K, V> {
    fn new(bins: usize) -> Self {
        Table {
            mask: bins - 1,
            bins: (0..bins).map(|_| Atomic::null()).collect(),
        }
    }
}

struct Core<K, V> {
    table: Atomic<Table<K, V>>,
    len: AtomicUsize,
}

impl<K, V> Drop for Core<K, V> {
    fn drop(&mut self) {
        // SAFETY: last owner; free every entry then the table itself.
        unsafe {
            let guard = epoch::unprotected();
            let table = self.table.load(Ordering::Relaxed, guard);
            if table.is_null() {
                return;
            }
            for bin in table.deref().bins.iter() {
                let mut cur = bin.load(Ordering::Relaxed, guard);
                while !cur.is_null() {
                    let next = cur.deref().next.load(Ordering::Relaxed, guard);
                    drop(cur.into_owned());
                    cur = next;
                }
            }
            drop(table.into_owned());
        }
    }
}

/// Create a single-writer multi-reader hash map presized for about
/// `capacity` entries.
///
/// # Examples
///
/// ```
/// use dego_core::swmr_hash::swmr_hash_map;
///
/// let (mut writer, reader) = swmr_hash_map(16);
/// writer.insert(1, "one");
/// assert_eq!(reader.get(&1), Some("one"));
/// assert_eq!(writer.remove(&1), Some("one"));
/// assert_eq!(reader.get(&1), None);
/// ```
pub fn swmr_hash_map<K: Hash + Eq + Clone, V: Clone>(
    capacity: usize,
) -> (SwmrHashWriter<K, V>, SwmrHashReader<K, V>) {
    let bins = capacity.max(8).next_power_of_two();
    let core = Arc::new(Core {
        table: Atomic::new(Table::new(bins)),
        len: AtomicUsize::new(0),
    });
    (
        SwmrHashWriter {
            core: Arc::clone(&core),
            retired_values: RetireBin::new(RETIRE_BATCH),
            retired_entries: RetireBin::new(RETIRE_BATCH),
        },
        SwmrHashReader { core },
    )
}

/// Retired pointers per deferred batch. Batching keeps the epoch's
/// global garbage queue off the write path (one deferral per
/// `RETIRE_BATCH` retirements instead of one per update).
const RETIRE_BATCH: usize = 256;

/// The unique write handle of a [`swmr_hash_map`].
pub struct SwmrHashWriter<K, V> {
    core: Arc<Core<K, V>>,
    retired_values: RetireBin<V>,
    retired_entries: RetireBin<Entry<K, V>>,
}

impl<K, V> std::fmt::Debug for SwmrHashWriter<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwmrHashWriter")
            .field("len", &self.core.len.load(Ordering::Relaxed))
            .finish()
    }
}

impl<K: Hash + Eq + Clone, V: Clone> SwmrHashWriter<K, V> {
    /// Insert or update; returns the previous value.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let guard = epoch::pin();
        let table_ptr = self.core.table.load(Ordering::Acquire, &guard);
        // SAFETY: the writer is the only one who replaces the table, so
        // its load is always the current one.
        let table = unsafe { table_ptr.deref() };
        let bin = &table.bins[(hash_of(&key) as usize) & table.mask];
        let head = bin.load(Ordering::Acquire, &guard);
        let mut cur = head;
        // SAFETY: entries are reclaimed only by this writer via epochs.
        while let Some(entry) = unsafe { cur.as_ref() } {
            if entry.key == key {
                // Paper: existing key updated with setVolatile.
                let old = entry
                    .value
                    .swap(Owned::new(value), Ordering::SeqCst, &guard);
                // SAFETY: `old` was published; readers may still hold it.
                let prev = unsafe { old.as_ref() }.cloned();
                // SAFETY: unlinked by the swap above, retired once.
                unsafe {
                    self.retired_values.retire(old.as_raw() as *mut V, &guard);
                }
                return prev;
            }
            cur = entry.next.load(Ordering::Acquire, &guard);
        }
        // New node, linked atomically at the bin head (Release publish).
        let entry = Owned::new(Entry {
            key,
            value: Atomic::new(value),
            next: Atomic::null(),
        });
        entry.next.store(head, Ordering::Relaxed);
        bin.store(entry, Ordering::Release);
        let len = self.core.len.load(Ordering::Relaxed) + 1;
        self.core.len.store(len, Ordering::Release);
        if len > table.bins.len() {
            self.resize(&guard);
        }
        None
    }

    /// Remove a key; returns the previous value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let guard = epoch::pin();
        let table_ptr = self.core.table.load(Ordering::Acquire, &guard);
        // SAFETY: see `insert`.
        let table = unsafe { table_ptr.deref() };
        let bin = &table.bins[(hash_of(key) as usize) & table.mask];
        let mut pred: Option<&Entry<K, V>> = None;
        let mut cur = bin.load(Ordering::Acquire, &guard);
        while let Some(entry) = unsafe { cur.as_ref() } {
            let next = entry.next.load(Ordering::Acquire, &guard);
            if entry.key == *key {
                // Unlink with a single Release store (readers either see
                // the node or its successor — never a torn chain).
                match pred {
                    Some(p) => p.next.store(next, Ordering::Release),
                    None => bin.store(next, Ordering::Release),
                }
                let v = entry.value.load(Ordering::Acquire, &guard);
                // SAFETY: cloned before the entry (and value) is retired.
                let out = unsafe { v.as_ref() }.cloned();
                // SAFETY: unlinked above; Entry::drop frees its value.
                unsafe {
                    self.retired_entries
                        .retire(cur.as_raw() as *mut Entry<K, V>, &guard);
                }
                self.core
                    .len
                    .store(self.core.len.load(Ordering::Relaxed) - 1, Ordering::Release);
                return out;
            }
            pred = Some(entry);
            cur = next;
        }
        None
    }

    /// Grow the table: copy entries (de-duplicated by construction) into
    /// a table twice the size and swap the pointer.
    fn resize(&mut self, guard: &Guard) {
        let old_ptr = self.core.table.load(Ordering::Acquire, guard);
        // SAFETY: writer-exclusive table replacement.
        let old = unsafe { old_ptr.deref() };
        let new = Table::new(old.bins.len() * 2);
        for bin in old.bins.iter() {
            let mut cur = bin.load(Ordering::Acquire, guard);
            while let Some(entry) = unsafe { cur.as_ref() } {
                let v = entry.value.load(Ordering::Acquire, guard);
                // SAFETY: value pointers are live while linked.
                let value = unsafe { v.deref() }.clone();
                let new_bin = &new.bins[(hash_of(&entry.key) as usize) & new.mask];
                let head = new_bin.load(Ordering::Relaxed, guard);
                let fresh = Owned::new(Entry {
                    key: entry.key.clone(),
                    value: Atomic::new(value),
                    next: Atomic::null(),
                });
                fresh.next.store(head, Ordering::Relaxed);
                // Not yet published: plain store is fine.
                new_bin.store(fresh, Ordering::Relaxed);
                cur = entry.next.load(Ordering::Acquire, guard);
            }
        }
        // Publish the new table, then retire the old one and its entries.
        self.core.table.store(Owned::new(new), Ordering::Release);
        for bin in old.bins.iter() {
            let mut cur = bin.load(Ordering::Relaxed, guard);
            while !cur.is_null() {
                // SAFETY: old entries are unreachable through the new
                // table; readers still traversing are pinned.
                let next = unsafe { cur.deref() }.next.load(Ordering::Relaxed, guard);
                unsafe {
                    self.retired_entries
                        .retire(cur.as_raw() as *mut Entry<K, V>, guard);
                }
                cur = next;
            }
        }
        // SAFETY: the old table itself is unreachable now.
        unsafe { guard.defer_destroy(old_ptr) };
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.core.len.load(Ordering::Acquire)
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A new reader handle.
    pub fn reader(&self) -> SwmrHashReader<K, V> {
        SwmrHashReader {
            core: Arc::clone(&self.core),
        }
    }
}

/// A lock-free read handle of a [`swmr_hash_map`]; clone freely.
pub struct SwmrHashReader<K, V> {
    core: Arc<Core<K, V>>,
}

impl<K, V> Clone for SwmrHashReader<K, V> {
    fn clone(&self) -> Self {
        SwmrHashReader {
            core: Arc::clone(&self.core),
        }
    }
}

impl<K, V> std::fmt::Debug for SwmrHashReader<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwmrHashReader")
            .field("len", &self.core.len.load(Ordering::Relaxed))
            .finish()
    }
}

impl<K: Hash + Eq + Clone, V: Clone> SwmrHashReader<K, V> {
    /// Read a key's value: Acquire loads only, no RMW.
    pub fn get(&self, key: &K) -> Option<V> {
        let guard = epoch::pin();
        let table_ptr = self.core.table.load(Ordering::Acquire, &guard);
        // SAFETY: tables/entries are epoch-reclaimed.
        let table = unsafe { table_ptr.deref() };
        let bin = &table.bins[(hash_of(key) as usize) & table.mask];
        let mut cur = bin.load(Ordering::Acquire, &guard);
        while let Some(entry) = unsafe { cur.as_ref() } {
            if entry.key == *key {
                let v = entry.value.load(Ordering::Acquire, &guard);
                return unsafe { v.as_ref() }.cloned();
            }
            cur = entry.next.load(Ordering::Acquire, &guard);
        }
        None
    }

    /// Membership test.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.core.len.load(Ordering::Acquire)
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visit every entry (weakly consistent, like JUC iterators).
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        let guard = epoch::pin();
        let table_ptr = self.core.table.load(Ordering::Acquire, &guard);
        // SAFETY: see `get`.
        let table = unsafe { table_ptr.deref() };
        for bin in table.bins.iter() {
            let mut cur = bin.load(Ordering::Acquire, &guard);
            while let Some(entry) = unsafe { cur.as_ref() } {
                let v = entry.value.load(Ordering::Acquire, &guard);
                if let Some(v) = unsafe { v.as_ref() } {
                    f(&entry.key, v);
                }
                cur = entry.next.load(Ordering::Acquire, &guard);
            }
        }
    }
}

// Readers/writer move across threads; entries hold K/V.
// SAFETY: all shared mutation goes through atomics + epochs.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for SwmrHashWriter<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Send for SwmrHashReader<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for SwmrHashReader<K, V> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let (mut w, r) = swmr_hash_map(8);
        assert_eq!(w.insert(1, 10), None);
        assert_eq!(w.insert(2, 20), None);
        assert_eq!(w.insert(1, 11), Some(10));
        assert_eq!(r.get(&1), Some(11));
        assert_eq!(r.get(&3), None);
        assert!(r.contains_key(&2));
        assert_eq!(w.remove(&2), Some(20));
        assert_eq!(w.remove(&2), None);
        assert_eq!(w.len(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn resize_preserves_contents() {
        let (mut w, r) = swmr_hash_map(8);
        for i in 0..10_000u64 {
            w.insert(i, i * 3);
        }
        assert_eq!(w.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(r.get(&i), Some(i * 3), "key {i} lost in resize");
        }
    }

    #[test]
    fn removal_in_long_chains() {
        let (mut w, r) = swmr_hash_map(8);
        // Small table forces chains.
        for i in 0..64u64 {
            w.insert(i, i);
        }
        for i in (0..64).step_by(2) {
            assert_eq!(w.remove(&i), Some(i));
        }
        for i in 0..64u64 {
            assert_eq!(r.get(&i).is_some(), i % 2 == 1);
        }
    }

    #[test]
    fn for_each_visits_all() {
        let (mut w, r) = swmr_hash_map(16);
        for i in 0..100u64 {
            w.insert(i, 1u64);
        }
        let mut total = 0;
        r.for_each(|_, v| total += *v);
        assert_eq!(total, 100);
    }

    #[test]
    fn concurrent_readers_during_writes() {
        let (mut w, r) = swmr_hash_map(64);
        for i in 0..1_000u64 {
            w.insert(i, 0u64);
        }
        std::thread::scope(|s| {
            s.spawn(move || {
                for round in 1..=20u64 {
                    for i in 0..1_000 {
                        w.insert(i, round);
                    }
                }
            });
            for _ in 0..4 {
                let r = r.clone();
                s.spawn(move || {
                    for _ in 0..20_000 {
                        let i = 997;
                        if let Some(v) = r.get(&i) {
                            assert!(v <= 20);
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn concurrent_readers_during_resizes() {
        let (mut w, r) = swmr_hash_map(8);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..50_000u64 {
                    w.insert(i, i);
                }
            });
            for _ in 0..3 {
                let r = r.clone();
                s.spawn(move || {
                    for i in 0..50_000u64 {
                        if let Some(v) = r.get(&(i % 1000)) {
                            assert_eq!(v, i % 1000);
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn reader_handles_share_state() {
        let (mut w, r1) = swmr_hash_map(8);
        let r2 = r1.clone();
        let r3 = w.reader();
        w.insert(5, 50);
        assert_eq!(r1.get(&5), Some(50));
        assert_eq!(r2.get(&5), Some(50));
        assert_eq!(r3.get(&5), Some(50));
    }

    #[test]
    fn drop_reclaims_everything() {
        let (mut w, _r) = swmr_hash_map(8);
        for i in 0..1_000 {
            w.insert(i, vec![i as u8; 16]);
        }
        // Both handles drop here; Core::drop walks and frees.
    }
}
